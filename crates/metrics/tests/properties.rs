//! Property-based tests for the measurement instruments.

use proptest::prelude::*;

use polm2_metrics::{
    IntervalHistogram, PauseHistogram, SimDuration, SimTime, ThroughputTracker,
    STANDARD_PERCENTILES,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Percentiles are monotone in the percentile argument and bounded by
    /// the extremes.
    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(0u64..5_000_000, 1..300)) {
        let mut h: PauseHistogram =
            samples.iter().map(|&us| SimDuration::from_micros(us)).collect();
        let ladder: Vec<SimDuration> = STANDARD_PERCENTILES
            .iter()
            .map(|&p| h.percentile(p).expect("non-empty"))
            .collect();
        for w in ladder.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let min = samples.iter().min().copied().unwrap();
        let max = samples.iter().max().copied().unwrap();
        prop_assert!(ladder[0] >= SimDuration::from_micros(min));
        prop_assert_eq!(*ladder.last().unwrap(), SimDuration::from_micros(max));
        prop_assert_eq!(h.max().unwrap(), SimDuration::from_micros(max));
    }

    /// The interval histogram never loses or invents pauses, regardless of
    /// the edge set.
    #[test]
    fn interval_histogram_conserves_mass(
        samples in proptest::collection::vec(0u64..2_000_000, 0..300),
        edges in proptest::collection::btree_set(1u64..1_000, 1..10),
    ) {
        let mut h = IntervalHistogram::new(
            edges.iter().map(|&ms| SimDuration::from_millis(ms)).collect(),
        );
        for &us in &samples {
            h.record(SimDuration::from_micros(us));
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let bin_sum: u64 = h.bins().iter().map(|b| b.count).sum();
        prop_assert_eq!(bin_sum, samples.len() as u64);
        prop_assert_eq!(h.count_at_or_above(SimDuration::ZERO), samples.len() as u64);
    }

    /// Mean throughput over the whole run equals total ops / duration,
    /// whatever the arrival pattern.
    #[test]
    fn throughput_mean_matches_totals(
        arrivals in proptest::collection::vec((0u64..600, 1u64..50), 1..200),
    ) {
        let mut t = ThroughputTracker::new();
        let mut total = 0u64;
        let mut last = 0u64;
        for &(sec, ops) in &arrivals {
            t.record_ops(SimTime::from_secs(sec), ops);
            total += ops;
            last = last.max(sec);
        }
        prop_assert_eq!(t.total_ops(), total);
        let mean = t.mean_ops_per_sec(SimTime::ZERO, SimTime::from_secs(last + 1));
        let expected = total as f64 / (last + 1) as f64;
        prop_assert!((mean - expected).abs() < 1e-9, "{mean} vs {expected}");
    }

    /// Per-second series and windowed series agree.
    #[test]
    fn series_windows_are_consistent(
        arrivals in proptest::collection::vec((0u64..120, 1u64..20), 1..100),
        start in 0u64..60,
        len in 1u64..60,
    ) {
        let mut t = ThroughputTracker::new();
        for &(sec, ops) in &arrivals {
            t.record_ops(SimTime::from_secs(sec), ops);
        }
        let full = t.per_second_series();
        let window = t.series_window(SimTime::from_secs(start), SimDuration::from_secs(len));
        for (i, sample) in window.iter().enumerate() {
            let idx = start as usize + i;
            prop_assert_eq!(sample.ops, full[idx].ops);
            prop_assert_eq!(sample.window_start, full[idx].window_start);
        }
    }
}
