//! Simulated-time newtypes.
//!
//! The whole workspace uses a logical clock measured in microseconds. Wrapping
//! the raw `u64` in [`SimTime`] and [`SimDuration`] keeps instants and spans
//! from being confused and gives both types unit-aware constructors and
//! accessors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in microseconds since the start of the
/// simulation.
///
/// # Examples
///
/// ```
/// use polm2_metrics::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_micros(), 250_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use polm2_metrics::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 3_500);
/// assert_eq!(d.as_millis_f64(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is longer than `self`.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_millis(10);
        let d = SimDuration::from_micros(2_500);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.as_micros(), 12_500);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_unit_conversions() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.as_millis(), 2_000);
        assert_eq!(d.as_micros(), 2_000_000);
        assert_eq!(d.as_secs_f64(), 2.0);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "t+1.500s");
    }

    #[test]
    fn ordering_follows_magnitude() {
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
    }
}
