//! Operation-throughput tracking (paper Figures 7 and 8).
//!
//! Figure 7 reports whole-run throughput normalized to G1; Figure 8 plots a
//! ten-minute transactions-per-second timeline for Cassandra. Both derive
//! from the same primitive: a counter of completed operations bucketed into
//! one-second windows of simulated time.

use crate::{SimDuration, SimTime};

/// One point of a throughput time series: a one-second window and the number
/// of operations completed inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputSample {
    /// Start of the one-second window.
    pub window_start: SimTime,
    /// Operations completed in `[window_start, window_start + 1s)`.
    pub ops: u64,
}

/// Tracks completed operations over simulated time.
///
/// # Examples
///
/// ```
/// use polm2_metrics::{SimTime, ThroughputTracker};
///
/// let mut t = ThroughputTracker::new();
/// t.record_ops(SimTime::from_millis(100), 3);
/// t.record_ops(SimTime::from_millis(900), 2);
/// t.record_ops(SimTime::from_millis(1_500), 4);
/// assert_eq!(t.total_ops(), 9);
/// let series = t.per_second_series();
/// assert_eq!(series[0].ops, 5);
/// assert_eq!(series[1].ops, 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThroughputTracker {
    /// Ops per one-second window, indexed by window number.
    windows: Vec<u64>,
    total: u64,
    last_event: SimTime,
}

impl ThroughputTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ThroughputTracker::default()
    }

    /// Records `ops` operations completing at time `now`.
    pub fn record_ops(&mut self, now: SimTime, ops: u64) {
        let window = now.as_secs() as usize;
        if self.windows.len() <= window {
            self.windows.resize(window + 1, 0);
        }
        self.windows[window] += ops;
        self.total += ops;
        self.last_event = self.last_event.max(now);
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.total
    }

    /// Time of the last recorded event.
    pub fn last_event(&self) -> SimTime {
        self.last_event
    }

    /// Mean throughput in operations/second over `[start, end)`.
    ///
    /// Windows are attributed whole; `start`/`end` are truncated to second
    /// boundaries. Returns 0.0 for an empty range.
    pub fn mean_ops_per_sec(&self, start: SimTime, end: SimTime) -> f64 {
        let s = start.as_secs() as usize;
        let e = end.as_secs() as usize;
        if e <= s {
            return 0.0;
        }
        let ops: u64 = self.windows.iter().skip(s).take(e - s).sum();
        ops as f64 / (e - s) as f64
    }

    /// The full per-second series, one sample per elapsed window.
    pub fn per_second_series(&self) -> Vec<ThroughputSample> {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, &ops)| ThroughputSample {
                window_start: SimTime::from_secs(i as u64),
                ops,
            })
            .collect()
    }

    /// The series restricted to `[start, start + len)`, e.g. the paper's
    /// ten-minute Cassandra sample.
    pub fn series_window(&self, start: SimTime, len: SimDuration) -> Vec<ThroughputSample> {
        let s = start.as_secs() as usize;
        let n = len.as_secs_f64().ceil() as usize;
        self.windows
            .iter()
            .enumerate()
            .skip(s)
            .take(n)
            .map(|(i, &ops)| ThroughputSample {
                window_start: SimTime::from_secs(i as u64),
                ops,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_accumulate_by_second() {
        let mut t = ThroughputTracker::new();
        t.record_ops(SimTime::from_millis(10), 1);
        t.record_ops(SimTime::from_millis(999), 1);
        t.record_ops(SimTime::from_millis(1_000), 1);
        let s = t.per_second_series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].ops, 2);
        assert_eq!(s[1].ops, 1);
    }

    #[test]
    fn mean_over_range() {
        let mut t = ThroughputTracker::new();
        for sec in 0..10 {
            t.record_ops(SimTime::from_secs(sec), 100);
        }
        assert_eq!(
            t.mean_ops_per_sec(SimTime::ZERO, SimTime::from_secs(10)),
            100.0
        );
        // Ignoring the first five seconds (paper warm-up rule).
        assert_eq!(
            t.mean_ops_per_sec(SimTime::from_secs(5), SimTime::from_secs(10)),
            100.0
        );
        assert_eq!(
            t.mean_ops_per_sec(SimTime::from_secs(10), SimTime::from_secs(10)),
            0.0
        );
    }

    #[test]
    fn series_window_slices() {
        let mut t = ThroughputTracker::new();
        for sec in 0..30 {
            t.record_ops(SimTime::from_secs(sec), sec);
        }
        let w = t.series_window(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(w.len(), 5);
        assert_eq!(w[0].ops, 10);
        assert_eq!(w[4].ops, 14);
    }

    #[test]
    fn totals_and_last_event() {
        let mut t = ThroughputTracker::new();
        assert_eq!(t.total_ops(), 0);
        t.record_ops(SimTime::from_secs(3), 7);
        t.record_ops(SimTime::from_secs(1), 2);
        assert_eq!(t.total_ops(), 9);
        assert_eq!(t.last_event(), SimTime::from_secs(3));
    }
}
