//! Heap-usage tracking (paper Figure 9: max memory usage normalized to G1).

use crate::SimTime;

/// One sample of heap usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Committed heap bytes in use at that instant.
    pub used_bytes: u64,
}

/// Records heap-usage samples and tracks the high-water mark.
///
/// # Examples
///
/// ```
/// use polm2_metrics::{MemoryTracker, SimTime};
///
/// let mut m = MemoryTracker::new();
/// m.sample(SimTime::from_secs(1), 100);
/// m.sample(SimTime::from_secs(2), 400);
/// m.sample(SimTime::from_secs(3), 250);
/// assert_eq!(m.max_used_bytes(), 400);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    samples: Vec<MemorySample>,
    max_used: u64,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MemoryTracker::default()
    }

    /// Records a heap-usage sample.
    pub fn sample(&mut self, at: SimTime, used_bytes: u64) {
        self.samples.push(MemorySample { at, used_bytes });
        self.max_used = self.max_used.max(used_bytes);
    }

    /// The high-water mark across all samples (0 if none were taken).
    pub fn max_used_bytes(&self) -> u64 {
        self.max_used
    }

    /// The high-water mark over samples taken at or after `start`.
    ///
    /// The paper ignores the first five minutes of each run; this lets the
    /// harness apply the same warm-up rule to memory.
    pub fn max_used_bytes_since(&self, start: SimTime) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.at >= start)
            .map(|s| s.used_bytes)
            .max()
            .unwrap_or(0)
    }

    /// All samples, in recording order.
    pub fn samples(&self) -> &[MemorySample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_mark() {
        let mut m = MemoryTracker::new();
        assert_eq!(m.max_used_bytes(), 0);
        m.sample(SimTime::from_secs(1), 10);
        m.sample(SimTime::from_secs(2), 5);
        assert_eq!(m.max_used_bytes(), 10);
    }

    #[test]
    fn warm_up_filtered_mark() {
        let mut m = MemoryTracker::new();
        m.sample(SimTime::from_secs(1), 1_000); // load-time spike
        m.sample(SimTime::from_secs(400), 600);
        m.sample(SimTime::from_secs(500), 700);
        assert_eq!(m.max_used_bytes(), 1_000);
        assert_eq!(m.max_used_bytes_since(SimTime::from_secs(300)), 700);
        assert_eq!(m.max_used_bytes_since(SimTime::from_secs(9_999)), 0);
    }

    #[test]
    fn samples_preserved_in_order() {
        let mut m = MemoryTracker::new();
        m.sample(SimTime::from_secs(2), 2);
        m.sample(SimTime::from_secs(1), 1);
        let s = m.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].used_bytes, 2);
    }
}
