//! Pause-time percentile ladders (paper Figure 5).

use crate::SimDuration;

/// The percentile ladder the paper plots in Figure 5, plus the worst
/// observable pause (represented as `100.0`).
pub const STANDARD_PERCENTILES: [f64; 7] = [50.0, 90.0, 99.0, 99.9, 99.99, 99.999, 100.0];

/// One row of a percentile table: a percentile and the pause duration at it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileRow {
    /// Percentile in `[0, 100]`; `100.0` is the worst observed value.
    pub percentile: f64,
    /// Pause duration at that percentile.
    pub value: SimDuration,
}

/// An exact histogram of pause durations supporting percentile queries.
///
/// Durations are kept verbatim (the experiment scale is tens of thousands of
/// pauses, so exactness is affordable) and sorted lazily on first query.
///
/// # Examples
///
/// ```
/// use polm2_metrics::{PauseHistogram, SimDuration};
///
/// let mut h = PauseHistogram::new();
/// for ms in 1..=100 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.percentile(50.0).unwrap().as_millis(), 50);
/// assert_eq!(h.max().unwrap().as_millis(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PauseHistogram {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl PauseHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        PauseHistogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one pause.
    pub fn record(&mut self, pause: SimDuration) {
        self.samples.push(pause);
        self.sorted = false;
    }

    /// Number of recorded pauses.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no pauses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total stop-the-world time across all recorded pauses.
    pub fn total(&self) -> SimDuration {
        self.samples.iter().copied().sum()
    }

    /// Mean pause, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.total() / self.samples.len() as u64)
        }
    }

    /// The worst observed pause, or `None` if empty.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples.iter().copied().max()
    }

    /// The pause duration at percentile `p` (nearest-rank method), or `None`
    /// if the histogram is empty.
    ///
    /// `p = 100.0` returns the worst observed pause.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]` or is NaN.
    pub fn percentile(&mut self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        // Nearest-rank: smallest index i such that (i+1)/n >= p/100.
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Some(self.samples[idx])
    }

    /// The full ladder of [`STANDARD_PERCENTILES`], or an empty vector if no
    /// pauses were recorded.
    pub fn standard_rows(&mut self) -> Vec<PercentileRow> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        STANDARD_PERCENTILES
            .iter()
            .map(|&p| PercentileRow {
                percentile: p,
                value: self.percentile(p).expect("non-empty histogram"),
            })
            .collect()
    }

    /// Iterates over the recorded pauses in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.samples.iter().copied()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }
}

impl Extend<SimDuration> for PauseHistogram {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

impl FromIterator<SimDuration> for PauseHistogram {
    fn from_iter<T: IntoIterator<Item = SimDuration>>(iter: T) -> Self {
        let mut h = PauseHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(n: u64) -> PauseHistogram {
        (1..=n).map(SimDuration::from_millis).collect()
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let mut h = PauseHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.standard_rows().is_empty());
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut h = ladder(100);
        assert_eq!(h.percentile(1.0).unwrap().as_millis(), 1);
        assert_eq!(h.percentile(50.0).unwrap().as_millis(), 50);
        assert_eq!(h.percentile(99.0).unwrap().as_millis(), 99);
        assert_eq!(h.percentile(100.0).unwrap().as_millis(), 100);
    }

    #[test]
    fn percentile_of_single_sample() {
        let mut h = PauseHistogram::new();
        h.record(SimDuration::from_millis(42));
        for p in STANDARD_PERCENTILES {
            assert_eq!(h.percentile(p).unwrap().as_millis(), 42);
        }
    }

    #[test]
    fn standard_rows_are_monotone() {
        let mut h = ladder(5_000);
        let rows = h.standard_rows();
        assert_eq!(rows.len(), STANDARD_PERCENTILES.len());
        for w in rows.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        assert_eq!(rows.last().unwrap().value, h.max().unwrap());
    }

    #[test]
    fn mean_and_total() {
        let h = ladder(4); // 1+2+3+4 = 10ms
        assert_eq!(h.total(), SimDuration::from_millis(10));
        assert_eq!(h.mean().unwrap(), SimDuration::from_micros(2_500));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        ladder(3).percentile(101.0);
    }

    #[test]
    fn insertion_order_is_preserved_by_iter() {
        let mut h = PauseHistogram::new();
        h.record(SimDuration::from_millis(9));
        h.record(SimDuration::from_millis(1));
        // Percentile query sorts internally...
        assert_eq!(h.percentile(100.0).unwrap().as_millis(), 9);
        // ...but iteration still follows a deterministic total order.
        assert_eq!(h.len(), 2);
    }
}
