//! Remembered-set churn counters.
//!
//! Generational collectors keep a remembered set of young objects reachable
//! from older spaces. The heap appends to it on every old→young reference
//! store and promotion, and prunes it after every young collection. These
//! counters make that churn observable: how many entries were ever recorded,
//! how many were discarded as dead or duplicate at prune time, and how large
//! the set got — the inputs a tuner needs to judge write-barrier pressure.

/// Counts remembered-set traffic over the life of a heap.
///
/// All-zero means no old→young references were ever recorded.
///
/// # Examples
///
/// ```
/// use polm2_metrics::RememberedSetChurn;
///
/// let mut churn = RememberedSetChurn::new();
/// churn.recorded += 3;
/// churn.note_prune(3, 1);
/// assert_eq!(churn.pruned, 2);
/// assert_eq!(churn.peak_len, 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RememberedSetChurn {
    /// Entries appended to the remembered set (write barrier + promotion).
    pub recorded: u64,
    /// Entries discarded at prune time (dead, promoted, or duplicate).
    pub pruned: u64,
    /// Prune passes executed (one per young collection).
    pub prune_calls: u64,
    /// Largest set length observed entering a prune pass.
    pub peak_len: u64,
}

impl RememberedSetChurn {
    /// Creates an all-zero counter set.
    pub fn new() -> Self {
        RememberedSetChurn::default()
    }

    /// Records one prune pass that entered with `before` entries and kept
    /// `after` of them.
    pub fn note_prune(&mut self, before: usize, after: usize) {
        self.prune_calls += 1;
        self.peak_len = self.peak_len.max(before as u64);
        self.pruned += before.saturating_sub(after) as u64;
    }

    /// Entries that survived every prune so far (recorded minus pruned).
    pub fn retained(&self) -> u64 {
        self.recorded.saturating_sub(self.pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let churn = RememberedSetChurn::new();
        assert_eq!(churn, RememberedSetChurn::default());
        assert_eq!(churn.retained(), 0);
    }

    #[test]
    fn note_prune_tracks_peak_and_discards() {
        let mut churn = RememberedSetChurn::new();
        churn.recorded += 10;
        churn.note_prune(10, 4);
        churn.recorded += 2;
        churn.note_prune(6, 6);
        assert_eq!(churn.prune_calls, 2);
        assert_eq!(churn.peak_len, 10);
        assert_eq!(churn.pruned, 6);
        assert_eq!(churn.retained(), 6);
    }

    #[test]
    fn retained_saturates() {
        let mut churn = RememberedSetChurn::new();
        churn.pruned = 5;
        assert_eq!(churn.retained(), 0);
    }
}
