//! Measurement substrate for the POLM2 reproduction.
//!
//! Everything in this workspace runs on *simulated time*: the runtime advances
//! a logical clock as mutators execute and as collectors pause the world, so
//! every experiment is deterministic and host-independent. This crate holds
//! the time newtypes and the instruments the evaluation section of the paper
//! needs:
//!
//! * [`SimTime`] / [`SimDuration`] — the logical clock vocabulary.
//! * [`PauseHistogram`] — pause-time percentile ladders (paper Figure 5).
//! * [`IntervalHistogram`] — pause counts per duration interval (Figure 6).
//! * [`ThroughputTracker`] — operations/second time series (Figures 7–8).
//! * [`MemoryTracker`] — heap-usage high-water marks (Figure 9).
//! * [`FaultCounters`] — fault/recovery tallies for degraded pipeline runs.
//! * [`RememberedSetChurn`] — remembered-set write-barrier churn tallies.
//! * [`FleetLedger`] / [`TenantStats`] — per-tenant and aggregate fleet
//!   statistics for supervised multi-tenant runs.
//! * [`report`] — plain-text table rendering shared by the figure binaries.
//!
//! # Examples
//!
//! ```
//! use polm2_metrics::{PauseHistogram, SimDuration};
//!
//! let mut pauses = PauseHistogram::new();
//! for ms in [5_u64, 12, 7, 110, 9] {
//!     pauses.record(SimDuration::from_millis(ms));
//! }
//! assert_eq!(pauses.max().unwrap().as_millis(), 110);
//! assert!(pauses.percentile(50.0).unwrap() <= pauses.percentile(99.9).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod faults;
mod fleet;
mod histogram;
mod intervals;
mod memory;
mod rememberedset;
pub mod report;
mod throughput;
mod time;

pub use faults::FaultCounters;
pub use fleet::{FleetLedger, TenantStats};
pub use histogram::{PauseHistogram, PercentileRow, STANDARD_PERCENTILES};
pub use intervals::{IntervalBin, IntervalHistogram};
pub use memory::{MemorySample, MemoryTracker};
pub use rememberedset::RememberedSetChurn;
pub use throughput::{ThroughputSample, ThroughputTracker};
pub use time::{SimDuration, SimTime};
