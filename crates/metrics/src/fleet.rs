//! Fleet-level instruments: per-tenant statistics and the aggregate ledger
//! a supervised multi-tenant profiling run reports.
//!
//! One [`TenantStats`] row per tenant (healthy or quarantined), collected
//! into a [`FleetLedger`] for the aggregate views the fleet CLI and the
//! chaos tests read: total faults absorbed, quarantine counts, and mean
//! per-tenant throughput. Everything is measured on the simulated clock,
//! so two runs with the same seeds produce identical ledgers.

use crate::faults::FaultCounters;
use crate::time::SimDuration;

/// Per-tenant bookkeeping from one supervised fleet run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Tenant name (stable across the run).
    pub tenant: String,
    /// Workload the tenant ran.
    pub workload: String,
    /// Allocations the tenant's Recorder logged (0 when it never got
    /// that far).
    pub records: u64,
    /// Heap snapshots captured.
    pub snapshots: u64,
    /// Simulated time the tenant's runtime advanced, including retried
    /// attempts and backoff penalties.
    pub sim_duration: SimDuration,
    /// Transient-failure retries the supervisor granted.
    pub retries: u32,
    /// True when the supervisor quarantined the tenant.
    pub quarantined: bool,
    /// Faults absorbed by this tenant's pipeline.
    pub counters: FaultCounters,
}

impl TenantStats {
    /// Records per simulated second, `None` when no time was simulated.
    pub fn throughput(&self) -> Option<f64> {
        let secs = self.sim_duration.as_secs_f64();
        (secs > 0.0).then(|| self.records as f64 / secs)
    }
}

/// The fleet-wide ledger: one row per tenant, in launch order.
#[derive(Debug, Clone, Default)]
pub struct FleetLedger {
    /// Per-tenant rows.
    pub tenants: Vec<TenantStats>,
}

impl FleetLedger {
    /// Tenants that finished cleanly.
    pub fn healthy_count(&self) -> usize {
        self.tenants.iter().filter(|t| !t.quarantined).count()
    }

    /// Tenants the supervisor quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.tenants.len() - self.healthy_count()
    }

    /// Every tenant's fault counters merged into one ledger.
    pub fn aggregate_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::new();
        for t in &self.tenants {
            total.merge(&t.counters);
        }
        total
    }

    /// Total allocations recorded across healthy tenants.
    pub fn total_records(&self) -> u64 {
        self.tenants
            .iter()
            .filter(|t| !t.quarantined)
            .map(|t| t.records)
            .sum()
    }

    /// Total retries granted across all tenants.
    pub fn total_retries(&self) -> u32 {
        self.tenants.iter().map(|t| t.retries).sum()
    }

    /// Mean per-tenant throughput over healthy tenants, `None` when no
    /// healthy tenant simulated any time.
    pub fn mean_throughput(&self) -> Option<f64> {
        let rates: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| !t.quarantined)
            .filter_map(TenantStats::throughput)
            .collect();
        (!rates.is_empty()).then(|| rates.iter().sum::<f64>() / rates.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tenant: &str, records: u64, secs: u64, quarantined: bool) -> TenantStats {
        TenantStats {
            tenant: tenant.into(),
            workload: "w".into(),
            records,
            snapshots: 2,
            sim_duration: SimDuration::from_secs(secs),
            retries: 1,
            quarantined,
            counters: FaultCounters::new(),
        }
    }

    #[test]
    fn ledger_aggregates_over_healthy_tenants_only() {
        let ledger = FleetLedger {
            tenants: vec![
                row("a", 100, 10, false),
                row("b", 300, 10, false),
                row("c", 999, 10, true),
            ],
        };
        assert_eq!(ledger.healthy_count(), 2);
        assert_eq!(ledger.quarantined_count(), 1);
        assert_eq!(ledger.total_records(), 400);
        assert_eq!(ledger.total_retries(), 3);
        // Mean of 10 and 30 records/s; the quarantined tenant is excluded.
        assert_eq!(ledger.mean_throughput(), Some(20.0));
    }

    #[test]
    fn empty_and_zero_time_fleets_have_no_throughput() {
        assert_eq!(FleetLedger::default().mean_throughput(), None);
        let ledger = FleetLedger {
            tenants: vec![row("a", 5, 0, false)],
        };
        assert_eq!(ledger.mean_throughput(), None);
    }
}
