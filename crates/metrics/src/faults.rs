//! Fault and recovery counters: how much a profiling or production run
//! degraded, and how the pipeline recovered.
//!
//! POLM2's contract is that profiling may be lossy but production must stay
//! correct: a bad or incomplete profile only ever costs performance (objects
//! fall back to the young generation) — never correctness. These counters
//! make that degradation observable: every snapshot the Dumper failed to
//! deliver, every allocation record dropped as corrupt, every profile entry
//! skipped as stale is counted here instead of being silently swallowed.

use std::fmt;

/// Counts every fault the pipeline absorbed and every recovery action it
/// took. All-zero means the run was fault-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Snapshot capture attempts that returned an error (includes retried
    /// attempts).
    pub snapshots_failed: u64,
    /// Retry attempts issued after a failed capture.
    pub snapshot_retries: u64,
    /// Snapshots abandoned after exhausting the retry budget.
    pub snapshots_lost: u64,
    /// Allocation records dropped at ingest because they failed validation
    /// (empty trace, frames that do not resolve in the loaded program).
    pub records_dropped_corrupt: u64,
    /// Allocation paths the Analyzer demoted to the young generation because
    /// the run was under-observed (fewer snapshots than the minimum).
    pub traces_demoted: u64,
    /// Profile `site` entries skipped because their location no longer
    /// exists in the program.
    pub stale_sites_skipped: u64,
    /// Profile `call` entries skipped because their location no longer
    /// exists in the program.
    pub stale_gen_calls_skipped: u64,
    /// Transient I/O errors the session journal absorbed (each one either
    /// retried or, after the budget, abandoned).
    pub journal_write_errors: u64,
    /// Journal write retries issued after a transient I/O error.
    pub journal_retries: u64,
    /// Journal frames abandoned after exhausting the retry budget (the
    /// journal stops growing; the in-memory session continues).
    pub journal_frames_lost: u64,
    /// Valid-but-unreachable or torn frames discarded while recovering a
    /// journal (fsck/repair/resume).
    pub journal_frames_truncated: u64,
    /// Journal segments missing at recovery time (a gap in the numbering;
    /// everything past it is unreachable).
    pub journal_segments_missing: u64,
    /// Completed heap-integrity verifier passes (`--verify-heap`). Not a
    /// fault: a nonzero count is *evidence the verifier ran* (excluded from
    /// [`is_clean`](FaultCounters::is_clean)).
    pub heap_verify_passes: u64,
    /// Allocations aborted with a typed out-of-memory error after the hard
    /// heap limit (`--heap-mb`) held even through an emergency collection.
    pub heap_oom_aborts: u64,
    /// Emergency full collections forced by a failed allocation (the retry
    /// before an out-of-memory verdict).
    pub emergency_collections: u64,
}

/// Stable per-counter names, used by the profile-file footer and the CLI.
const NAMES: [&str; 15] = [
    "snapshots-failed",
    "snapshot-retries",
    "snapshots-lost",
    "records-dropped-corrupt",
    "traces-demoted",
    "stale-sites-skipped",
    "stale-gen-calls-skipped",
    "journal-write-errors",
    "journal-retries",
    "journal-frames-lost",
    "journal-frames-truncated",
    "journal-segments-missing",
    "heap-verify-passes",
    "heap-oom-aborts",
    "emergency-collections",
];

impl FaultCounters {
    /// Creates an all-zero counter set.
    pub fn new() -> Self {
        FaultCounters::default()
    }

    /// True if no fault was observed and no recovery action was taken.
    /// Verifier passes are bookkeeping, not faults, and do not count.
    pub fn is_clean(&self) -> bool {
        FaultCounters {
            heap_verify_passes: 0,
            ..*self
        } == FaultCounters::default()
    }

    /// Adds another counter set into this one (e.g. profiling-phase counters
    /// plus production-phase stale skips).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.snapshots_failed += other.snapshots_failed;
        self.snapshot_retries += other.snapshot_retries;
        self.snapshots_lost += other.snapshots_lost;
        self.records_dropped_corrupt += other.records_dropped_corrupt;
        self.traces_demoted += other.traces_demoted;
        self.stale_sites_skipped += other.stale_sites_skipped;
        self.stale_gen_calls_skipped += other.stale_gen_calls_skipped;
        self.journal_write_errors += other.journal_write_errors;
        self.journal_retries += other.journal_retries;
        self.journal_frames_lost += other.journal_frames_lost;
        self.journal_frames_truncated += other.journal_frames_truncated;
        self.journal_segments_missing += other.journal_segments_missing;
        self.heap_verify_passes += other.heap_verify_passes;
        self.heap_oom_aborts += other.heap_oom_aborts;
        self.emergency_collections += other.emergency_collections;
    }

    /// All counters as stable `(name, value)` pairs, in declaration order.
    pub fn entries(&self) -> [(&'static str, u64); 15] {
        [
            (NAMES[0], self.snapshots_failed),
            (NAMES[1], self.snapshot_retries),
            (NAMES[2], self.snapshots_lost),
            (NAMES[3], self.records_dropped_corrupt),
            (NAMES[4], self.traces_demoted),
            (NAMES[5], self.stale_sites_skipped),
            (NAMES[6], self.stale_gen_calls_skipped),
            (NAMES[7], self.journal_write_errors),
            (NAMES[8], self.journal_retries),
            (NAMES[9], self.journal_frames_lost),
            (NAMES[10], self.journal_frames_truncated),
            (NAMES[11], self.journal_segments_missing),
            (NAMES[12], self.heap_verify_passes),
            (NAMES[13], self.heap_oom_aborts),
            (NAMES[14], self.emergency_collections),
        ]
    }

    /// Sets a counter by its stable name; returns false for unknown names
    /// (used when reading counters back from a profile-file footer).
    pub fn set_by_name(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "snapshots-failed" => &mut self.snapshots_failed,
            "snapshot-retries" => &mut self.snapshot_retries,
            "snapshots-lost" => &mut self.snapshots_lost,
            "records-dropped-corrupt" => &mut self.records_dropped_corrupt,
            "traces-demoted" => &mut self.traces_demoted,
            "stale-sites-skipped" => &mut self.stale_sites_skipped,
            "stale-gen-calls-skipped" => &mut self.stale_gen_calls_skipped,
            "journal-write-errors" => &mut self.journal_write_errors,
            "journal-retries" => &mut self.journal_retries,
            "journal-frames-lost" => &mut self.journal_frames_lost,
            "journal-frames-truncated" => &mut self.journal_frames_truncated,
            "journal-segments-missing" => &mut self.journal_segments_missing,
            "heap-verify-passes" => &mut self.heap_verify_passes,
            "heap-oom-aborts" => &mut self.heap_oom_aborts,
            "emergency-collections" => &mut self.emergency_collections,
            _ => return false,
        };
        *slot = value;
        true
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "no faults");
        }
        let mut first = true;
        for (name, value) in self.entries() {
            if value == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_by_default() {
        let c = FaultCounters::new();
        assert!(c.is_clean());
        assert_eq!(c.to_string(), "no faults");
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = FaultCounters {
            snapshots_failed: 1,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            snapshots_failed: 2,
            records_dropped_corrupt: 5,
            ..FaultCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.snapshots_failed, 3);
        assert_eq!(a.records_dropped_corrupt, 5);
        assert!(!a.is_clean());
    }

    #[test]
    fn entries_round_trip_through_names() {
        let src = FaultCounters {
            snapshots_failed: 1,
            snapshot_retries: 2,
            snapshots_lost: 3,
            records_dropped_corrupt: 4,
            traces_demoted: 5,
            stale_sites_skipped: 6,
            stale_gen_calls_skipped: 7,
            journal_write_errors: 8,
            journal_retries: 9,
            journal_frames_lost: 10,
            journal_frames_truncated: 11,
            journal_segments_missing: 12,
            heap_verify_passes: 13,
            heap_oom_aborts: 14,
            emergency_collections: 15,
        };
        let mut back = FaultCounters::new();
        for (name, value) in src.entries() {
            assert!(back.set_by_name(name, value), "{name} must be settable");
        }
        assert_eq!(back, src);
        assert!(!back.set_by_name("no-such-counter", 1));
    }

    #[test]
    fn display_lists_nonzero_counters_only() {
        let c = FaultCounters {
            snapshots_failed: 2,
            snapshots_lost: 1,
            ..FaultCounters::default()
        };
        let s = c.to_string();
        assert!(s.contains("snapshots-failed=2"));
        assert!(s.contains("snapshots-lost=1"));
        assert!(!s.contains("retries"));
    }

    #[test]
    fn verify_passes_do_not_dirty_a_run() {
        let c = FaultCounters {
            heap_verify_passes: 40,
            ..FaultCounters::default()
        };
        assert!(c.is_clean(), "verification evidence is not a fault");
        let oom = FaultCounters {
            heap_oom_aborts: 1,
            emergency_collections: 1,
            ..FaultCounters::default()
        };
        assert!(!oom.is_clean(), "OOM backpressure is a fault");
    }
}
