//! Plain-text table rendering shared by the figure binaries.
//!
//! Every experiment binary prints its table/figure as an aligned text table;
//! keeping the renderer here makes the outputs uniform and testable.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use polm2_metrics::report::TextTable;
///
/// let mut t = TextTable::new(vec!["workload".into(), "p50".into(), "worst".into()]);
/// t.add_row(vec!["cassandra-wi".into(), "38ms".into(), "310ms".into()]);
/// let s = t.render();
/// assert!(s.contains("workload"));
/// assert!(s.contains("cassandra-wi"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats `value / baseline` as the normalized ratios the paper plots in
/// Figures 3, 4, 7, and 9 (e.g. `0.42`).
///
/// Returns `"n/a"` when the baseline is zero.
pub fn normalized(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.3}", value / baseline)
    }
}

/// Formats a byte count with binary units (`1.5 MiB`).
pub fn bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Formats the percent reduction from `baseline` to `value`, as the paper
/// reports ("reduces the worst observable pause by 55%").
///
/// Positive means `value` is smaller than `baseline`.
pub fn percent_reduction(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", (1.0 - value / baseline) * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["a".into(), "bb".into()]);
        t.add_row(vec!["xxxx".into(), "y".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxx"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn normalized_formatting() {
        assert_eq!(normalized(50.0, 100.0), "0.500");
        assert_eq!(normalized(1.0, 0.0), "n/a");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.00 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }

    #[test]
    fn percent_reduction_formatting() {
        assert_eq!(percent_reduction(45.0, 100.0), "55.0%");
        assert_eq!(percent_reduction(100.0, 0.0), "n/a");
    }
}
