//! Pause counts per duration interval (paper Figure 6).
//!
//! Figure 6 buckets every application pause into fixed duration intervals and
//! plots the count per interval: "the less pauses to the right, the better".
//! [`IntervalHistogram`] reproduces that binning with a configurable edge set.

use crate::SimDuration;

/// One bin of an [`IntervalHistogram`]: the half-open duration interval
/// `[lower, upper)` and the number of pauses that fell inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalBin {
    /// Inclusive lower edge.
    pub lower: SimDuration,
    /// Exclusive upper edge; `None` for the unbounded last bin.
    pub upper: Option<SimDuration>,
    /// Number of pauses in the interval.
    pub count: u64,
}

impl IntervalBin {
    /// Human-readable label, e.g. `"[64ms, 128ms)"` or `"[512ms, +inf)"`.
    pub fn label(&self) -> String {
        match self.upper {
            Some(upper) => format!("[{}ms, {}ms)", self.lower.as_millis(), upper.as_millis()),
            None => format!("[{}ms, +inf)", self.lower.as_millis()),
        }
    }
}

/// A histogram over fixed duration intervals.
///
/// # Examples
///
/// ```
/// use polm2_metrics::{IntervalHistogram, SimDuration};
///
/// let mut h = IntervalHistogram::paper_default();
/// h.record(SimDuration::from_millis(3));
/// h.record(SimDuration::from_millis(90));
/// h.record(SimDuration::from_millis(2_000));
/// let bins = h.bins();
/// assert_eq!(bins.iter().map(|b| b.count).sum::<u64>(), 3);
/// // Long pauses land in the unbounded tail bin.
/// assert_eq!(bins.last().unwrap().count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct IntervalHistogram {
    /// Upper edges of the bounded bins, strictly increasing.
    edges: Vec<SimDuration>,
    /// `counts.len() == edges.len() + 1`; the final slot is the unbounded tail.
    counts: Vec<u64>,
}

impl IntervalHistogram {
    /// Creates a histogram with the given strictly-increasing upper edges.
    ///
    /// A pause `d` lands in the first bin whose upper edge is `> d`; pauses at
    /// or beyond the last edge land in the unbounded tail bin.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<SimDuration>) -> Self {
        assert!(
            !edges.is_empty(),
            "interval histogram needs at least one edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "interval edges must be strictly increasing"
        );
        let counts = vec![0; edges.len() + 1];
        IntervalHistogram { edges, counts }
    }

    /// The doubling edge set used for the paper's Figure 6 panels:
    /// 16, 32, 64, 128, 256, 512, 1024 ms plus an unbounded tail.
    pub fn paper_default() -> Self {
        IntervalHistogram::new(
            [16, 32, 64, 128, 256, 512, 1024]
                .map(SimDuration::from_millis)
                .to_vec(),
        )
    }

    /// Records one pause.
    pub fn record(&mut self, pause: SimDuration) {
        let idx = self.edges.partition_point(|&edge| edge <= pause);
        self.counts[idx] += 1;
    }

    /// Total number of recorded pauses.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Snapshot of the bins, lowest interval first.
    pub fn bins(&self) -> Vec<IntervalBin> {
        let mut lower = SimDuration::ZERO;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &count) in self.counts.iter().enumerate() {
            let upper = self.edges.get(i).copied();
            out.push(IntervalBin {
                lower,
                upper,
                count,
            });
            if let Some(u) = upper {
                lower = u;
            }
        }
        out
    }

    /// Number of pauses at or beyond `threshold`.
    ///
    /// Useful for "pauses to the right" comparisons between collectors.
    pub fn count_at_or_above(&self, threshold: SimDuration) -> u64 {
        // Recompute from bins whose lower edge >= threshold, counting partial
        // bins conservatively is impossible without raw samples; Figure 6 only
        // needs whole-bin comparisons, so we require threshold to be an edge.
        let mut lower = SimDuration::ZERO;
        let mut total = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            if lower >= threshold {
                total += count;
            }
            if let Some(&u) = self.edges.get(i) {
                lower = u;
            }
        }
        total
    }
}

impl Extend<SimDuration> for IntervalHistogram {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        for d in iter {
            self.record(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_eight_bins() {
        let h = IntervalHistogram::paper_default();
        assert_eq!(h.bins().len(), 8);
        assert_eq!(h.bins()[0].label(), "[0ms, 16ms)");
        assert_eq!(h.bins()[7].label(), "[1024ms, +inf)");
    }

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = IntervalHistogram::paper_default();
        h.record(SimDuration::from_millis(0));
        h.record(SimDuration::from_millis(15));
        h.record(SimDuration::from_millis(16)); // boundary -> second bin
        h.record(SimDuration::from_millis(1023));
        h.record(SimDuration::from_millis(1024)); // boundary -> tail
        let bins = h.bins();
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[6].count, 1);
        assert_eq!(bins[7].count, 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn count_at_or_above_edge() {
        let mut h = IntervalHistogram::paper_default();
        for ms in [1, 20, 40, 100, 300, 700, 2000] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count_at_or_above(SimDuration::from_millis(128)), 3);
        assert_eq!(h.count_at_or_above(SimDuration::ZERO), 7);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_panic() {
        IntervalHistogram::new(vec![
            SimDuration::from_millis(10),
            SimDuration::from_millis(5),
        ]);
    }

    #[test]
    fn extend_records_all() {
        let mut h = IntervalHistogram::paper_default();
        h.extend((1..=10).map(SimDuration::from_millis));
        assert_eq!(h.total(), 10);
    }
}
