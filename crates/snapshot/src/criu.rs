//! The CRIU-based Dumper.

use polm2_heap::Heap;
use polm2_metrics::{SimDuration, SimTime};

use crate::{HeapDumper, Snapshot, SnapshotError};

/// Which of the Dumper's two optimizations are enabled (the paper's §3.2;
/// toggles exist for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumperOptions {
    /// Skip pages whose no-need bit is set (the Recorder's pre-snapshot heap
    /// walk marks pages containing no live objects).
    pub use_no_need: bool,
    /// Capture only pages dirtied since the previous snapshot (the kernel
    /// soft-dirty bit).
    pub use_incremental: bool,
    /// Fixed per-snapshot cost (process freeze, descriptor capture), µs.
    pub base_us: u64,
    /// Cost per captured page (copy + write), µs.
    pub us_per_page: u64,
    /// Reuse the live set the GC just published instead of re-tracing the
    /// heap, when it is still current (no mutation since the collector's
    /// mark). The zero-retrace path; disable to force a fresh trace per
    /// snapshot (ablation benches).
    pub reuse_live_set: bool,
}

impl Default for DumperOptions {
    fn default() -> Self {
        // ~12 ms/MiB of captured pages at 4 KiB pages: raw page copies are
        // orders of magnitude cheaper than jmap's object-graph serialization.
        DumperOptions {
            use_no_need: true,
            use_incremental: true,
            base_us: 3_000,
            us_per_page: 45,
            reuse_live_set: true,
        }
    }
}

/// The POLM2 Dumper: incremental, no-need-filtered heap snapshots via CRIU.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct CriuDumper {
    options: DumperOptions,
    seq: u32,
}

impl CriuDumper {
    /// Creates a dumper with both optimizations enabled.
    pub fn new() -> Self {
        CriuDumper {
            options: DumperOptions::default(),
            seq: 0,
        }
    }

    /// Creates a dumper with explicit options (ablation benches).
    pub fn with_options(options: DumperOptions) -> Self {
        CriuDumper { options, seq: 0 }
    }

    /// The active options.
    pub fn options(&self) -> &DumperOptions {
        &self.options
    }

    /// Number of snapshots taken so far.
    pub fn snapshots_taken(&self) -> u32 {
        self.seq
    }
}

impl Default for CriuDumper {
    fn default() -> Self {
        CriuDumper::new()
    }
}

impl HeapDumper for CriuDumper {
    fn name(&self) -> &'static str {
        "criu-dumper"
    }

    fn snapshot(&mut self, heap: &mut Heap, now: SimTime) -> Result<Snapshot, SnapshotError> {
        // Content: live-object identity hashes (snapshots run right after a
        // GC cycle; no mutator stacks are live). The collector usually just
        // traced the heap to do its sweep — reuse its published live set
        // when nothing has mutated since, re-tracing only when the heap
        // moved on (the zero-retrace contract; see DESIGN.md).
        let reused = if self.options.reuse_live_set {
            heap.take_published_live()
        } else {
            None
        };
        let live = match reused {
            Some(live) => {
                // Replay the accounting side effects a fresh trace would
                // have: region live bytes and the live-page bitmap.
                heap.refresh_live_accounting(&live);
                live
            }
            None => heap.mark_live(&[]),
        };
        // Stream the content column straight off the heap: on a real-memory
        // backend the hashes come out of the object headers page by page, the
        // way CRIU reads /proc/pid/mem — no per-snapshot hash set is
        // materialized inside the capture window.
        let mut column = Vec::with_capacity(live.len());
        heap.live_hash_column(&live, &mut column);

        // The Recorder's madvise walk: mark no-need pages.
        if self.options.use_no_need {
            heap.mark_no_need_pages(&live);
        }

        // Capture cost: count pages CRIU would write.
        let page_bytes = u64::from(heap.page_table().page_bytes());
        let mut captured: u64 = 0;
        for flags in heap.page_table().iter() {
            let skip_clean = self.options.use_incremental && !flags.dirty;
            let skip_no_need = self.options.use_no_need && flags.no_need;
            if !skip_clean && !skip_no_need {
                captured += 1;
            }
        }
        // CRIU completes the dump and clears the soft-dirty bits.
        if self.options.use_incremental {
            heap.page_table_mut().clear_dirty();
        }

        let size_bytes = captured * page_bytes;
        let capture_time =
            SimDuration::from_micros(self.options.base_us + captured * self.options.us_per_page);
        let snap = Snapshot::from_sorted_column(self.seq, now, column, size_bytes, capture_time);
        self.seq += 1;
        // Hand the set back: if the heap stays untouched, the next snapshot
        // (or an immediately following GC-free cycle) reuses it as well.
        heap.publish_live(live);
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{HeapConfig, ObjectId, SiteId};

    fn heap_with_live(n: usize) -> (Heap, Vec<ObjectId>) {
        let mut heap = Heap::new(HeapConfig::small());
        let class = heap.classes_mut().intern("T");
        let slot = heap.roots_mut().create_slot("keep");
        let mut ids = Vec::new();
        for _ in 0..n {
            let id = heap
                .allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE)
                .unwrap();
            heap.roots_mut().push(slot, id);
            ids.push(id);
        }
        (heap, ids)
    }

    #[test]
    fn snapshot_contains_live_objects_only() {
        let (mut heap, ids) = heap_with_live(4);
        let class = heap.classes_mut().intern("T");
        let dead = heap
            .allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        let dead_hash = heap.object(dead).unwrap().identity_hash();
        let mut dumper = CriuDumper::new();
        let snap = dumper.snapshot(&mut heap, SimTime::ZERO).unwrap();
        for id in &ids {
            assert!(snap.contains(heap.object(*id).unwrap().identity_hash()));
        }
        assert!(
            !snap.contains(dead_hash),
            "unreachable objects are excluded"
        );
        assert_eq!(snap.live_objects, 4);
    }

    #[test]
    fn incremental_snapshots_shrink_when_nothing_changes() {
        let (mut heap, _ids) = heap_with_live(64);
        let mut dumper = CriuDumper::new();
        let first = dumper.snapshot(&mut heap, SimTime::ZERO).unwrap();
        let second = dumper.snapshot(&mut heap, SimTime::from_secs(1)).unwrap();
        assert!(first.size_bytes > 0);
        assert!(
            second.size_bytes < first.size_bytes / 4,
            "clean heap must produce a much smaller incremental snapshot: {} vs {}",
            second.size_bytes,
            first.size_bytes
        );
        assert!(second.capture_time < first.capture_time);
        assert_eq!(dumper.snapshots_taken(), 2);
    }

    #[test]
    fn dirty_pages_reappear_in_next_snapshot() {
        let (mut heap, ids) = heap_with_live(8);
        let mut dumper = CriuDumper::new();
        dumper.snapshot(&mut heap, SimTime::ZERO).unwrap();
        // Touch one object: its page gets dirty again.
        heap.write_field(ids[0]).unwrap();
        let third = dumper.snapshot(&mut heap, SimTime::from_secs(1)).unwrap();
        assert!(third.size_bytes >= u64::from(heap.page_table().page_bytes()));
        assert!(third.size_bytes <= 4 * u64::from(heap.page_table().page_bytes()));
    }

    #[test]
    fn no_need_filtering_skips_dead_pages() {
        // Allocate a lot of garbage (whole pages of it), keep little.
        let mut heap = Heap::new(HeapConfig::small());
        let class = heap.classes_mut().intern("T");
        let slot = heap.roots_mut().create_slot("keep");
        let keep = heap
            .allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        heap.roots_mut().push(slot, keep);
        for _ in 0..100 {
            heap.allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE)
                .unwrap();
        }
        let with = CriuDumper::new()
            .snapshot(&mut heap, SimTime::ZERO)
            .unwrap()
            .size_bytes;

        // Same heap state, dumper without the no-need walk.
        let mut heap2 = Heap::new(HeapConfig::small());
        let class = heap2.classes_mut().intern("T");
        let slot = heap2.roots_mut().create_slot("keep");
        let keep = heap2
            .allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        heap2.roots_mut().push(slot, keep);
        for _ in 0..100 {
            heap2
                .allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE)
                .unwrap();
        }
        let without = CriuDumper::with_options(DumperOptions {
            use_no_need: false,
            ..DumperOptions::default()
        })
        .snapshot(&mut heap2, SimTime::ZERO)
        .unwrap()
        .size_bytes;

        assert!(
            with * 10 < without,
            "no-need filtering must skip garbage pages: {with} vs {without}"
        );
    }

    #[test]
    fn field_writes_grow_incremental_snapshots_proportionally() {
        // The GraphChi pattern: vertex state is long-lived but *written*
        // every iteration, so incremental snapshots keep paying for it —
        // exactly why the paper's Figure 3 series does not collapse to zero.
        let (mut heap, ids) = heap_with_live(64);
        let mut dumper = CriuDumper::new();
        dumper.snapshot(&mut heap, SimTime::ZERO).unwrap();
        // Touch 8 objects -> ~8 pages; touch 32 -> ~32 pages.
        for &id in ids.iter().take(8) {
            heap.write_field(id).unwrap();
        }
        let small = dumper.snapshot(&mut heap, SimTime::from_secs(1)).unwrap();
        for &id in ids.iter().take(32) {
            heap.write_field(id).unwrap();
        }
        let large = dumper.snapshot(&mut heap, SimTime::from_secs(2)).unwrap();
        assert!(
            large.size_bytes >= 3 * small.size_bytes,
            "4x the dirtied pages must grow the snapshot: {} vs {}",
            large.size_bytes,
            small.size_bytes
        );
    }

    #[test]
    fn cost_scales_with_captured_bytes() {
        let (mut heap1, _) = heap_with_live(8);
        let (mut heap2, _) = heap_with_live(128);
        let a = CriuDumper::new()
            .snapshot(&mut heap1, SimTime::ZERO)
            .unwrap();
        let b = CriuDumper::new()
            .snapshot(&mut heap2, SimTime::ZERO)
            .unwrap();
        assert!(b.size_bytes > a.size_bytes);
        assert!(b.capture_time > a.capture_time);
    }
}
