//! The `jmap` baseline dumper.

use polm2_heap::{Heap, IdHashSet, IdentityHash};
use polm2_metrics::{SimDuration, SimTime};

use crate::{HeapDumper, Snapshot, SnapshotError};

/// A `jmap -dump:live`-style baseline: every snapshot serializes the entire
/// live object graph into an HPROF-like dump.
///
/// Costs reflect what makes `jmap` slow in practice (the paper's GraphChi
/// example: a 3.8 GB dump taking 22 minutes): a full heap walk plus
/// per-object serialization with named records — far more expensive per byte
/// than CRIU's raw page copies, and never incremental.
#[derive(Debug, Clone)]
pub struct JmapDumper {
    seq: u32,
    /// Fixed cost per dump (attach, safepoint, file creation), µs.
    base_us: u64,
    /// Serialization cost per MiB of live data, µs.
    us_per_mib: u64,
    /// Per-object record overhead added to the dump, bytes.
    record_overhead_bytes: u64,
    /// Per-object visit cost, ns.
    visit_ns: u64,
}

impl JmapDumper {
    /// Creates a baseline dumper with the default calibration
    /// (~0.35 s per MiB of live data, matching the paper's GraphChi
    /// anecdote's order of magnitude).
    pub fn new() -> Self {
        JmapDumper {
            seq: 0,
            base_us: 50_000,
            us_per_mib: 350_000,
            record_overhead_bytes: 16,
            visit_ns: 400,
        }
    }

    /// Number of dumps taken so far.
    pub fn snapshots_taken(&self) -> u32 {
        self.seq
    }
}

impl Default for JmapDumper {
    fn default() -> Self {
        JmapDumper::new()
    }
}

impl HeapDumper for JmapDumper {
    fn name(&self) -> &'static str {
        "jmap"
    }

    fn snapshot(&mut self, heap: &mut Heap, now: SimTime) -> Result<Snapshot, SnapshotError> {
        let live = heap.mark_live(&[]);
        let mut hashes: IdHashSet<IdentityHash> = IdHashSet::default();
        let mut live_bytes: u64 = 0;
        for id in live.iter() {
            if let Some(rec) = heap.object(id) {
                hashes.insert(rec.identity_hash());
                live_bytes += u64::from(rec.size());
            }
        }
        let n = hashes.len() as u64;
        let size_bytes = live_bytes + n * self.record_overhead_bytes;
        let capture_time = SimDuration::from_micros(
            self.base_us + live_bytes * self.us_per_mib / (1 << 20) + n * self.visit_ns / 1_000,
        );
        let snap = Snapshot::new(self.seq, now, hashes, size_bytes, capture_time);
        self.seq += 1;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CriuDumper;
    use polm2_heap::{HeapConfig, SiteId};

    fn populated_heap() -> Heap {
        let mut heap = Heap::new(HeapConfig::small());
        let class = heap.classes_mut().intern("T");
        let slot = heap.roots_mut().create_slot("keep");
        for i in 0..200 {
            let id = heap
                .allocate(class, 2048, SiteId::new(0), Heap::YOUNG_SPACE)
                .unwrap();
            if i % 2 == 0 {
                heap.roots_mut().push(slot, id);
            }
        }
        heap
    }

    #[test]
    fn jmap_dumps_live_objects_with_overhead() {
        let mut heap = populated_heap();
        let snap = JmapDumper::new()
            .snapshot(&mut heap, SimTime::ZERO)
            .unwrap();
        assert_eq!(snap.live_objects, 100);
        assert!(snap.size_bytes > 100 * 2048, "dump carries record overhead");
    }

    #[test]
    fn jmap_is_never_incremental() {
        let mut heap = populated_heap();
        let mut dumper = JmapDumper::new();
        let first = dumper.snapshot(&mut heap, SimTime::ZERO).unwrap();
        let second = dumper.snapshot(&mut heap, SimTime::from_secs(1)).unwrap();
        assert_eq!(
            first.size_bytes, second.size_bytes,
            "every jmap dump is full-size"
        );
        assert_eq!(dumper.snapshots_taken(), 2);
    }

    #[test]
    fn dumper_beats_jmap_on_time_by_an_order_of_magnitude() {
        // The paper's headline Dumper result: >90% time reduction.
        let mut heap = populated_heap();
        let jmap = JmapDumper::new()
            .snapshot(&mut heap, SimTime::ZERO)
            .unwrap();
        let mut heap = populated_heap();
        let criu = CriuDumper::new()
            .snapshot(&mut heap, SimTime::ZERO)
            .unwrap();
        let ratio = criu.capture_time.as_micros() as f64 / jmap.capture_time.as_micros() as f64;
        assert!(
            ratio < 0.10,
            "criu/jmap time ratio {ratio} must be below 0.10"
        );
    }
}
