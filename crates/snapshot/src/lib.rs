//! Heap snapshotting: the POLM2 Dumper and the `jmap` baseline.
//!
//! The paper's Dumper is CRIU configured with two optimizations (§3.2, §4.2):
//!
//! 1. **Incremental capture** — only pages dirtied since the previous
//!    snapshot are included (the kernel soft-dirty bit, cleared per
//!    snapshot).
//! 2. **No-need filtering** — before each snapshot the Recorder walks the
//!    heap and `madvise`-marks pages holding no live objects; CRIU skips
//!    them.
//!
//! [`CriuDumper`] reproduces both against the simulated page table;
//! [`JmapDumper`] reproduces the baseline the paper normalizes against in
//! Figures 3 and 4 (a full live-object heap dump). Both also extract the
//! *content* POLM2's Analyzer needs: the identity hashes of the live objects
//! (paper §4.3 — ids must survive object moves, hence header hashes, not
//! addresses).
//!
//! # Examples
//!
//! ```
//! use polm2_heap::{Heap, HeapConfig, SiteId};
//! use polm2_metrics::SimTime;
//! use polm2_snapshot::{CriuDumper, HeapDumper};
//!
//! let mut heap = Heap::new(HeapConfig::small());
//! let class = heap.classes_mut().intern("Row");
//! let obj = heap.allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)?;
//! let slot = heap.roots_mut().create_slot("keep");
//! heap.roots_mut().push(slot, obj);
//!
//! let mut dumper = CriuDumper::new();
//! let snap = dumper.snapshot(&mut heap, SimTime::ZERO)?;
//! assert!(snap.contains(heap.object(obj).unwrap().identity_hash()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod criu;
mod index;
mod jmap;
pub mod journal;
mod record;

pub use criu::{CriuDumper, DumperOptions};
pub use index::{SnapshotIndex, SurvivalCounts};
pub use jmap::JmapDumper;
pub use journal::{
    crc32, Frame, FsMedia, FsckReport, JournalError, JournalMedia, JournalWriter, RecoveredJournal,
    SegmentDefect,
};
pub use record::{Snapshot, SnapshotSeries};

use std::error::Error;
use std::fmt;

use polm2_heap::Heap;
use polm2_metrics::SimTime;

/// A snapshot capture attempt failed.
///
/// The paper's Dumper is an external process (CRIU) driven over RPC (§3.2):
/// a dump can fail outright — the target process was busy at the safepoint,
/// the image directory filled up, the coordinator timed out. The profiling
/// pipeline must treat every capture as fallible and recover (retry, or skip
/// and count) rather than assume snapshots always arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Sequence number the failed capture would have had.
    pub seq: u32,
    /// Human-readable description of the failure.
    pub reason: String,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot {} failed: {}", self.seq, self.reason)
    }
}

impl Error for SnapshotError {}

/// Anything that can capture a heap snapshot.
///
/// Implementations must capture the identity hashes of all *live* objects
/// (dead objects are excluded, as with `jmap -dump:live`) and report the
/// capture's cost (bytes written, stop time).
pub trait HeapDumper {
    /// Short name for tables ("criu-dumper", "jmap").
    fn name(&self) -> &'static str;

    /// Captures a snapshot at simulated time `now`.
    ///
    /// Marks the heap (snapshots run right after a GC cycle, between
    /// operations, so no mutator stack roots exist) and accounts the capture
    /// cost.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the capture could not be completed. A failed
    /// attempt must leave the heap's page-table bookkeeping untouched so a
    /// retry can still capture everything the failed attempt would have.
    fn snapshot(&mut self, heap: &mut Heap, now: SimTime) -> Result<Snapshot, SnapshotError>;
}
