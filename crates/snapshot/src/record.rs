//! Snapshot records and series.

use polm2_heap::{IdHashSet, IdentityHash};
use polm2_metrics::{SimDuration, SimTime};

/// One captured heap snapshot.
///
/// Content is the set of live-object identity hashes (what the Analyzer
/// consumes); cost is the number of bytes captured and the stop time the
/// capture imposed (what Figures 3–4 compare).
///
/// The canonical content is a **sorted, duplicate-free column** of raw hash
/// values — the shape [`crate::SnapshotIndex`] merges and the shape the
/// Dumper now streams directly off the heap (no per-snapshot hash set is
/// materialized during the capture window). A hash-set view is rebuilt
/// lazily on first use for the point-query consumers that still want one.
#[derive(Debug)]
pub struct Snapshot {
    /// Sequence number within its series (0-based).
    pub seq: u32,
    /// When the capture happened.
    pub at: SimTime,
    /// Sorted, duplicate-free raw identity-hash column (canonical content).
    sorted: Vec<u64>,
    /// Hash-set view over `sorted`, rebuilt lazily on first use.
    hashes: std::sync::OnceLock<IdHashSet<IdentityHash>>,
    /// Number of live objects captured.
    pub live_objects: u64,
    /// Bytes written by the capture.
    pub size_bytes: u64,
    /// How long the application was stopped for the capture.
    pub capture_time: SimDuration,
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        // The lazy set view is cheap to rebuild; cloning only the canonical
        // column keeps clones allocation-light.
        Snapshot {
            seq: self.seq,
            at: self.at,
            sorted: self.sorted.clone(),
            hashes: std::sync::OnceLock::new(),
            live_objects: self.live_objects,
            size_bytes: self.size_bytes,
            capture_time: self.capture_time,
        }
    }
}

impl Snapshot {
    /// Creates a snapshot record from a hash set (sorts the column eagerly).
    pub fn new(
        seq: u32,
        at: SimTime,
        hashes: IdHashSet<IdentityHash>,
        size_bytes: u64,
        capture_time: SimDuration,
    ) -> Self {
        let mut sorted: Vec<u64> = hashes.iter().map(|h| u64::from(h.raw())).collect();
        sorted.sort_unstable();
        Self::from_sorted_column(seq, at, sorted, size_bytes, capture_time)
    }

    /// Creates a snapshot record directly from a sorted, duplicate-free
    /// column of raw hash values — the Dumper's streaming capture path
    /// ([`Heap::live_hash_column`] produces exactly this shape).
    ///
    /// [`Heap::live_hash_column`]: polm2_heap::Heap::live_hash_column
    ///
    /// # Panics
    ///
    /// Debug builds assert the column is strictly ascending.
    pub fn from_sorted_column(
        seq: u32,
        at: SimTime,
        sorted: Vec<u64>,
        size_bytes: u64,
        capture_time: SimDuration,
    ) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "snapshot column must be sorted and duplicate-free"
        );
        let live_objects = sorted.len() as u64;
        Snapshot {
            seq,
            at,
            sorted,
            hashes: std::sync::OnceLock::new(),
            live_objects,
            size_bytes,
            capture_time,
        }
    }

    /// True if an object with this identity hash was live at capture time.
    pub fn contains(&self, hash: IdentityHash) -> bool {
        self.sorted.binary_search(&u64::from(hash.raw())).is_ok()
    }

    /// The captured identity hashes (hash-set compatibility view, rebuilt
    /// lazily from the canonical column).
    pub fn hashes(&self) -> &IdHashSet<IdentityHash> {
        self.hashes.get_or_init(|| {
            self.sorted
                .iter()
                .map(|&raw| IdentityHash::from_raw(raw as u32))
                .collect()
        })
    }

    /// The captured identity hashes as a sorted column of raw values — the
    /// canonical content ([`crate::SnapshotIndex`] is built from these
    /// without re-sorting).
    pub fn sorted_hashes(&self) -> &[u64] {
        &self.sorted
    }
}

/// A sequence of snapshots from one profiling run.
///
/// Alongside the snapshots themselves the series maintains a
/// [`SnapshotIndex`](crate::SnapshotIndex) incrementally: each
/// [`push`](SnapshotSeries::push) delta-encodes the new snapshot's sorted
/// column against its predecessor (forcing the lazy sort), so by the time
/// the Analyzer replays, the columnar index already exists — Recorder
/// bookkeeping work, off both the replay path and the capture window.
#[derive(Debug, Clone, Default)]
pub struct SnapshotSeries {
    snapshots: Vec<Snapshot>,
    index: crate::SnapshotIndex,
}

impl SnapshotSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        SnapshotSeries::default()
    }

    /// Appends a snapshot, extending the columnar index with its delta
    /// against the previous snapshot.
    pub fn push(&mut self, snapshot: Snapshot) {
        let prev: &[u64] = self
            .snapshots
            .last()
            .map(|s| s.sorted_hashes())
            .unwrap_or(&[]);
        self.index.push_column(prev, snapshot.sorted_hashes());
        self.snapshots.push(snapshot);
    }

    /// The columnar index over the series, maintained incrementally by
    /// [`push`](SnapshotSeries::push).
    pub fn index(&self) -> &crate::SnapshotIndex {
        &self.index
    }

    /// The snapshots, capture order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Total bytes across the series.
    pub fn total_size_bytes(&self) -> u64 {
        self.snapshots.iter().map(|s| s.size_bytes).sum()
    }

    /// Total stop time across the series.
    pub fn total_capture_time(&self) -> SimDuration {
        self.snapshots.iter().map(|s| s.capture_time).sum()
    }

    /// Mean snapshot size (0 for an empty series).
    pub fn mean_size_bytes(&self) -> u64 {
        if self.snapshots.is_empty() {
            0
        } else {
            self.total_size_bytes() / self.snapshots.len() as u64
        }
    }

    /// The number of snapshots in which each hash appears consecutively from
    /// its first appearance is what the Analyzer derives; the series only
    /// provides ordered access, via [`snapshots`](SnapshotSeries::snapshots).
    ///
    /// Convenience: how many snapshots contain `hash`.
    pub fn appearances(&self, hash: IdentityHash) -> usize {
        self.snapshots.iter().filter(|s| s.contains(hash)).count()
    }
}

impl FromIterator<Snapshot> for SnapshotSeries {
    fn from_iter<T: IntoIterator<Item = Snapshot>>(iter: T) -> Self {
        let mut series = SnapshotSeries::new();
        for snapshot in iter {
            series.push(snapshot);
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::ObjectId;

    fn snap(seq: u32, ids: &[u64], size: u64, ms: u64) -> Snapshot {
        Snapshot::new(
            seq,
            SimTime::from_secs(seq as u64),
            ids.iter()
                .map(|&i| IdentityHash::of(ObjectId::new(i)))
                .collect(),
            size,
            SimDuration::from_millis(ms),
        )
    }

    #[test]
    fn snapshot_content_queries() {
        let s = snap(0, &[1, 2], 4096, 3);
        assert!(s.contains(IdentityHash::of(ObjectId::new(1))));
        assert!(!s.contains(IdentityHash::of(ObjectId::new(9))));
        assert_eq!(s.live_objects, 2);
    }

    #[test]
    fn series_accumulates_costs() {
        let series: SnapshotSeries = vec![snap(0, &[1], 100, 5), snap(1, &[1, 2], 300, 10)]
            .into_iter()
            .collect();
        assert_eq!(series.len(), 2);
        assert_eq!(series.total_size_bytes(), 400);
        assert_eq!(series.mean_size_bytes(), 200);
        assert_eq!(series.total_capture_time(), SimDuration::from_millis(15));
        assert_eq!(series.appearances(IdentityHash::of(ObjectId::new(1))), 2);
        assert_eq!(series.appearances(IdentityHash::of(ObjectId::new(2))), 1);
        assert!(!series.is_empty());
    }

    #[test]
    fn empty_series_defaults() {
        let series = SnapshotSeries::new();
        assert!(series.is_empty());
        assert_eq!(series.mean_size_bytes(), 0);
        assert_eq!(series.total_size_bytes(), 0);
    }
}
