//! Columnar snapshot index: sorted hash columns, delta encoding, and the
//! merged survival-count table the Analyzer replays against.
//!
//! The paper's Analyzer counts, for every recorded object, the number of
//! snapshots its identity hash appears in (§3.3). Probing one hash set per
//! snapshot per object is O(objects × snapshots) scattered hash lookups,
//! paid in full on every replay; the columnar form moves that work to
//! capture time and turns it into sequential merges:
//!
//! 1. each snapshot's hashes are a **sorted column** ([`Snapshot::sorted_hashes`],
//!    built once at capture time);
//! 2. every column is stored **delta encoded** — the sorted `added`/`removed`
//!    sets vs. the previous column (the first column's delta against the
//!    empty heap is the column itself). Heaps mutate far less than they
//!    retain between GC cycles, so the delta is usually tiny;
//! 3. a **running accumulator** — one sorted `(hash, appearances)` table,
//!    packed as `hash << 32 | count` — is merged with each new column as it
//!    is pushed. This is the k-way merge of all columns, amortized across
//!    captures: each push costs one linear merge, cheaper than the sort the
//!    capture already performs. By replay time the counts exist;
//!    [`survival_counts`](SnapshotIndex::survival_counts) only snapshots the
//!    accumulator and builds a bucket directory over the high hash bits so
//!    each per-object query is a directory fetch plus a short scan instead
//!    of one hash probe per snapshot.
//!
//! The index is maintained incrementally by [`SnapshotSeries::push`] (the
//! Dumper knows the delta at capture time), so an Analyzer replay starts
//! from ready counts and pays only for lookups.
//!
//! Everything here is deterministic: same series in, byte-identical counts
//! out, which is what lets the parallel Analyzer shard object streams freely.
//!
//! [`Snapshot::sorted_hashes`]: crate::Snapshot::sorted_hashes
//! [`SnapshotSeries::push`]: crate::SnapshotSeries::push

use crate::record::SnapshotSeries;

/// One snapshot's hash column, delta encoded: the sorted hashes that appeared
/// / disappeared relative to the previous snapshot's column.
#[derive(Debug, Clone)]
struct Column {
    /// Hashes present in this column but not the previous one.
    added: Vec<u64>,
    /// Hashes present in the previous column but not this one.
    removed: Vec<u64>,
    /// True when the delta is strictly smaller than the full column — the
    /// case the encoding exists for. A churn-heavy column can exceed its
    /// full size (worst case 2×, for disjoint snapshots); the flag keeps the
    /// win observable via [`SnapshotIndex::delta_columns`].
    delta_won: bool,
}

/// A columnar index over a [`SnapshotSeries`].
///
/// # Examples
///
/// ```
/// use polm2_heap::{IdentityHash, ObjectId};
/// use polm2_metrics::{SimDuration, SimTime};
/// use polm2_snapshot::{Snapshot, SnapshotIndex, SnapshotSeries};
///
/// let snap = |seq: u32, ids: &[u64]| {
///     Snapshot::new(
///         seq,
///         SimTime::from_secs(seq as u64),
///         ids.iter().map(|&i| IdentityHash::of(ObjectId::new(i))).collect(),
///         4096,
///         SimDuration::from_millis(1),
///     )
/// };
/// let series: SnapshotSeries = vec![snap(0, &[1, 2, 3]), snap(1, &[2, 3])].into_iter().collect();
/// let counts = SnapshotIndex::build(&series).survival_counts();
/// assert_eq!(counts.get(u64::from(IdentityHash::of(ObjectId::new(2)).raw())), 2);
/// assert_eq!(counts.get(u64::from(IdentityHash::of(ObjectId::new(1)).raw())), 1);
/// assert_eq!(counts.get(0xdead_beef), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SnapshotIndex {
    columns: Vec<Column>,
    /// Running survival accumulator: sorted `hash << 32 | count` entries for
    /// every hash seen so far. Identity hashes are 32-bit, so hash and count
    /// pack into one word — lookups touch a single cache line per entry.
    acc: Vec<u64>,
}

impl SnapshotIndex {
    /// Builds the index from a complete snapshot series.
    ///
    /// [`SnapshotSeries`] maintains the same index incrementally
    /// (see [`SnapshotSeries::index`]); this constructor exists for building
    /// one from scratch, e.g. to time the build itself.
    pub fn build(series: &SnapshotSeries) -> Self {
        let mut index = SnapshotIndex::default();
        let mut prev: &[u64] = &[];
        for snapshot in series.snapshots() {
            index.push_column(prev, snapshot.sorted_hashes());
            prev = snapshot.sorted_hashes();
        }
        index
    }

    /// Appends one snapshot's column: delta encodes it against the previous
    /// column (`prev` is empty for the first snapshot) and merges it into
    /// the survival accumulator. Both slices must be sorted, duplicate-free,
    /// and hold 32-bit values, which [`crate::Snapshot`] guarantees.
    pub(crate) fn push_column(&mut self, prev: &[u64], cur: &[u64]) {
        let (added, removed) = diff_sorted(prev, cur);
        let delta_won = !self.columns.is_empty() && added.len() + removed.len() < cur.len();
        self.columns.push(Column {
            added,
            removed,
            delta_won,
        });
        if !cur.is_empty() {
            self.acc = merge_accumulate(&self.acc, cur);
        }
    }

    /// Number of snapshots indexed.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the index covers no snapshots.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// How many columns have a delta strictly smaller than their full column.
    pub fn delta_columns(&self) -> usize {
        self.columns.iter().filter(|c| c.delta_won).count()
    }

    /// Total hash entries stored across all column deltas, i.e. the encoded
    /// columns' memory footprint in entries. Compare against the undeltaed
    /// sum of snapshot sizes to see what delta encoding saved.
    pub fn stored_entries(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.added.len() + c.removed.len())
            .sum()
    }

    /// The most recently pushed column's delta (`added`, `removed` vs. the
    /// previous column), or `None` before any push. The journal's streaming
    /// serializer encodes snapshots straight from this — the diff already
    /// computed at [`SnapshotSeries::push`] time — instead of re-diffing
    /// full columns.
    pub fn last_delta(&self) -> Option<(&[u64], &[u64])> {
        self.columns
            .last()
            .map(|c| (c.added.as_slice(), c.removed.as_slice()))
    }

    /// The merged survival-count table. The accumulator is already merged —
    /// this snapshots it and builds the lookup directory, O(distinct hashes),
    /// independent of the number of snapshots.
    pub fn survival_counts(&self) -> SurvivalCounts {
        SurvivalCounts::new(self.acc.clone())
    }

    /// Appearances of `hash` straight off the running accumulator: one
    /// binary search, no table clone, no directory build. This is the fused
    /// single-pass replay path for small profiles — a sub-16k-record session
    /// issues too few lookups to amortize [`survival_counts`]'s 64 Ki-bucket
    /// directory, so the Analyzer queries the accumulator in place and the
    /// whole replay is one pass over the record streams. Agrees with
    /// [`SurvivalCounts::get`] for every input by construction (both read
    /// the same packed table).
    #[inline]
    pub fn survivals_of(&self, hash: u64) -> u32 {
        if hash >> 32 != 0 {
            return 0;
        }
        match self.acc.binary_search_by(|&entry| (entry >> 32).cmp(&hash)) {
            Ok(i) => (self.acc[i] & u64::from(u32::MAX)) as u32,
            Err(_) => 0,
        }
    }
}

/// Number of high hash bits the [`SurvivalCounts`] lookup directory indexes.
const DIR_BITS: u32 = 16;
/// Directory bucket count; bucket `b` spans hashes with bits \[16..32) == `b`.
const DIR_BUCKETS: usize = 1 << DIR_BITS;

/// Sorted `(hash, appearances)` table: for every hash that appeared in at
/// least one snapshot, the number of snapshots containing it.
///
/// Entries are packed `hash << 32 | count` words sorted by hash. Identity
/// hashes are 32-bit values spread by a finalizer, so a directory over their
/// high 16 bits lands [`get`](SurvivalCounts::get) on a run of
/// ~`len / 65536` candidates — effectively constant-time lookups, one cache
/// line per candidate, no hashing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SurvivalCounts {
    /// Sorted packed entries: hash in the high 32 bits, count in the low 32.
    table: Vec<u64>,
    /// `dir[b]` = first table index whose hash's high 16 bits are ≥ `b`.
    dir: Vec<u32>,
}

impl SurvivalCounts {
    /// Wraps a sorted packed table, building the lookup directory.
    fn new(table: Vec<u64>) -> Self {
        debug_assert!(table.windows(2).all(|w| w[0] >> 32 < w[1] >> 32));
        let mut dir = vec![0u32; DIR_BUCKETS + 1];
        let mut i = 0usize;
        for (b, slot) in dir.iter_mut().enumerate() {
            while i < table.len() && (table[i] >> 48) < b as u64 {
                i += 1;
            }
            *slot = i as u32;
        }
        SurvivalCounts { table, dir }
    }

    /// Appearances of `hash` across the series (0 if never captured). A
    /// directory fetch plus a short scan — replaces one hash probe per
    /// snapshot. Hashes ≥ 2³² can never have been captured (identity hashes
    /// are 32-bit) and report 0.
    #[inline]
    pub fn get(&self, hash: u64) -> u32 {
        if hash >> 32 != 0 || self.table.is_empty() {
            return 0;
        }
        let b = (hash >> DIR_BITS) as usize;
        let (lo, hi) = (self.dir[b] as usize, self.dir[b + 1] as usize);
        for &entry in &self.table[lo..hi] {
            if entry >> 32 >= hash {
                return if entry >> 32 == hash {
                    (entry & u64::from(u32::MAX)) as u32
                } else {
                    0
                };
            }
        }
        0
    }

    /// Number of distinct hashes observed across the series.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if no snapshot contributed any hash.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// `(added, removed)` between two sorted, duplicate-free columns.
fn diff_sorted(prev: &[u64], cur: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < cur.len() {
        match prev[i].cmp(&cur[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                removed.push(prev[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(cur[j]);
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&prev[i..]);
    added.extend_from_slice(&cur[j..]);
    (added, removed)
}

/// Merges one sorted hash column into the packed accumulator: shared hashes
/// get their count bumped, new hashes enter with count 1.
fn merge_accumulate(acc: &[u64], column: &[u64]) -> Vec<u64> {
    debug_assert!(column.iter().all(|&h| h >> 32 == 0));
    let mut out = Vec::with_capacity(acc.len() + column.len());
    let (mut i, mut j) = (0, 0);
    while i < acc.len() && j < column.len() {
        match (acc[i] >> 32).cmp(&column[j]) {
            std::cmp::Ordering::Equal => {
                // Count lives in the low 32 bits, so +1 bumps it in place.
                out.push(acc[i] + 1);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                out.push(acc[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((column[j] << 32) | 1);
                j += 1;
            }
        }
    }
    out.extend_from_slice(&acc[i..]);
    for &h in &column[j..] {
        out.push((h << 32) | 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Snapshot;
    use polm2_heap::{IdentityHash, ObjectId};
    use polm2_metrics::{SimDuration, SimTime};

    fn snap(seq: u32, ids: &[u64]) -> Snapshot {
        Snapshot::new(
            seq,
            SimTime::from_secs(seq as u64),
            ids.iter()
                .map(|&i| IdentityHash::of(ObjectId::new(i)))
                .collect(),
            4096,
            SimDuration::from_millis(1),
        )
    }

    fn raw(id: u64) -> u64 {
        u64::from(IdentityHash::of(ObjectId::new(id)).raw())
    }

    #[test]
    fn counts_match_per_snapshot_probing() {
        let series: SnapshotSeries = vec![
            snap(0, &[1, 2, 3, 4]),
            snap(1, &[2, 3, 4]),
            snap(2, &[3, 4, 5]),
            snap(3, &[]),
            snap(4, &[5]),
        ]
        .into_iter()
        .collect();
        let counts = SnapshotIndex::build(&series).survival_counts();
        for id in 0..8u64 {
            let expected = series.appearances(IdentityHash::of(ObjectId::new(id))) as u32;
            assert_eq!(counts.get(raw(id)), expected, "object {id}");
        }
    }

    #[test]
    fn departures_and_returns_count_exactly() {
        // Object present at snapshots {0, 1, 3, 4} — two presence intervals.
        let series: SnapshotSeries = vec![
            snap(0, &[7]),
            snap(1, &[7]),
            snap(2, &[]),
            snap(3, &[7]),
            snap(4, &[7]),
        ]
        .into_iter()
        .collect();
        let counts = SnapshotIndex::build(&series).survival_counts();
        assert_eq!(counts.get(raw(7)), 4);
    }

    #[test]
    fn stable_heaps_delta_encode() {
        // 100 long-lived objects, one churn object per snapshot: every column
        // after the first should store a small delta, not 101 entries.
        let series: SnapshotSeries = (0..10u32)
            .map(|s| {
                let mut ids: Vec<u64> = (0..100).collect();
                ids.push(1000 + u64::from(s));
                snap(s, &ids)
            })
            .collect();
        let index = SnapshotIndex::build(&series);
        assert_eq!(index.len(), 10);
        assert_eq!(index.delta_columns(), 9);
        // Full first column (101) + 9 deltas of {1 added, 1 removed}.
        assert_eq!(index.stored_entries(), 101 + 9 * 2);
        let counts = index.survival_counts();
        assert_eq!(counts.get(raw(0)), 10);
        assert_eq!(counts.get(raw(1005)), 1);
    }

    #[test]
    fn disjoint_snapshots_get_no_delta_credit() {
        let series: SnapshotSeries = vec![snap(0, &[1, 2]), snap(1, &[3, 4])]
            .into_iter()
            .collect();
        let index = SnapshotIndex::build(&series);
        assert_eq!(index.delta_columns(), 0, "a full rewrite beats its delta");
        let counts = index.survival_counts();
        assert_eq!(counts.len(), 4);
        for id in 1..=4u64 {
            assert_eq!(counts.get(raw(id)), 1);
        }
    }

    #[test]
    fn series_maintains_the_index_incrementally() {
        let series: SnapshotSeries = vec![snap(0, &[1, 2, 3]), snap(1, &[2, 3, 4]), snap(2, &[4])]
            .into_iter()
            .collect();
        let incremental = series.index();
        let rebuilt = SnapshotIndex::build(&series);
        assert_eq!(incremental.len(), rebuilt.len());
        assert_eq!(incremental.delta_columns(), rebuilt.delta_columns());
        assert_eq!(incremental.stored_entries(), rebuilt.stored_entries());
        assert_eq!(incremental.survival_counts(), rebuilt.survival_counts());
    }

    #[test]
    fn fused_lookup_agrees_with_the_directory_table() {
        let series: SnapshotSeries = vec![
            snap(0, &[1, 2, 3, 4]),
            snap(1, &[2, 3, 4]),
            snap(2, &[3, 4, 5]),
        ]
        .into_iter()
        .collect();
        let index = SnapshotIndex::build(&series);
        let counts = index.survival_counts();
        for id in 0..16u64 {
            assert_eq!(index.survivals_of(raw(id)), counts.get(raw(id)), "{id}");
            assert_eq!(index.survivals_of(raw(id) | 1 << 40), 0, "wide {id}");
        }
        assert_eq!(SnapshotIndex::default().survivals_of(raw(1)), 0);
    }

    #[test]
    fn empty_series_yields_empty_counts() {
        let index = SnapshotIndex::build(&SnapshotSeries::new());
        assert!(index.is_empty());
        let counts = index.survival_counts();
        assert!(counts.is_empty());
        assert_eq!(counts.get(raw(1)), 0);
    }

    #[test]
    fn lookups_agree_with_per_snapshot_probing_across_the_value_range() {
        // Dense cluster + sparse spread, so some directory buckets hold runs
        // and most are empty; also query far-off and 64-bit hashes.
        let mut ids: Vec<u64> = (0..2000u64).collect();
        ids.extend((0..64u64).map(|i| 1 << (i % 40)));
        ids.sort_unstable();
        ids.dedup();
        let series: SnapshotSeries = vec![snap(0, &ids), snap(1, &ids[..ids.len() / 2])]
            .into_iter()
            .collect();
        let counts = SnapshotIndex::build(&series).survival_counts();
        let captured: std::collections::HashSet<u64> = ids.iter().map(|&id| raw(id)).collect();
        for &id in &ids {
            let expected = series.appearances(IdentityHash::of(ObjectId::new(id))) as u32;
            assert_eq!(counts.get(raw(id)), expected, "object {id}");
            assert_eq!(counts.get(raw(id) | 0xffff_ffff_0000_0000), 0);
            let perturbed = raw(id) ^ 0x5a5a_5a5a;
            if !captured.contains(&perturbed) {
                assert_eq!(counts.get(perturbed), 0, "object {id} perturbed");
            }
        }
    }

    #[test]
    fn sorted_hashes_are_sorted_and_complete() {
        let s = snap(0, &[9, 1, 5, 3]);
        let col = s.sorted_hashes();
        assert_eq!(col.len(), 4);
        assert!(col.windows(2).all(|w| w[0] < w[1]));
        for id in [9u64, 1, 5, 3] {
            assert!(col.binary_search(&raw(id)).is_ok());
        }
    }
}
