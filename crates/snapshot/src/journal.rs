//! The durable profiling-session journal (`polm2-journal v1`).
//!
//! The paper's Dumper persists incremental snapshots to disk as it runs
//! (CRIU images, §3.2); everything else — the Recorder's trace table and
//! object-id streams — lives in memory until the end of the run. A crash at
//! minute 14 of 15 therefore loses the whole profile. This module is the
//! disk format that closes that gap: an append-only, checksummed journal the
//! profiling session streams into as it runs, built so that *any* crash
//! leaves a journal whose valid prefix is unambiguous.
//!
//! # Format
//!
//! A journal is a directory of numbered segment files:
//!
//! ```text
//! <dir>/seg-000001.polm2j        sealed (fsynced, atomically renamed)
//! <dir>/seg-000002.polm2j.tmp    active (append-only; may have a torn tail)
//! ```
//!
//! Each segment starts with a 16-byte header — the 8-byte magic
//! `b"polm2j1\n"`, a `u32` format version (1), and the `u32` segment
//! sequence number — followed by frames:
//!
//! ```text
//! +----------+----------+------+------------------+
//! | len: u32 | crc: u32 | kind | payload (len-1 B)|
//! +----------+----------+------+------------------+
//! ```
//!
//! `len` counts the kind byte plus the payload; `crc` is the CRC-32 (IEEE)
//! of exactly those `len` bytes. All integers are little-endian. Frame
//! *kinds* are opaque to this module — the session layer in `polm2-core`
//! defines them (trace definitions, allocation batches, snapshots, commit).
//!
//! # Durability rules
//!
//! * Frames are appended to the active segment in a single write each, so a
//!   crash tears at most the final frame.
//! * Rotation is atomic: the active file is fsynced, then renamed to its
//!   sealed name. A sealed segment is therefore always complete.
//! * Clean shutdown appends a commit frame (a kind the session layer
//!   reserves), fsyncs, and seals the active segment.
//!
//! # Recovery invariants
//!
//! [`recover`] (and [`fsck`], its read-only report) walk segments in
//! sequence order and accept frames until the first defect — a torn tail, a
//! CRC mismatch, a bad header, or a gap in the segment numbering. Everything
//! before that point is trusted (CRC-verified); everything after is
//! unreachable, because frame alignment and replay order cannot be trusted
//! past a defect. [`repair`] truncates the journal to exactly that valid
//! prefix and never invents bytes past the last valid frame.
//!
//! All I/O goes through the [`JournalMedia`] trait so tests (and the chaos
//! suite in `polm2-core`) can inject short writes, torn renames, bit flips,
//! and transient errors between the journal and the disk.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Segment-file magic: the first 8 bytes of every segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"polm2j1\n";
/// Journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Bytes of segment header preceding the first frame.
pub const SEGMENT_HEADER_LEN: usize = 16;
/// Bytes of frame header preceding the kind byte (`len` + `crc`).
pub const FRAME_HEADER_LEN: usize = 8;
/// Upper bound on a single frame's `len` field; anything larger is treated
/// as corruption (a garbage length must not drive a multi-gigabyte read).
pub const MAX_FRAME_LEN: u32 = 1 << 28;
/// Default active-segment size at which the writer rotates.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — the checksum every frame
/// carries and the `# polm2-crc` profile footer uses.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Continues a CRC-32 computation (`crc` from a previous [`crc32`] /
/// [`crc32_update`] call).
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    // Tiny table-free bitwise variant: 8 conditional xors per byte. The
    // journal checksums kilobyte frames, not gigabyte streams, and staying
    // table-free keeps the implementation obviously correct.
    let mut c = !crc;
    for &b in bytes {
        c ^= u32::from(b);
        for _ in 0..8 {
            c = (c >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(c & 1)));
        }
    }
    !c
}

/// Why a journal operation failed.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation failed (possibly transient; the session layer
    /// retries these with backoff).
    Io {
        /// The operation that failed ("append", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The on-disk bytes are not a valid journal (CRC mismatch, bad header,
    /// impossible length). Not retryable; `fsck --repair` truncates it away.
    Corrupt {
        /// Segment sequence number (0 if unknown).
        segment: u32,
        /// Byte offset within the segment where the defect was found.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The frames are individually valid but do not replay into a
    /// consistent session (wrong ordering, id mismatch, unknown kind).
    Replay {
        /// Index of the offending frame in recovery order.
        frame: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, source } => {
                write!(f, "journal {op} failed on {}: {source}", path.display())
            }
            JournalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "journal corrupt in segment {segment} at offset {offset}: {reason}"
            ),
            JournalError::Replay { frame, reason } => {
                write!(f, "journal replay failed at frame {frame}: {reason}")
            }
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl JournalError {
    /// True for failures worth retrying (transient I/O); false for
    /// corruption, which no retry will fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, JournalError::Io { .. })
    }

    fn io(op: &'static str, path: &Path, source: io::Error) -> Self {
        JournalError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

/// The I/O surface the journal needs. [`FsMedia`] is the real filesystem;
/// the chaos suite wraps it to inject disk faults between journal and disk.
pub trait JournalMedia {
    /// Appends `bytes` to `path`, creating the file if needed.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes `path`'s data to stable storage (fsync).
    fn sync(&mut self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    /// Reads the entire contents of `path`.
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the file names (not full paths) inside `dir`.
    fn list(&mut self, dir: &Path) -> io::Result<Vec<String>>;
    /// Truncates `path` to `len` bytes.
    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&mut self, path: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()>;
}

/// [`JournalMedia`] backed by `std::fs` — the production implementation.
#[derive(Debug, Default)]
pub struct FsMedia;

impl JournalMedia for FsMedia {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

fn sealed_name(seq: u32) -> String {
    format!("seg-{seq:06}.polm2j")
}

fn active_name(seq: u32) -> String {
    format!("seg-{seq:06}.polm2j.tmp")
}

/// Parses a segment file name into `(sequence, sealed?)`.
fn parse_segment_name(name: &str) -> Option<(u32, bool)> {
    let (stem, sealed) = match name.strip_suffix(".tmp") {
        Some(stem) => (stem, false),
        None => (name, true),
    };
    let digits = stem.strip_prefix("seg-")?.strip_suffix(".polm2j")?;
    if digits.len() != 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok().map(|seq| (seq, sealed))
}

fn segment_header(seq: u32) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..8].copy_from_slice(&SEGMENT_MAGIC);
    h[8..12].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Encodes one frame (header + kind + payload) into a contiguous buffer.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let crc = crc32_update(crc32(&[kind]), payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out
}

/// One recovered frame: its kind byte and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind (defined by the session layer).
    pub kind: u8,
    /// The frame payload.
    pub payload: Vec<u8>,
}

/// Where and why scanning a segment stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentDefect {
    /// The segment header is missing or wrong (magic, version, sequence).
    BadHeader {
        /// What was wrong with it.
        reason: String,
    },
    /// The file ends mid-frame: fewer bytes remain than the frame header or
    /// its declared length requires (the classic crash signature).
    TornTail {
        /// Offset of the first byte that cannot be part of a valid frame.
        offset: u64,
        /// Bytes the torn tail holds beyond the valid prefix.
        torn_bytes: u64,
    },
    /// A structurally complete frame whose CRC does not match its bytes
    /// (bit rot, a flipped bit, an overwritten block).
    CrcMismatch {
        /// Offset of the offending frame.
        offset: u64,
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the frame bytes.
        computed: u32,
    },
    /// A frame with an impossible length field.
    BadLength {
        /// Offset of the offending frame.
        offset: u64,
        /// The length it claimed.
        len: u32,
    },
}

impl fmt::Display for SegmentDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentDefect::BadHeader { reason } => write!(f, "bad segment header: {reason}"),
            SegmentDefect::TornTail { offset, torn_bytes } => {
                write!(f, "torn tail at offset {offset} ({torn_bytes} bytes)")
            }
            SegmentDefect::CrcMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "crc mismatch at offset {offset}: stored {stored:08x}, computed {computed:08x}"
            ),
            SegmentDefect::BadLength { offset, len } => {
                write!(f, "impossible frame length {len} at offset {offset}")
            }
        }
    }
}

/// What [`fsck`] found in one segment file.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Segment sequence number (from the file name).
    pub seq: u32,
    /// File name within the journal directory.
    pub name: String,
    /// True for sealed segments (no `.tmp` suffix).
    pub sealed: bool,
    /// Valid frames scanned before any defect.
    pub frames: u64,
    /// Byte length of the valid prefix (header + valid frames).
    pub valid_bytes: u64,
    /// Total file length.
    pub total_bytes: u64,
    /// The defect that stopped the scan, if any.
    pub defect: Option<SegmentDefect>,
    /// True if this segment is past an earlier defect or gap and was
    /// therefore not replayed (its frames are unreachable).
    pub unreachable: bool,
}

/// The full [`fsck`] verdict over a journal directory.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Per-segment findings, sequence order.
    pub segments: Vec<SegmentReport>,
    /// Segment sequence numbers missing from the directory (gaps between
    /// the first and last present segment).
    pub missing_segments: Vec<u32>,
    /// Total valid frames reachable by recovery.
    pub frames_valid: u64,
    /// True if the reachable frames end in a commit frame of kind
    /// `commit_kind` as passed to [`fsck`]/[`recover`].
    pub committed: bool,
}

impl FsckReport {
    /// True if every byte of every segment is valid, no segment is missing,
    /// and nothing is unreachable. (A missing commit frame is *not* dirt —
    /// an in-progress journal is clean.)
    pub fn is_clean(&self) -> bool {
        self.missing_segments.is_empty()
            && self
                .segments
                .iter()
                .all(|s| s.defect.is_none() && !s.unreachable)
    }

    /// Count of segments whose scan hit a defect.
    pub fn defective_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.defect.is_some()).count()
    }

    /// Bytes that would survive [`repair`]: the valid prefix of every
    /// reachable segment.
    pub fn valid_bytes(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| !s.unreachable)
            .map(|s| s.valid_bytes)
            .sum()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} segment(s), {} valid frame(s), committed: {}",
            self.segments.len(),
            self.frames_valid,
            if self.committed { "yes" } else { "no" }
        )?;
        for s in &self.segments {
            write!(
                f,
                "  {}: {} frame(s), {}/{} bytes valid",
                s.name, s.frames, s.valid_bytes, s.total_bytes
            )?;
            if let Some(d) = &s.defect {
                write!(f, " — {d}")?;
            }
            if s.unreachable {
                write!(f, " — UNREACHABLE (past an earlier defect or gap)")?;
            }
            writeln!(f)?;
        }
        for seq in &self.missing_segments {
            writeln!(f, "  segment {seq} MISSING")?;
        }
        Ok(())
    }
}

/// Scans one segment's bytes: returns the valid frames, the valid byte
/// length, and the defect that stopped the scan (if any).
fn scan_segment(seq: u32, bytes: &[u8]) -> (Vec<Frame>, u64, Option<SegmentDefect>) {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return (
            Vec::new(),
            0,
            Some(SegmentDefect::BadHeader {
                reason: format!("file is {} bytes, header needs 16", bytes.len()),
            }),
        );
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return (
            Vec::new(),
            0,
            Some(SegmentDefect::BadHeader {
                reason: "wrong magic".to_string(),
            }),
        );
    }
    let version = u32::from_le_bytes(le_array(&bytes[8..12]));
    if version != JOURNAL_VERSION {
        return (
            Vec::new(),
            0,
            Some(SegmentDefect::BadHeader {
                reason: format!("unsupported version {version}"),
            }),
        );
    }
    let header_seq = u32::from_le_bytes(le_array(&bytes[12..16]));
    if header_seq != seq {
        return (
            Vec::new(),
            0,
            Some(SegmentDefect::BadHeader {
                reason: format!("header says segment {header_seq}, file name says {seq}"),
            }),
        );
    }

    let mut frames = Vec::new();
    let mut at = SEGMENT_HEADER_LEN;
    loop {
        if at == bytes.len() {
            return (frames, at as u64, None);
        }
        if bytes.len() - at < FRAME_HEADER_LEN {
            let defect = SegmentDefect::TornTail {
                offset: at as u64,
                torn_bytes: (bytes.len() - at) as u64,
            };
            return (frames, at as u64, Some(defect));
        }
        let len = u32::from_le_bytes(le_array(&bytes[at..at + 4]));
        let stored = u32::from_le_bytes(le_array(&bytes[at + 4..at + 8]));
        if len == 0 || len > MAX_FRAME_LEN {
            return (
                frames,
                at as u64,
                Some(SegmentDefect::BadLength {
                    offset: at as u64,
                    len,
                }),
            );
        }
        let body_start = at + FRAME_HEADER_LEN;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            let defect = SegmentDefect::TornTail {
                offset: at as u64,
                torn_bytes: (bytes.len() - at) as u64,
            };
            return (frames, at as u64, Some(defect));
        }
        let body = &bytes[body_start..body_end];
        let computed = crc32(body);
        if computed != stored {
            return (
                frames,
                at as u64,
                Some(SegmentDefect::CrcMismatch {
                    offset: at as u64,
                    stored,
                    computed,
                }),
            );
        }
        frames.push(Frame {
            kind: body[0],
            payload: body[1..].to_vec(),
        });
        at = body_end;
    }
}

/// Lists and orders the segment files of `dir`. A sequence number present
/// both sealed and as `.tmp` keeps the sealed file (the rename happened; the
/// leftover tmp is garbage from a crash immediately after rotation).
fn segment_files(
    media: &mut dyn JournalMedia,
    dir: &Path,
) -> Result<Vec<(u32, String, bool)>, JournalError> {
    let names = media
        .list(dir)
        .map_err(|e| JournalError::io("list", dir, e))?;
    let mut by_seq: std::collections::BTreeMap<u32, (String, bool)> = Default::default();
    for name in names {
        if let Some((seq, sealed)) = parse_segment_name(&name) {
            match by_seq.get(&seq) {
                Some((_, true)) => {}
                _ => {
                    by_seq.insert(seq, (name, sealed));
                }
            }
        }
    }
    Ok(by_seq
        .into_iter()
        .map(|(seq, (name, sealed))| (seq, name, sealed))
        .collect())
}

/// Everything [`recover`] salvaged from a journal directory.
#[derive(Debug)]
pub struct RecoveredJournal {
    /// The reachable, CRC-verified frames, in write order.
    pub frames: Vec<Frame>,
    /// The fsck findings made along the way.
    pub report: FsckReport,
}

/// Reads the journal's valid prefix: every CRC-verified frame up to the
/// first defect or gap, in write order. `commit_kind` identifies the
/// session layer's commit frame so the report can say whether the journal
/// ends in a clean shutdown.
///
/// # Errors
///
/// Only hard I/O failures; defects (torn tails, CRC mismatches, missing
/// segments) are *findings*, reported in [`RecoveredJournal::report`], not
/// errors. An empty or missing directory recovers zero frames.
pub fn recover(
    media: &mut dyn JournalMedia,
    dir: &Path,
    commit_kind: u8,
) -> Result<RecoveredJournal, JournalError> {
    let mut report = FsckReport::default();
    let mut frames = Vec::new();
    if media.list(dir).is_err() {
        // A journal that was never created is an empty journal.
        return Ok(RecoveredJournal { frames, report });
    }
    let files = segment_files(media, dir)?;
    let mut expected_seq = files.first().map(|(seq, _, _)| *seq);
    let mut broken = false;
    for (seq, name, sealed) in files {
        // Gap in the numbering: everything from here on is unreachable.
        if let Some(expected) = expected_seq {
            for missing in expected..seq {
                report.missing_segments.push(missing);
                broken = true;
            }
        }
        expected_seq = Some(seq + 1);
        let path = dir.join(&name);
        let bytes = media
            .read(&path)
            .map_err(|e| JournalError::io("read", &path, e))?;
        let (seg_frames, valid_bytes, defect) = scan_segment(seq, &bytes);
        let unreachable = broken;
        if !broken {
            report.frames_valid += seg_frames.len() as u64;
            frames.extend(seg_frames);
        }
        if defect.is_some() {
            broken = true;
        }
        report.segments.push(SegmentReport {
            seq,
            name,
            sealed,
            frames: if unreachable { 0 } else { report.frames_valid },
            valid_bytes,
            total_bytes: bytes.len() as u64,
            defect,
            unreachable,
        });
    }
    // Per-segment frame counts, not cumulative.
    let mut prior = 0;
    for s in report.segments.iter_mut().filter(|s| !s.unreachable) {
        let cumulative = s.frames;
        s.frames = cumulative - prior;
        prior = cumulative;
    }
    report.committed = frames.last().is_some_and(|f| f.kind == commit_kind);
    Ok(RecoveredJournal { frames, report })
}

/// Read-only integrity check: [`recover`] without keeping the frames.
///
/// # Errors
///
/// Only hard I/O failures (see [`recover`]).
pub fn fsck(
    media: &mut dyn JournalMedia,
    dir: &Path,
    commit_kind: u8,
) -> Result<FsckReport, JournalError> {
    recover(media, dir, commit_kind).map(|r| r.report)
}

/// Repairs a journal in place: truncates the first defective segment to its
/// valid prefix and removes every later (unreachable) segment and any
/// leftover `.tmp` duplicates. Never writes new frame bytes — the repaired
/// journal is exactly the valid prefix [`recover`] would read, so repair can
/// never extend the journal past the last valid frame.
///
/// Returns the post-repair report (which is clean by construction).
///
/// # Errors
///
/// Hard I/O failures while truncating or removing.
pub fn repair(
    media: &mut dyn JournalMedia,
    dir: &Path,
    commit_kind: u8,
) -> Result<FsckReport, JournalError> {
    let before = fsck(media, dir, commit_kind)?;
    for seg in &before.segments {
        let path = dir.join(&seg.name);
        if seg.unreachable {
            media
                .remove(&path)
                .map_err(|e| JournalError::io("remove", &path, e))?;
            continue;
        }
        match &seg.defect {
            None => {}
            Some(SegmentDefect::BadHeader { .. }) => {
                // Nothing salvageable in this file.
                media
                    .remove(&path)
                    .map_err(|e| JournalError::io("remove", &path, e))?;
            }
            Some(_) => {
                media
                    .truncate(&path, seg.valid_bytes)
                    .map_err(|e| JournalError::io("truncate", &path, e))?;
            }
        }
    }
    // Drop tmp files shadowed by a sealed twin (crash right after rotation).
    let names = media
        .list(dir)
        .map_err(|e| JournalError::io("list", dir, e))?;
    let sealed: std::collections::HashSet<u32> = names
        .iter()
        .filter_map(|n| parse_segment_name(n))
        .filter(|(_, sealed)| *sealed)
        .map(|(seq, _)| seq)
        .collect();
    for name in names {
        if let Some((seq, false)) = parse_segment_name(&name) {
            if sealed.contains(&seq) {
                let path = dir.join(&name);
                media
                    .remove(&path)
                    .map_err(|e| JournalError::io("remove", &path, e))?;
            }
        }
    }
    fsck(media, dir, commit_kind)
}

/// Appends frames to a journal directory with atomic segment rotation.
pub struct JournalWriter {
    media: Box<dyn JournalMedia>,
    dir: PathBuf,
    active_seq: u32,
    active_bytes: u64,
    segment_bytes: u64,
    sealed: bool,
}

impl fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalWriter")
            .field("dir", &self.dir)
            .field("active_seq", &self.active_seq)
            .field("active_bytes", &self.active_bytes)
            .finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Starts a fresh journal in `dir`, removing any segment files a
    /// previous run left behind (callers recover those *first*).
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory or the first segment.
    pub fn create_clean(
        mut media: Box<dyn JournalMedia>,
        dir: &Path,
        segment_bytes: u64,
    ) -> Result<Self, JournalError> {
        media
            .create_dir_all(dir)
            .map_err(|e| JournalError::io("create-dir", dir, e))?;
        if let Ok(names) = media.list(dir) {
            for name in names {
                if parse_segment_name(&name).is_some() {
                    let path = dir.join(&name);
                    media
                        .remove(&path)
                        .map_err(|e| JournalError::io("remove", &path, e))?;
                }
            }
        }
        let mut writer = JournalWriter {
            media,
            dir: dir.to_path_buf(),
            active_seq: 1,
            active_bytes: 0,
            segment_bytes: segment_bytes.max(SEGMENT_HEADER_LEN as u64 + 1),
            sealed: false,
        };
        writer.start_segment()?;
        Ok(writer)
    }

    fn active_path(&self) -> PathBuf {
        self.dir.join(active_name(self.active_seq))
    }

    fn start_segment(&mut self) -> Result<(), JournalError> {
        let path = self.active_path();
        let header = segment_header(self.active_seq);
        self.media
            .append(&path, &header)
            .map_err(|e| JournalError::io("append", &path, e))?;
        self.active_bytes = header.len() as u64;
        Ok(())
    }

    /// Seals the active segment: fsync, then atomic rename to its final
    /// name.
    fn seal_active(&mut self) -> Result<(), JournalError> {
        let tmp = self.active_path();
        self.media
            .sync(&tmp)
            .map_err(|e| JournalError::io("sync", &tmp, e))?;
        let sealed = self.dir.join(sealed_name(self.active_seq));
        self.media
            .rename(&tmp, &sealed)
            .map_err(|e| JournalError::io("rename", &tmp, e))?;
        Ok(())
    }

    /// Appends one frame. Rotates to a new segment afterwards if the active
    /// one crossed the size threshold.
    ///
    /// # Errors
    ///
    /// I/O failures. A failed append may leave a torn frame at the tail of
    /// the active segment; recovery truncates it, and a *retry after a
    /// transient error re-appends the whole frame* — recovery also has to
    /// discard the torn prefix copy, which it does because the torn copy
    /// fails its CRC. (The session layer's retry therefore must re-call
    /// this method, never hand-stitch bytes.)
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), JournalError> {
        assert!(!self.sealed, "journal already committed");
        let frame = encode_frame(kind, payload);
        let path = self.active_path();
        self.media
            .append(&path, &frame)
            .map_err(|e| JournalError::io("append", &path, e))?;
        self.active_bytes += frame.len() as u64;
        if self.active_bytes >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the active segment and opens the next one.
    ///
    /// # Errors
    ///
    /// I/O failures sealing or starting a segment.
    pub fn rotate(&mut self) -> Result<(), JournalError> {
        self.seal_active()?;
        self.active_seq += 1;
        self.start_segment()
    }

    /// Writes the commit frame, fsyncs, and seals the journal. After this
    /// the writer is closed; further appends panic.
    ///
    /// # Errors
    ///
    /// I/O failures writing or sealing.
    pub fn commit(&mut self, commit_kind: u8, payload: &[u8]) -> Result<(), JournalError> {
        assert!(!self.sealed, "journal already committed");
        let frame = encode_frame(commit_kind, payload);
        let path = self.active_path();
        self.media
            .append(&path, &frame)
            .map_err(|e| JournalError::io("append", &path, e))?;
        self.seal_active()?;
        self.sealed = true;
        Ok(())
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True once [`commit`](JournalWriter::commit) succeeded.
    pub fn is_committed(&self) -> bool {
        self.sealed
    }
}

// ---------------------------------------------------------------------------
// Wire helpers: the little-endian primitives session-layer codecs share.
// ---------------------------------------------------------------------------

/// Appends a `u16` (little-endian) to a payload buffer.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` (little-endian) to a payload buffer.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian) to a payload buffer.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed string (`u16` length + UTF-8 bytes).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Sequentially decodes the primitives the `put_*` helpers wrote, with typed
/// Widens a length-checked byte slice into a fixed array without the
/// `try_into().unwrap()` a slice conversion needs: every caller has already
/// bounds-checked, but these paths read untrusted journal bytes and the
/// fleet audit keeps them unwrap-free. A short slice (impossible today)
/// zero-pads instead of panicking.
fn le_array<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(bytes) {
        *dst = *src;
    }
    out
}

/// errors instead of panics on truncated or garbled payloads.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        if self.bytes.len() - self.at < n {
            return Err(JournalError::Replay {
                frame: 0,
                reason: format!(
                    "payload truncated: needed {n} bytes at offset {}, have {}",
                    self.at,
                    self.bytes.len() - self.at
                ),
            });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Replay`] if the payload is exhausted.
    pub fn u16(&mut self) -> Result<u16, JournalError> {
        Ok(u16::from_le_bytes(le_array(self.take(2)?)))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Replay`] if the payload is exhausted.
    pub fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_le_bytes(le_array(self.take(4)?)))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Replay`] if the payload is exhausted.
    pub fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(le_array(self.take(8)?)))
    }

    /// Reads a length-prefixed string.
    ///
    /// # Errors
    ///
    /// [`JournalError::Replay`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, JournalError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| JournalError::Replay {
            frame: 0,
            reason: "invalid UTF-8 in journal string".to_string(),
        })
    }

    /// True if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.at == self.bytes.len()
    }

    /// Fails unless the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`JournalError::Replay`] if trailing bytes remain.
    pub fn expect_exhausted(&self) -> Result<(), JournalError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(JournalError::Replay {
                frame: 0,
                reason: format!("{} trailing bytes in payload", self.bytes.len() - self.at),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("polm2-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const COMMIT: u8 = 9;

    fn write_frames(dir: &Path, frames: &[(u8, Vec<u8>)], commit: bool) {
        let mut w =
            JournalWriter::create_clean(Box::new(FsMedia), dir, DEFAULT_SEGMENT_BYTES).unwrap();
        for (kind, payload) in frames {
            w.append(*kind, payload).unwrap();
        }
        if commit {
            w.commit(COMMIT, &[]).unwrap();
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental == one-shot.
        let split = crc32_update(crc32(b"1234"), b"56789");
        assert_eq!(split, 0xCBF4_3926);
    }

    #[test]
    fn frames_round_trip_through_a_directory() {
        let dir = tempdir("roundtrip");
        let frames: Vec<(u8, Vec<u8>)> = (0u8..20)
            .map(|i| (i % 4 + 1, vec![i; usize::from(i) * 3]))
            .collect();
        write_frames(&dir, &frames, true);
        let mut media = FsMedia;
        let rec = recover(&mut media, &dir, COMMIT).unwrap();
        assert!(rec.report.is_clean());
        assert!(rec.report.committed);
        assert_eq!(rec.frames.len(), frames.len() + 1);
        for (got, (kind, payload)) in rec.frames.iter().zip(&frames) {
            assert_eq!(got.kind, *kind);
            assert_eq!(&got.payload, payload);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_seals_segments_atomically() {
        let dir = tempdir("rotate");
        let mut w = JournalWriter::create_clean(Box::new(FsMedia), &dir, 64).unwrap();
        for i in 0..10u8 {
            w.append(1, &[i; 40]).unwrap();
        }
        w.commit(COMMIT, &[]).unwrap();
        let mut media = FsMedia;
        let files = segment_files(&mut media, &dir).unwrap();
        assert!(files.len() > 1, "tiny threshold must rotate");
        assert!(files.iter().all(|(_, _, sealed)| *sealed));
        let rec = recover(&mut media, &dir, COMMIT).unwrap();
        assert!(rec.report.is_clean());
        assert_eq!(rec.frames.len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_by_repair() {
        let dir = tempdir("torn");
        write_frames(&dir, &[(1, vec![1; 100]), (2, vec![2; 100])], false);
        let mut media = FsMedia;
        let name = segment_files(&mut media, &dir).unwrap()[0].1.clone();
        let path = dir.join(&name);
        let full = std::fs::read(&path).unwrap();
        // Cut the last frame in half.
        std::fs::write(&path, &full[..full.len() - 50]).unwrap();

        let report = fsck(&mut media, &dir, COMMIT).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.frames_valid, 1);
        assert!(matches!(
            report.segments[0].defect,
            Some(SegmentDefect::TornTail { .. })
        ));

        let valid = report.valid_bytes();
        let repaired = repair(&mut media, &dir, COMMIT).unwrap();
        assert!(repaired.is_clean());
        assert_eq!(repaired.frames_valid, 1);
        let after = std::fs::read(&path).unwrap();
        assert_eq!(after.len() as u64, valid, "repair never extends");
        assert_eq!(&after[..], &full[..valid as usize]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let dir = tempdir("bitflip");
        write_frames(&dir, &[(1, b"hello journal".to_vec())], true);
        let mut media = FsMedia;
        let name = segment_files(&mut media, &dir).unwrap()[0].1.clone();
        let path = dir.join(&name);
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit at every byte position past the header.
        for byte in SEGMENT_HEADER_LEN..clean.len() {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let report = fsck(&mut media, &dir, COMMIT).unwrap();
            assert!(!report.is_clean(), "flip at byte {byte} must be detected");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_makes_later_ones_unreachable() {
        let dir = tempdir("gap");
        let mut w = JournalWriter::create_clean(Box::new(FsMedia), &dir, 64).unwrap();
        for i in 0..10u8 {
            w.append(1, &[i; 40]).unwrap();
        }
        w.commit(COMMIT, &[]).unwrap();
        let mut media = FsMedia;
        let files = segment_files(&mut media, &dir).unwrap();
        assert!(files.len() >= 3);
        // Delete the middle segment.
        let (gone_seq, gone_name, _) = files[1].clone();
        std::fs::remove_file(dir.join(&gone_name)).unwrap();

        let report = fsck(&mut media, &dir, COMMIT).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.missing_segments, vec![gone_seq]);
        assert!(!report.committed, "commit frame is past the gap");
        assert!(report.segments.iter().any(|s| s.unreachable));

        let repaired = repair(&mut media, &dir, COMMIT).unwrap();
        assert!(repaired.is_clean());
        assert_eq!(repaired.segments.len(), 1, "only the prefix survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_directory_recovers_nothing() {
        let dir = tempdir("absent");
        let mut media = FsMedia;
        let rec = recover(&mut media, &dir, COMMIT).unwrap();
        assert!(rec.frames.is_empty());
        assert!(rec.report.is_clean());
        assert!(!rec.report.committed);
    }

    #[test]
    fn wire_helpers_round_trip_and_reject_truncation() {
        let mut out = Vec::new();
        put_u16(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 3);
        put_str(&mut out, "cassandra-wi");
        let mut r = WireReader::new(&out);
        assert_eq!(r.u16().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.str().unwrap(), "cassandra-wi");
        r.expect_exhausted().unwrap();

        let mut r = WireReader::new(&out[..out.len() - 1]);
        assert!(r.u16().is_ok());
        assert!(r.u32().is_ok());
        assert!(r.u64().is_ok());
        assert!(r.str().is_err(), "truncated string is a typed error");
    }

    #[test]
    fn segment_names_parse_and_order() {
        assert_eq!(parse_segment_name("seg-000001.polm2j"), Some((1, true)));
        assert_eq!(
            parse_segment_name("seg-000042.polm2j.tmp"),
            Some((42, false))
        );
        assert_eq!(parse_segment_name("seg-1.polm2j"), None);
        assert_eq!(parse_segment_name("profile.txt"), None);
    }
}
