//! Property-based tests for the snapshot machinery.

use proptest::prelude::*;

use polm2_heap::{Heap, HeapConfig, ObjectId, SiteId};
use polm2_metrics::SimTime;
use polm2_snapshot::{CriuDumper, DumperOptions, HeapDumper, JmapDumper};

/// Builds a heap with the given object sizes; every `keep_mask` bit decides
/// rooting.
fn build_heap(sizes: &[u32], keep_mask: u64) -> (Heap, Vec<ObjectId>) {
    let mut heap = Heap::new(HeapConfig::small());
    let class = heap.classes_mut().intern("P");
    let slot = heap.roots_mut().create_slot("keep");
    let mut kept = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let id = heap
            .allocate(
                class,
                size.clamp(16, 64 << 10),
                SiteId::new(0),
                Heap::YOUNG_SPACE,
            )
            .expect("alloc");
        if keep_mask & (1 << (i % 64)) != 0 {
            heap.roots_mut().push(slot, id);
            kept.push(id);
        }
    }
    (heap, kept)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot content is exactly the live set, for both dumpers.
    #[test]
    fn content_equals_live_set(
        sizes in proptest::collection::vec(16u32..4096, 1..60),
        keep_mask in any::<u64>(),
    ) {
        let (mut heap, kept) = build_heap(&sizes, keep_mask);
        let criu = CriuDumper::new().snapshot(&mut heap, SimTime::ZERO).unwrap();
        let (mut heap2, _) = build_heap(&sizes, keep_mask);
        let jmap = JmapDumper::new().snapshot(&mut heap2, SimTime::ZERO).unwrap();
        prop_assert_eq!(criu.live_objects, kept.len() as u64);
        prop_assert_eq!(jmap.live_objects, kept.len() as u64);
        for id in kept {
            let hash = heap.object(id).unwrap().identity_hash();
            prop_assert!(criu.contains(hash));
            prop_assert!(jmap.contains(hash));
        }
    }

    /// With both optimizations, a snapshot is never larger than with either
    /// disabled; a quiescent follow-up snapshot is never larger than the
    /// first.
    #[test]
    fn optimizations_never_hurt(
        sizes in proptest::collection::vec(256u32..8192, 1..60),
        keep_mask in any::<u64>(),
    ) {
        let options = [
            DumperOptions::default(),
            DumperOptions { use_no_need: false, ..DumperOptions::default() },
            DumperOptions { use_incremental: false, ..DumperOptions::default() },
            DumperOptions { use_no_need: false, use_incremental: false, ..DumperOptions::default() },
        ];
        let mut first_sizes = Vec::new();
        for o in options {
            let (mut heap, _) = build_heap(&sizes, keep_mask);
            let mut dumper = CriuDumper::with_options(o);
            let first = dumper.snapshot(&mut heap, SimTime::ZERO).unwrap();
            let second = dumper.snapshot(&mut heap, SimTime::from_secs(1)).unwrap();
            if o.use_incremental {
                prop_assert!(second.size_bytes <= first.size_bytes);
            }
            first_sizes.push(first.size_bytes);
        }
        // Fully-optimized is minimal among the variants for the first shot.
        for &other in &first_sizes[1..] {
            prop_assert!(first_sizes[0] <= other);
        }
    }

    /// Capture time grows monotonically with captured bytes under one cost
    /// model.
    #[test]
    fn cost_is_monotone_in_size(
        a in proptest::collection::vec(1024u32..4096, 1..40),
        b in proptest::collection::vec(1024u32..4096, 41..80),
    ) {
        let (mut small_heap, _) = build_heap(&a, u64::MAX);
        let (mut big_heap, _) = build_heap(&b, u64::MAX);
        let small = CriuDumper::new().snapshot(&mut small_heap, SimTime::ZERO).unwrap();
        let big = CriuDumper::new().snapshot(&mut big_heap, SimTime::ZERO).unwrap();
        prop_assert!(small.size_bytes <= big.size_bytes);
        prop_assert!(small.capture_time <= big.capture_time);
    }
}
