//! Property-based tests for the durable journal: frame round trips, and
//! recovery from a journal truncated at *every* byte offset — the
//! kill-at-any-moment contract (fsck and repair must never panic, never
//! mis-read a frame, and repair must never extend the journal past the last
//! valid frame).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use proptest::prelude::*;

use polm2_snapshot::journal::{fsck, recover, repair};
use polm2_snapshot::{Frame, JournalMedia, JournalWriter};

/// The commit frame kind the session layer uses (`polm2_core::journal`);
/// the byte layer only needs *a* distinguished value.
const COMMIT: u8 = 5;

/// An in-memory [`JournalMedia`]: a path → bytes map.
#[derive(Debug, Default)]
struct MemMedia {
    files: BTreeMap<PathBuf, Vec<u8>>,
}

/// Shared handle so tests can inspect the files after the writer consumed
/// the media.
#[derive(Debug, Clone, Default)]
struct SharedMem(Rc<RefCell<MemMedia>>);

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display()))
}

impl JournalMedia for SharedMem {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.0
            .borrow_mut()
            .files
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let mut mem = self.0.borrow_mut();
        let bytes = mem.files.remove(from).ok_or_else(|| not_found(from))?;
        mem.files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.0
            .borrow()
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        Ok(self
            .0
            .borrow()
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name()?.to_str().map(String::from))
            .collect())
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        let mut mem = self.0.borrow_mut();
        let bytes = mem.files.get_mut(path).ok_or_else(|| not_found(path))?;
        bytes.truncate(len as usize);
        Ok(())
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.0
            .borrow_mut()
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn create_dir_all(&mut self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }
}

fn dir() -> PathBuf {
    PathBuf::from("/journal")
}

/// Writes `frames` (the last one as the commit when `commit` is set) and
/// returns the shared media.
fn build_journal(frames: &[(u8, Vec<u8>)], segment_bytes: u64, commit: bool) -> SharedMem {
    let mem = SharedMem::default();
    let mut writer =
        JournalWriter::create_clean(Box::new(mem.clone()), &dir(), segment_bytes).expect("create");
    for (i, (kind, payload)) in frames.iter().enumerate() {
        if commit && i == frames.len() - 1 {
            writer.commit(*kind, payload).expect("commit");
        } else {
            writer.append(*kind, payload).expect("append");
        }
    }
    mem
}

/// The journal's segment files in write order, as `(name, bytes)`.
fn segments(mem: &SharedMem) -> Vec<(String, Vec<u8>)> {
    let mem = mem.0.borrow();
    mem.files
        .iter()
        .map(|(p, b)| {
            (
                p.file_name().unwrap().to_str().unwrap().to_string(),
                b.clone(),
            )
        })
        .collect()
}

/// Rebuilds the media as a crash at byte `offset` of the concatenated
/// append stream would leave it: earlier segments whole, the segment
/// containing the offset truncated (and demoted to its unsealed `.tmp`
/// name — the crash beat the rename), later segments never written.
fn truncated_at(segs: &[(String, Vec<u8>)], offset: usize) -> SharedMem {
    let mem = SharedMem::default();
    let mut consumed = 0usize;
    for (name, bytes) in segs {
        let mem_ref = mem.0.clone();
        let remaining = offset.saturating_sub(consumed);
        if remaining >= bytes.len() {
            mem_ref
                .borrow_mut()
                .files
                .insert(dir().join(name), bytes.clone());
        } else {
            let tmp = if name.ends_with(".tmp") {
                name.clone()
            } else {
                format!("{name}.tmp")
            };
            mem_ref
                .borrow_mut()
                .files
                .insert(dir().join(tmp), bytes[..remaining].to_vec());
            break;
        }
        consumed += bytes.len();
    }
    mem
}

/// A strategy for frame payloads: mostly small, occasionally crossing the
/// (tiny, for test) segment-rotation threshold.
fn frames_strategy() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec(
        (1u8..251, proptest::collection::vec(any::<u8>(), 0..200)),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever is appended comes back: kinds, payload bytes, order —
    /// across segment rotations.
    #[test]
    fn frames_round_trip_across_rotations(
        frames in frames_strategy(),
        segment_bytes in 64u64..4096,
    ) {
        let mem = build_journal(&frames, segment_bytes, true);
        // The last appended kind *is* this journal's commit kind.
        let commit_kind = frames.last().unwrap().0;
        let recovered = recover(&mut mem.clone(), &dir(), commit_kind).expect("recover");
        prop_assert!(recovered.report.is_clean(), "{}", recovered.report);
        let expect: Vec<Frame> = frames
            .iter()
            .map(|(kind, payload)| Frame { kind: *kind, payload: payload.clone() })
            .collect();
        prop_assert_eq!(recovered.frames, expect);
        prop_assert!(recovered.report.committed);
    }

    /// Killing the writer at every byte offset: recovery never panics, the
    /// recovered frames are a strict prefix of what was written, repair is
    /// clean afterwards and never extends past the last valid frame.
    #[test]
    fn truncation_at_every_byte_offset_recovers_a_prefix(
        frames in frames_strategy(),
        segment_bytes in 128u64..1024,
    ) {
        let mem = build_journal(&frames, segment_bytes, true);
        let segs = segments(&mem);
        let total: usize = segs.iter().map(|(_, b)| b.len()).sum();
        let expect: Vec<Frame> = frames
            .iter()
            .map(|(kind, payload)| Frame { kind: *kind, payload: payload.clone() })
            .collect();
        for offset in 0..=total {
            let crashed = truncated_at(&segs, offset);
            let recovered = recover(&mut crashed.clone(), &dir(), COMMIT).expect("recover");
            prop_assert!(
                recovered.frames.len() <= expect.len(),
                "offset {offset}: recovered more frames than were written"
            );
            prop_assert_eq!(
                &recovered.frames[..],
                &expect[..recovered.frames.len()],
                "offset {} does not recover a prefix", offset
            );
            // Repair truncates to the valid prefix — and never invents data.
            let before = recovered.report.frames_valid;
            let after = repair(&mut crashed.clone(), &dir(), COMMIT).expect("repair");
            prop_assert!(after.is_clean(), "offset {offset}: repair left defects: {after}");
            prop_assert!(
                after.frames_valid <= before,
                "offset {offset}: repair extended the journal ({} -> {})",
                before,
                after.frames_valid
            );
            // Repair is idempotent: a second pass changes nothing.
            let again = repair(&mut crashed.clone(), &dir(), COMMIT).expect("repair twice");
            prop_assert_eq!(again.frames_valid, after.frames_valid);
        }
    }

    /// Arbitrary byte soup in segment files: fsck and repair classify, they
    /// never panic, and what repair leaves behind passes fsck.
    #[test]
    fn garbage_segments_never_panic(
        soup in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            1..4,
        ),
    ) {
        let mem = SharedMem::default();
        for (i, bytes) in soup.iter().enumerate() {
            mem.0
                .borrow_mut()
                .files
                .insert(dir().join(format!("seg-{:06}.polm2j", i as u32 + 1)), bytes.clone());
        }
        let report = fsck(&mut mem.clone(), &dir(), COMMIT).expect("fsck");
        prop_assert_eq!(report.segments.len(), soup.len());
        let repaired = repair(&mut mem.clone(), &dir(), COMMIT).expect("repair");
        prop_assert!(repaired.is_clean(), "{}", repaired);
    }
}
