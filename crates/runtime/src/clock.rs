//! The simulated clock.

use polm2_metrics::{SimDuration, SimTime};

/// The runtime's logical clock.
///
/// Mutator work and stop-the-world pauses both advance it; nothing else does.
/// Runs are therefore deterministic and independent of the host machine.
///
/// # Examples
///
/// ```
/// use polm2_runtime::SimClock;
/// use polm2_metrics::SimDuration;
///
/// let mut clock = SimClock::new();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(clock.now().as_millis(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock {
    now: SimTime,
    mutator_time: SimDuration,
    pause_time: SimDuration,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances by mutator work.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
        self.mutator_time += d;
    }

    /// Advances by a stop-the-world pause.
    pub fn advance_paused(&mut self, d: SimDuration) {
        self.now += d;
        self.pause_time += d;
    }

    /// Total time spent running mutators.
    pub fn mutator_time(&self) -> SimDuration {
        self.mutator_time
    }

    /// Total time spent paused.
    pub fn pause_time(&self) -> SimDuration {
        self.pause_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_and_pause_time_are_tracked_separately() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_millis(10));
        c.advance_paused(SimDuration::from_millis(3));
        c.advance(SimDuration::from_millis(2));
        assert_eq!(c.now().as_millis(), 15);
        assert_eq!(c.mutator_time().as_millis(), 12);
        assert_eq!(c.pause_time().as_millis(), 3);
    }
}
