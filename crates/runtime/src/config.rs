//! Runtime configuration.

use polm2_gc::GcConfig;
use polm2_heap::HeapConfig;

/// Configuration for a [`Jvm`](crate::Jvm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Heap geometry.
    pub heap: HeapConfig,
    /// Collector tuning.
    pub gc: GcConfig,
    /// Mutator cost charged per interpreted instruction, in nanoseconds.
    pub instr_cost_ns: u64,
    /// Extra mutator cost charged per allocation, in nanoseconds.
    pub alloc_cost_ns: u64,
    /// Maximum interpreter call depth.
    pub max_stack_depth: usize,
}

impl RuntimeConfig {
    /// The evaluation configuration: paper-scaled heap, default GC tuning.
    pub fn paper_scaled() -> Self {
        RuntimeConfig {
            heap: HeapConfig::paper_scaled(),
            gc: GcConfig::default(),
            instr_cost_ns: 50,
            alloc_cost_ns: 200,
            max_stack_depth: 256,
        }
    }

    /// A small configuration for unit tests.
    pub fn small() -> Self {
        RuntimeConfig {
            heap: HeapConfig::small(),
            ..RuntimeConfig::paper_scaled()
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_valid() {
        assert!(RuntimeConfig::default().heap.validate().is_ok());
        assert!(RuntimeConfig::small().heap.validate().is_ok());
        assert!(RuntimeConfig::default().gc.validate().is_ok());
        assert!(RuntimeConfig::default().max_stack_depth > 0);
    }
}
