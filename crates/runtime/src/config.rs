//! Runtime configuration.

use polm2_gc::GcConfig;
use polm2_heap::HeapConfig;

/// How `RecordAlloc` captures the allocation context.
///
/// Both paths feed the Recorder the exact same traces; they differ only in
/// per-allocation cost. Kept selectable so the perf gate and the chaos
/// suite can diff the two end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecorderPath {
    /// The seed behavior: walk the thread's frame stack and materialize a
    /// fresh `Vec<TraceFrame>` per allocation — O(depth) per event.
    StackWalk,
    /// The incremental trace trie: the thread's context node is maintained
    /// at call/return, so recording is one child-edge lookup plus columnar
    /// buffer pushes — O(1) per event (see [`crate::TraceTrie`]).
    #[default]
    TraceTrie,
}

/// Configuration for a [`Jvm`](crate::Jvm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Heap geometry.
    pub heap: HeapConfig,
    /// Collector tuning.
    pub gc: GcConfig,
    /// Mutator cost charged per interpreted instruction, in nanoseconds.
    pub instr_cost_ns: u64,
    /// Extra mutator cost charged per allocation, in nanoseconds.
    pub alloc_cost_ns: u64,
    /// Maximum interpreter call depth.
    pub max_stack_depth: usize,
    /// How allocation contexts are captured for the Recorder.
    pub recorder: RecorderPath,
}

impl RuntimeConfig {
    /// The evaluation configuration: paper-scaled heap, default GC tuning.
    pub fn paper_scaled() -> Self {
        RuntimeConfig {
            heap: HeapConfig::paper_scaled(),
            gc: GcConfig::default(),
            instr_cost_ns: 50,
            alloc_cost_ns: 200,
            max_stack_depth: 256,
            recorder: RecorderPath::TraceTrie,
        }
    }

    /// This configuration with the given recorder path (chainable).
    pub fn with_recorder(mut self, recorder: RecorderPath) -> Self {
        self.recorder = recorder;
        self
    }

    /// This configuration with the given GC worker count (chainable).
    /// Profiles are bit-identical at any worker count; workers shorten the
    /// collector's wall-clock work, never the simulated trajectory. Zero is
    /// clamped to one.
    pub fn with_gc_workers(mut self, workers: usize) -> Self {
        self.gc.gc_workers = workers.max(1);
        self
    }

    /// This configuration with the given heap memory backend (chainable).
    /// The backend changes what the heap's bytes are made of, never where
    /// they go: profiles, snapshots, and GcWork ledgers are identical on
    /// [`BackendKind::Sim`] and [`BackendKind::Real`].
    ///
    /// [`BackendKind::Sim`]: polm2_heap::BackendKind::Sim
    /// [`BackendKind::Real`]: polm2_heap::BackendKind::Real
    pub fn with_heap_backend(mut self, backend: polm2_heap::BackendKind) -> Self {
        self.heap.backend = backend;
        self
    }

    /// This configuration with the given TLAB window size in KiB, the
    /// real backend's `--tlab-kb` knob (chainable). Zero is clamped to one
    /// KiB. Placement is unaffected at any value; the knob only moves the
    /// allocation fast path's refill frequency.
    pub fn with_tlab_kb(mut self, tlab_kb: u64) -> Self {
        self.heap.tlab_bytes = tlab_kb.max(1) << 10;
        self
    }

    /// This configuration with the given heap-integrity verification mode,
    /// the CLI's `--verify-heap` knob (chainable). Verification is strictly
    /// read-only: trajectories are bit-identical at any mode.
    pub fn with_verify_heap(mut self, mode: polm2_heap::VerifyMode) -> Self {
        self.heap.verify = mode;
        self
    }

    /// This configuration with a hard heap limit in MiB, the CLI's
    /// `--heap-mb` knob (chainable). `None` removes the limit. Allocation
    /// past the budget triggers one emergency full collection, then a typed
    /// out-of-memory error that unwinds cleanly.
    pub fn with_heap_limit_mb(mut self, limit_mb: Option<u64>) -> Self {
        self.heap.limit_bytes = limit_mb.map(|mb| mb << 20);
        self
    }

    /// A small configuration for unit tests.
    pub fn small() -> Self {
        RuntimeConfig {
            heap: HeapConfig::small(),
            ..RuntimeConfig::paper_scaled()
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_valid() {
        assert!(RuntimeConfig::default().heap.validate().is_ok());
        assert!(RuntimeConfig::small().heap.validate().is_ok());
        assert!(RuntimeConfig::default().gc.validate().is_ok());
        assert!(RuntimeConfig::default().max_stack_depth > 0);
    }

    #[test]
    fn with_heap_backend_selects_the_backend() {
        use polm2_heap::BackendKind;
        let cfg = RuntimeConfig::small().with_heap_backend(BackendKind::Real);
        assert_eq!(cfg.heap.backend, BackendKind::Real);
        assert_eq!(RuntimeConfig::small().heap.backend, BackendKind::Sim);
    }

    #[test]
    fn with_tlab_kb_sets_and_clamps() {
        assert_eq!(
            RuntimeConfig::small().with_tlab_kb(64).heap.tlab_bytes,
            64 << 10
        );
        assert_eq!(
            RuntimeConfig::small().with_tlab_kb(0).heap.tlab_bytes,
            1 << 10
        );
        assert!(RuntimeConfig::small()
            .with_tlab_kb(0)
            .heap
            .validate()
            .is_ok());
    }

    #[test]
    fn with_verify_heap_and_limit_set_the_heap_config() {
        use polm2_heap::VerifyMode;
        let cfg = RuntimeConfig::small()
            .with_verify_heap(VerifyMode::Full)
            .with_heap_limit_mb(Some(64));
        assert_eq!(cfg.heap.verify, VerifyMode::Full);
        assert_eq!(cfg.heap.limit_bytes, Some(64 << 20));
        assert_eq!(cfg.with_heap_limit_mb(None).heap.limit_bytes, None);
        assert_eq!(RuntimeConfig::small().heap.verify, VerifyMode::Off);
    }

    #[test]
    fn with_gc_workers_sets_and_clamps() {
        assert_eq!(RuntimeConfig::small().with_gc_workers(4).gc.gc_workers, 4);
        assert_eq!(RuntimeConfig::small().with_gc_workers(0).gc.gc_workers, 1);
        assert!(RuntimeConfig::small()
            .with_gc_workers(0)
            .gc
            .validate()
            .is_ok());
    }
}
