//! The interpreter: executes resolved instructions on a mutator thread.

use std::rc::Rc;

use polm2_gc::{AllocRequest, SafepointRoots, ThreadId};
use polm2_heap::ObjectId;

use crate::config::RecorderPath;
use crate::events::AllocEvent;
use crate::hooks::HookCtx;
use crate::loader::{RCount, RInstr, RSize};
use crate::thread::Frame;
use crate::{Jvm, RuntimeError};

impl Jvm {
    /// Runs `class.method` to completion on `thread`.
    ///
    /// One invocation is one *operation* from the workload driver's point of
    /// view (a put, a query, a batch step). Threads run one invocation at a
    /// time — cooperative scheduling keeps the simulation deterministic.
    ///
    /// # Errors
    ///
    /// Resolution failures, hook failures, stack overflow, or collector
    /// failure (out of memory).
    pub fn invoke(
        &mut self,
        thread: ThreadId,
        class: &str,
        method: &str,
    ) -> Result<(), RuntimeError> {
        let (ci, mi) = self.program.resolve(class, method)?;
        self.call_method(thread, ci, mi)?;
        Ok(())
    }

    fn frame_mut(&mut self, thread: ThreadId) -> &mut Frame {
        self.threads[thread.raw() as usize]
            .frames
            .last_mut()
            .expect("instruction executing without an active frame")
    }

    fn call_method(
        &mut self,
        thread: ThreadId,
        class_idx: u16,
        method_idx: u16,
    ) -> Result<Option<ObjectId>, RuntimeError> {
        let t = &mut self.threads[thread.raw() as usize];
        if t.frames.len() >= self.config.max_stack_depth {
            return Err(RuntimeError::StackOverflow {
                limit: self.config.max_stack_depth,
            });
        }
        if self.config.recorder == RecorderPath::TraceTrie {
            // The caller's line is already the call line here; freeze it as
            // one more edge of the thread's context path. The root
            // invocation has no caller, so its context stays the root.
            if let Some(caller) = t.frames.last() {
                t.context_node = self
                    .trace_trie
                    .child(t.context_node, caller.as_trace_frame());
            }
        }
        t.frames.push(Frame::new(class_idx, method_idx));

        let program = Rc::clone(&self.program);
        let body = &program.class_by_idx(class_idx).methods[method_idx as usize].body;
        let result = self.exec_block(thread, body);

        let t = &mut self.threads[thread.raw() as usize];
        let frame = t.frames.pop().expect("frame pushed above");
        if self.config.recorder == RecorderPath::TraceTrie {
            // Drop the caller edge added above (the root is its own parent,
            // covering the root-invocation pop).
            t.context_node = self.trace_trie.parent(t.context_node);
        }
        // A method that set target generations without restoring them gets
        // them unwound here, like NG2C's thread state on frame exit.
        for gen in frame.saved_gens.into_iter().rev() {
            let _ = self.collector.set_target_gen(thread, gen);
        }
        result?;
        Ok(frame.acc)
    }

    fn exec_block(&mut self, thread: ThreadId, block: &[RInstr]) -> Result<(), RuntimeError> {
        for instr in block {
            self.exec_instr(thread, instr)?;
        }
        Ok(())
    }

    fn exec_instr(&mut self, thread: ThreadId, instr: &RInstr) -> Result<(), RuntimeError> {
        self.charge_ns(self.config.instr_cost_ns);
        match instr {
            RInstr::Alloc {
                class,
                size,
                site,
                pretenure,
                line,
            } => {
                self.charge_ns(self.config.alloc_cost_ns);
                self.frame_mut(thread).line = *line;
                let size = match size {
                    RSize::Fixed(n) => *n,
                    RSize::Hook(name) => {
                        self.with_hook_ctx(thread, |hooks, ctx| hooks.eval_size(name, ctx))?
                    }
                };
                let mut roots = std::mem::take(&mut self.safepoint_scratch);
                roots.clear();
                for t in &self.threads {
                    t.stack_roots_into(&mut roots);
                }
                let req = AllocRequest {
                    class: *class,
                    size,
                    site: *site,
                    pretenure: *pretenure,
                    thread,
                };
                let outcome =
                    self.collector
                        .alloc(&mut self.heap, req, &SafepointRoots::new(&roots));
                self.safepoint_scratch = roots;
                let outcome = outcome?;
                let collected = !outcome.pauses.is_empty();
                self.log_pauses(outcome.pauses);
                self.verify_at_safepoint(collected)?;
                let frame = self.frame_mut(thread);
                frame.acc = Some(outcome.object);
                frame.roots.push(outcome.object);
                frame.last_site = Some(*site);
            }
            RInstr::Call {
                class_idx,
                method_idx,
                line,
            } => {
                self.frame_mut(thread).line = *line;
                let result = self.call_method(thread, *class_idx, *method_idx)?;
                if let Some(obj) = result {
                    let frame = self.frame_mut(thread);
                    frame.acc = Some(obj);
                    frame.roots.push(obj);
                }
            }
            RInstr::Branch {
                cond,
                then_block,
                else_block,
                line,
            } => {
                self.frame_mut(thread).line = *line;
                let taken = self.with_hook_ctx(thread, |hooks, ctx| hooks.eval_cond(cond, ctx))?;
                if taken {
                    self.exec_block(thread, then_block)?;
                } else {
                    self.exec_block(thread, else_block)?;
                }
            }
            RInstr::Repeat { count, body, line } => {
                self.frame_mut(thread).line = *line;
                let n = match count {
                    RCount::Fixed(n) => *n,
                    RCount::Hook(name) => {
                        self.with_hook_ctx(thread, |hooks, ctx| hooks.eval_count(name, ctx))?
                    }
                };
                for _ in 0..n {
                    // Loop-body locals die each iteration, like Java locals
                    // whose scope ends with the loop body.
                    let mark = self.frame_mut(thread).roots.len();
                    self.exec_block(thread, body)?;
                    self.frame_mut(thread).roots.truncate(mark);
                }
            }
            RInstr::Native { hook, line } => {
                self.frame_mut(thread).line = *line;
                let action =
                    self.with_hook_ctx(thread, |hooks, ctx| hooks.run_action(hook, ctx))?;
                if let Some(cost) = action.cost {
                    self.advance_mutator(cost);
                }
            }
            RInstr::SetGen { gen, line } => {
                self.frame_mut(thread).line = *line;
                let prev = self.collector.set_target_gen(thread, *gen)?;
                self.frame_mut(thread).saved_gens.push(prev);
            }
            RInstr::RestoreGen { line } => {
                self.frame_mut(thread).line = *line;
                let prev = self
                    .frame_mut(thread)
                    .saved_gens
                    .pop()
                    .ok_or(RuntimeError::UnbalancedRestoreGen)?;
                self.collector.set_target_gen(thread, prev)?;
            }
            RInstr::RecordAlloc { line } => {
                let _ = line; // recording is invisible to the line tracker
                let (object, site) = {
                    let frame = self.frame_mut(thread);
                    match (frame.acc, frame.last_site) {
                        (Some(o), Some(s)) => (o, s),
                        _ => return Err(RuntimeError::NothingToRecord),
                    }
                };
                let hash = self
                    .heap
                    .object(object)
                    .ok_or(RuntimeError::NothingToRecord)?
                    .identity_hash();
                let at = self.clock.now();
                let t = &mut self.threads[thread.raw() as usize];
                match self.config.recorder {
                    RecorderPath::TraceTrie => {
                        // The topmost frame's line is the allocation line
                        // (set by the preceding `Alloc`); one child-edge
                        // lookup appends it to the thread's context path —
                        // no stack walk, no per-event allocation.
                        let top = t
                            .frames
                            .last()
                            .expect("RecordAlloc executes in a frame")
                            .as_trace_frame();
                        let node = self.trace_trie.child(t.context_node, top);
                        t.events.push(node, hash, object, site, at);
                    }
                    RecorderPath::StackWalk => {
                        let trace = t.trace();
                        t.pending_events.push(AllocEvent {
                            trace,
                            object,
                            hash,
                            site,
                            at,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs `f` with a hook context for `thread`'s current frame.
    fn with_hook_ctx<R>(
        &mut self,
        thread: ThreadId,
        f: impl FnOnce(&mut crate::HookRegistry, &mut HookCtx<'_>) -> R,
    ) -> R {
        let heap = &mut self.heap;
        let hooks = &mut self.hooks;
        let state = &mut self.state;
        let now = self.clock.now();
        let frame = self.threads[thread.raw() as usize]
            .frames
            .last_mut()
            .expect("hook invoked without an active frame");
        let mut ctx = HookCtx {
            heap,
            thread,
            acc: &mut frame.acc,
            raw_state: state.as_mut(),
            now,
        };
        f(hooks, &mut ctx)
    }
}
