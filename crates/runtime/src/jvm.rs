//! The `Jvm` facade and its builder.

use std::any::Any;
use std::fmt;
use std::rc::Rc;

use polm2_gc::{Collector, G1Collector, GcEvent, GcLog, PauseEvent, ThreadId};
use polm2_heap::{Heap, ObjectId};
use polm2_metrics::{SimDuration, SimTime};

use crate::config::RecorderPath;
use crate::events::{AllocEvent, AllocEventBuffer};
use crate::ir::Program;
use crate::loader::{ClassTransformer, LoadedProgram, Loader};
use crate::thread::MutatorThread;
use crate::trie::TraceTrie;
use crate::{HookRegistry, RuntimeConfig, RuntimeError, SimClock};

/// Builder for a [`Jvm`].
///
/// Collector defaults to [`G1Collector`]; hooks, workload state, and
/// load-time transformers (agents) are optional.
pub struct JvmBuilder {
    config: RuntimeConfig,
    collector: Box<dyn Collector>,
    hooks: HookRegistry,
    state: Box<dyn Any>,
    transformers: Vec<Box<dyn ClassTransformer>>,
}

impl fmt::Debug for JvmBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JvmBuilder")
            .field("config", &self.config)
            .field("collector", &self.collector.name())
            .field("transformers", &self.transformers.len())
            .finish_non_exhaustive()
    }
}

impl JvmBuilder {
    /// Replaces the collector.
    pub fn collector(mut self, collector: Box<dyn Collector>) -> Self {
        self.collector = collector;
        self
    }

    /// Installs the hook registry.
    pub fn hooks(mut self, hooks: HookRegistry) -> Self {
        self.hooks = hooks;
        self
    }

    /// Installs the workload state (retrieved in hooks via
    /// [`HookCtx::state`](crate::HookCtx::state)).
    pub fn state(mut self, state: Box<dyn Any>) -> Self {
        self.state = state;
        self
    }

    /// Appends a load-time transformer (Java agent). Agents run in
    /// registration order on every class.
    pub fn transformer(mut self, t: Box<dyn ClassTransformer>) -> Self {
        self.transformers.push(t);
        self
    }

    /// Loads `program` (through the agent chain) and boots the runtime.
    ///
    /// # Errors
    ///
    /// Propagates load-time resolution failures.
    pub fn build(mut self, program: Program) -> Result<Jvm, RuntimeError> {
        let mut heap = Heap::new(self.config.heap);
        self.collector.attach(&mut heap);
        let mut refs: Vec<&mut dyn ClassTransformer> = self
            .transformers
            .iter_mut()
            .map(|b| b.as_mut() as &mut dyn ClassTransformer)
            .collect();
        let loaded = Loader::load(program, &mut refs, &mut heap)?;
        Ok(Jvm {
            config: self.config,
            heap,
            collector: self.collector,
            program: Rc::new(loaded),
            hooks: self.hooks,
            state: self.state,
            clock: SimClock::new(),
            gc_log: GcLog::new(),
            threads: Vec::new(),
            trace_trie: TraceTrie::new(),
            safepoint_scratch: Vec::new(),
            ns_debt: 0,
        })
    }
}

/// The simulated JVM: heap + collector + loaded program + interpreter state.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct Jvm {
    pub(crate) config: RuntimeConfig,
    pub(crate) heap: Heap,
    pub(crate) collector: Box<dyn Collector>,
    pub(crate) program: Rc<LoadedProgram>,
    pub(crate) hooks: HookRegistry,
    pub(crate) state: Box<dyn Any>,
    pub(crate) clock: SimClock,
    pub(crate) gc_log: GcLog,
    pub(crate) threads: Vec<MutatorThread>,
    /// The shared trie of call edges (trie recorder path).
    pub(crate) trace_trie: TraceTrie,
    /// Reused safepoint-root collection buffer (allocation + force_collect).
    pub(crate) safepoint_scratch: Vec<ObjectId>,
    /// Sub-microsecond mutator cost not yet charged to the clock.
    pub(crate) ns_debt: u64,
}

impl fmt::Debug for Jvm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Jvm")
            .field("collector", &self.collector.name())
            .field("now", &self.clock.now())
            .field("threads", &self.threads.len())
            .field("gc_cycles", &self.gc_log.cycle_count())
            .finish_non_exhaustive()
    }
}

impl Jvm {
    /// Starts building a runtime.
    pub fn builder(config: RuntimeConfig) -> JvmBuilder {
        JvmBuilder {
            config,
            collector: Box::new(G1Collector::new(config.gc)),
            hooks: HookRegistry::new(),
            state: Box::new(()),
            transformers: Vec::new(),
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap access (root manipulation between operations).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The collector.
    pub fn collector(&self) -> &dyn Collector {
        self.collector.as_ref()
    }

    /// Mutable collector access (e.g. pre-creating NG2C generations at
    /// launch time, as the Instrumenter does).
    pub fn collector_mut(&mut self) -> &mut dyn Collector {
        self.collector.as_mut()
    }

    /// NG2C-style generation creation routed through the collector with heap
    /// access (the `System.newGeneration` analogue).
    pub fn new_generation(&mut self) -> polm2_heap::GenId {
        self.collector.new_generation(&mut self.heap)
    }

    /// The loaded program.
    pub fn program(&self) -> &LoadedProgram {
        &self.program
    }

    /// The GC event log.
    pub fn gc_log(&self) -> &GcLog {
        &self.gc_log
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Downcasts the workload state.
    ///
    /// # Panics
    ///
    /// Panics if the state is not an `S`.
    pub fn state_mut<S: 'static>(&mut self) -> &mut S {
        self.state
            .downcast_mut::<S>()
            .expect("workload state has unexpected type")
    }

    /// Creates a mutator thread.
    pub fn spawn_thread(&mut self) -> ThreadId {
        let id = ThreadId::new(self.threads.len() as u32);
        self.threads.push(MutatorThread::new(id));
        id
    }

    /// The live mutator threads.
    pub fn threads(&self) -> &[MutatorThread] {
        &self.threads
    }

    /// The recorder path this runtime was configured with.
    pub fn recorder_path(&self) -> RecorderPath {
        self.config.recorder
    }

    /// The shared trace trie (read access; the interpreter maintains it).
    pub fn trace_trie(&self) -> &TraceTrie {
        &self.trace_trie
    }

    /// True if any thread holds undrained allocation events.
    pub fn has_pending_alloc_events(&self) -> bool {
        self.threads
            .iter()
            .any(|t| !t.events.is_empty() || !t.pending_events.is_empty())
    }

    /// Drains buffered allocation events (the Recorder's input stream) as
    /// materialized [`AllocEvent`]s, per-thread batches concatenated in
    /// thread order.
    ///
    /// On the trie recorder path this *materializes* every trace from the
    /// trie — the compatibility/chaos route. The fast route is
    /// [`drain_alloc_batches`](Jvm::drain_alloc_batches), which hands the
    /// Recorder the columnar buffers directly.
    pub fn drain_alloc_events(&mut self) -> Vec<AllocEvent> {
        let mut out = Vec::new();
        for t in &mut self.threads {
            out.append(&mut t.pending_events);
            for i in 0..t.events.len() {
                out.push(AllocEvent {
                    trace: self.trace_trie.path(t.events.nodes()[i]),
                    object: t.events.objects()[i],
                    hash: t.events.hashes()[i],
                    site: t.events.sites()[i],
                    at: t.events.ats()[i],
                });
            }
            t.events.clear();
        }
        out
    }

    /// Drains buffered trie-form allocation events in place: `f` is called
    /// once per non-empty per-thread buffer, in thread order, with the
    /// shared trie, the loaded program, and the columnar batch. Buffers are
    /// cleared (retaining capacity) after their callback — the steady state
    /// allocates nothing.
    ///
    /// Only the trie recorder path fills these buffers; on
    /// [`RecorderPath::StackWalk`] this is a no-op and events must be
    /// drained via [`drain_alloc_events`](Jvm::drain_alloc_events).
    pub fn drain_alloc_batches(
        &mut self,
        mut f: impl FnMut(&TraceTrie, &LoadedProgram, &AllocEventBuffer),
    ) {
        for t in &mut self.threads {
            if !t.events.is_empty() {
                f(&self.trace_trie, &self.program, &t.events);
                t.events.clear();
            }
        }
    }

    /// Advances the clock by mutator "think time" (per-operation work beyond
    /// interpretation), applying the collector's barrier tax.
    pub fn advance_mutator(&mut self, d: SimDuration) {
        let permille = u64::from(self.collector.mutator_overhead_permille());
        let us = d.as_micros() * (1_000 + permille) / 1_000;
        self.clock.advance(SimDuration::from_micros(us));
    }

    /// Forces a full collection cycle and logs its pauses (workload phase
    /// boundaries; also what `System.gc()` would do).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Heap`] with
    /// [`HeapError::IntegrityViolation`](polm2_heap::HeapError::IntegrityViolation)
    /// if post-collection verification (`--verify-heap gc` or `full`) finds
    /// the heap inconsistent.
    pub fn force_collect(&mut self) -> Result<(), RuntimeError> {
        let mut roots = std::mem::take(&mut self.safepoint_scratch);
        roots.clear();
        for t in &self.threads {
            t.stack_roots_into(&mut roots);
        }
        let pauses = self
            .collector
            .collect(&mut self.heap, &polm2_gc::SafepointRoots::new(&roots));
        self.safepoint_scratch = roots;
        self.log_pauses(pauses);
        self.verify_at_safepoint(true)
    }

    /// Runs the heap's integrity verifier if the configured
    /// [`VerifyMode`](polm2_heap::VerifyMode) asks for it at this safepoint
    /// (`collected` = a collection just ran). Verification is read-only;
    /// trajectories are bit-identical at any mode.
    pub(crate) fn verify_at_safepoint(&mut self, collected: bool) -> Result<(), RuntimeError> {
        use polm2_heap::VerifyMode;
        let run = match self.config.heap.verify {
            VerifyMode::Off => false,
            VerifyMode::Gc => collected,
            VerifyMode::Full => true,
        };
        if run {
            self.heap.verify_integrity()?;
        }
        Ok(())
    }

    /// Committed memory as the collector reports it (C4 pre-reserves).
    pub fn reported_committed_bytes(&self) -> u64 {
        self.collector.reported_committed_bytes(&self.heap)
    }

    pub(crate) fn log_pauses(&mut self, pauses: Vec<PauseEvent>) {
        for p in pauses {
            let at = self.clock.now();
            self.clock.advance_paused(p.pause);
            self.gc_log.push(GcEvent {
                at,
                kind: p.kind,
                pause: p.pause,
                work: p.work,
            });
        }
    }

    /// Charges interpreted-instruction cost to the clock, with the barrier
    /// tax, accumulating sub-microsecond amounts.
    pub(crate) fn charge_ns(&mut self, ns: u64) {
        let permille = u64::from(self.collector.mutator_overhead_permille());
        self.ns_debt += ns * (1_000 + permille) / 1_000;
        if self.ns_debt >= 1_000 {
            let us = self.ns_debt / 1_000;
            self.ns_debt %= 1_000;
            self.clock.advance(SimDuration::from_micros(us));
        }
    }
}
