//! The simulated managed runtime ("the JVM") for the POLM2 reproduction.
//!
//! POLM2 is a pair of Java agents plus an offline analyzer: it observes
//! *allocation sites and stack traces*, rewrites *bytecode at load time*, and
//! reacts to *GC cycles*. This crate provides a runtime with exactly those
//! observation and interception points:
//!
//! * [`Program`] — a structured bytecode IR: classes containing methods
//!   containing instructions ([`Instr`]), including allocation sites with
//!   source lines, calls, branches, loops, native hooks, and the NG2C
//!   generation instructions the Instrumenter injects.
//! * [`ClassTransformer`] — the Java-agent analogue: transformers rewrite
//!   [`ClassDef`]s while the [`Loader`] loads them, before execution, exactly
//!   like ASM agents rewrite classfiles at load time.
//! * [`Jvm`] — the facade wiring a [`Heap`], a [`Collector`], the loaded
//!   program, native hooks, mutator threads with real call stacks (frame
//!   roots keep in-flight objects alive across safepoints), a simulated
//!   clock, and the GC event log. Allocation events (stack trace + object id
//!   + identity hash) are buffered for the Recorder to drain.
//!
//! [`Heap`]: polm2_heap::Heap
//! [`Collector`]: polm2_gc::Collector
//!
//! # Examples
//!
//! Build a two-method program, load it, run it, observe the allocation:
//!
//! ```
//! use polm2_runtime::{Instr, Jvm, MethodDef, ClassDef, Program, RuntimeConfig, SizeSpec};
//!
//! let mut program = Program::new();
//! program.add_class(ClassDef::new("App").with_method(
//!     MethodDef::new("main")
//!         .push(Instr::call("App", "make", 3))
//! ).with_method(
//!     MethodDef::new("make")
//!         .push(Instr::alloc("Buffer", SizeSpec::Fixed(128), 7))
//! ));
//!
//! let mut jvm = Jvm::builder(RuntimeConfig::small()).build(program)?;
//! let thread = jvm.spawn_thread();
//! jvm.invoke(thread, "App", "main")?;
//! assert_eq!(jvm.heap().stats().allocated_objects, 1);
//! # Ok::<(), polm2_runtime::RuntimeError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod clock;
mod config;
mod error;
mod events;
mod hooks;
mod interp;
mod ir;
mod jvm;
mod loader;
mod thread;
mod trie;

pub use clock::SimClock;
pub use config::{RecorderPath, RuntimeConfig};
pub use error::RuntimeError;
pub use events::{AllocEvent, AllocEventBuffer, TraceFrame};
pub use hooks::{HookAction, HookCtx, HookRegistry};
pub use ir::{ClassDef, CodeLoc, CountSpec, Instr, MethodDef, Program, SizeSpec};
pub use jvm::{Jvm, JvmBuilder};
pub use loader::{ClassTransformer, LoadedProgram, Loader, SiteInfo, SiteTable};
pub use thread::MutatorThread;
pub use trie::{TraceNodeId, TraceTrie};
