//! Mutator threads and call frames.

use polm2_gc::ThreadId;
use polm2_heap::{GenId, ObjectId, SiteId};

use crate::events::TraceFrame;

/// One call frame.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// Class index in the loaded program.
    pub(crate) class_idx: u16,
    /// Method index within the class.
    pub(crate) method_idx: u16,
    /// The line currently executing (call line, alloc line, ...).
    pub(crate) line: u32,
    /// The frame accumulator: most recent allocation or callee result.
    pub(crate) acc: Option<ObjectId>,
    /// Objects this frame holds references to (its locals); GC roots while
    /// the frame is on the stack.
    pub(crate) roots: Vec<ObjectId>,
    /// The site of the most recent allocation in this frame (for
    /// `RecordAlloc`).
    pub(crate) last_site: Option<SiteId>,
    /// Target generations saved by `SetGen`, restored by `RestoreGen` or at
    /// frame pop.
    pub(crate) saved_gens: Vec<GenId>,
}

impl Frame {
    pub(crate) fn new(class_idx: u16, method_idx: u16) -> Self {
        Frame {
            class_idx,
            method_idx,
            line: 0,
            acc: None,
            roots: Vec::new(),
            last_site: None,
            saved_gens: Vec::new(),
        }
    }
}

/// One mutator thread: an id and a call stack.
///
/// Threads are scheduled cooperatively by the driver — one
/// [`Jvm::invoke`](crate::Jvm::invoke) at a time — which keeps the simulation
/// deterministic. Frame roots model Java locals: every object a frame
/// allocates or receives stays reachable until the frame pops.
#[derive(Debug)]
pub struct MutatorThread {
    id: ThreadId,
    pub(crate) frames: Vec<Frame>,
}

impl MutatorThread {
    pub(crate) fn new(id: ThreadId) -> Self {
        MutatorThread {
            id,
            frames: Vec::new(),
        }
    }

    /// The thread id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The current stack trace, outermost frame first.
    pub fn trace(&self) -> Vec<TraceFrame> {
        self.frames
            .iter()
            .map(|f| TraceFrame {
                class_idx: f.class_idx,
                method_idx: f.method_idx,
                line: f.line,
            })
            .collect()
    }

    /// All objects rooted by this thread's stack (locals + accumulators).
    pub fn stack_roots(&self) -> Vec<ObjectId> {
        let mut roots = Vec::new();
        for f in &self.frames {
            roots.extend_from_slice(&f.roots);
            roots.extend(f.acc);
        }
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_reflects_frames() {
        let mut t = MutatorThread::new(ThreadId::new(1));
        assert_eq!(t.depth(), 0);
        let mut f0 = Frame::new(0, 0);
        f0.line = 3;
        let mut f1 = Frame::new(0, 1);
        f1.line = 7;
        t.frames.push(f0);
        t.frames.push(f1);
        let trace = t.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].line, 3);
        assert_eq!(trace[1].line, 7);
    }

    #[test]
    fn stack_roots_include_locals_and_acc() {
        let mut t = MutatorThread::new(ThreadId::new(1));
        let mut f = Frame::new(0, 0);
        f.roots.push(ObjectId::new(10));
        f.acc = Some(ObjectId::new(20));
        t.frames.push(f);
        let roots = t.stack_roots();
        assert!(roots.contains(&ObjectId::new(10)));
        assert!(roots.contains(&ObjectId::new(20)));
    }
}
