//! Mutator threads and call frames.

use polm2_gc::ThreadId;
use polm2_heap::{GenId, ObjectId, SiteId};

use crate::events::{AllocEvent, AllocEventBuffer, TraceFrame};
use crate::trie::TraceNodeId;

/// One call frame.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// Class index in the loaded program.
    pub(crate) class_idx: u16,
    /// Method index within the class.
    pub(crate) method_idx: u16,
    /// The line currently executing (call line, alloc line, ...).
    pub(crate) line: u32,
    /// The frame accumulator: most recent allocation or callee result.
    pub(crate) acc: Option<ObjectId>,
    /// Objects this frame holds references to (its locals); GC roots while
    /// the frame is on the stack.
    pub(crate) roots: Vec<ObjectId>,
    /// The site of the most recent allocation in this frame (for
    /// `RecordAlloc`).
    pub(crate) last_site: Option<SiteId>,
    /// Target generations saved by `SetGen`, restored by `RestoreGen` or at
    /// frame pop.
    pub(crate) saved_gens: Vec<GenId>,
}

impl Frame {
    pub(crate) fn new(class_idx: u16, method_idx: u16) -> Self {
        Frame {
            class_idx,
            method_idx,
            line: 0,
            acc: None,
            roots: Vec::new(),
            last_site: None,
            saved_gens: Vec::new(),
        }
    }

    /// The frame as the Recorder sees it right now.
    pub(crate) fn as_trace_frame(&self) -> TraceFrame {
        TraceFrame {
            class_idx: self.class_idx,
            method_idx: self.method_idx,
            line: self.line,
        }
    }
}

/// One mutator thread: an id and a call stack.
///
/// Threads are scheduled cooperatively by the driver — one
/// [`Jvm::invoke`](crate::Jvm::invoke) at a time — which keeps the simulation
/// deterministic. Frame roots model Java locals: every object a frame
/// allocates or receives stays reachable until the frame pops.
#[derive(Debug)]
pub struct MutatorThread {
    id: ThreadId,
    pub(crate) frames: Vec<Frame>,
    /// Trie node encoding the frames *below* the topmost one, each frozen at
    /// its call line; maintained on frame push/pop by the interpreter when
    /// the trie recorder path is active (see [`crate::TraceTrie`]).
    pub(crate) context_node: TraceNodeId,
    /// Buffered allocation events, trie form (the fast recorder path).
    pub(crate) events: AllocEventBuffer,
    /// Buffered allocation events, materialized form (the seed-equivalent
    /// stack-walk recorder path).
    pub(crate) pending_events: Vec<AllocEvent>,
    /// Scratch for [`stack_roots`](MutatorThread::stack_roots), reused
    /// across GC safepoints.
    roots_scratch: Vec<ObjectId>,
    /// Root count of the previous safepoint; pre-sizes the next collection.
    last_root_count: usize,
}

impl MutatorThread {
    pub(crate) fn new(id: ThreadId) -> Self {
        MutatorThread {
            id,
            frames: Vec::new(),
            context_node: TraceNodeId::ROOT,
            events: AllocEventBuffer::new(),
            pending_events: Vec::new(),
            roots_scratch: Vec::new(),
            last_root_count: 0,
        }
    }

    /// The thread id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The current stack trace, outermost frame first.
    pub fn trace(&self) -> Vec<TraceFrame> {
        self.frames.iter().map(Frame::as_trace_frame).collect()
    }

    /// All objects rooted by this thread's stack (locals + accumulators).
    ///
    /// The returned slice borrows a per-thread scratch buffer that is reused
    /// (and pre-sized from the previous safepoint's root count) instead of
    /// allocating a fresh `Vec` at every GC safepoint.
    pub fn stack_roots(&mut self) -> &[ObjectId] {
        let mut scratch = std::mem::take(&mut self.roots_scratch);
        scratch.clear();
        scratch.reserve(self.last_root_count);
        self.stack_roots_into(&mut scratch);
        self.last_root_count = scratch.len();
        self.roots_scratch = scratch;
        &self.roots_scratch
    }

    /// Appends this thread's stack roots to `out` (shared safepoint-root
    /// collection; the buffer is the caller's to reuse).
    pub fn stack_roots_into(&self, out: &mut Vec<ObjectId>) {
        for f in &self.frames {
            out.extend_from_slice(&f.roots);
            out.extend(f.acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_reflects_frames() {
        let mut t = MutatorThread::new(ThreadId::new(1));
        assert_eq!(t.depth(), 0);
        let mut f0 = Frame::new(0, 0);
        f0.line = 3;
        let mut f1 = Frame::new(0, 1);
        f1.line = 7;
        t.frames.push(f0);
        t.frames.push(f1);
        let trace = t.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].line, 3);
        assert_eq!(trace[1].line, 7);
    }

    #[test]
    fn stack_roots_include_locals_and_acc() {
        let mut t = MutatorThread::new(ThreadId::new(1));
        let mut f = Frame::new(0, 0);
        f.roots.push(ObjectId::new(10));
        f.acc = Some(ObjectId::new(20));
        t.frames.push(f);
        let roots = t.stack_roots();
        assert!(roots.contains(&ObjectId::new(10)));
        assert!(roots.contains(&ObjectId::new(20)));
    }

    #[test]
    fn stack_roots_reuses_its_scratch_buffer() {
        let mut t = MutatorThread::new(ThreadId::new(1));
        let mut f = Frame::new(0, 0);
        f.roots.extend((0..64).map(ObjectId::new));
        t.frames.push(f);
        assert_eq!(t.stack_roots().len(), 64);
        let cap = t.roots_scratch.capacity();
        let ptr = t.stack_roots().as_ptr();
        assert_eq!(t.stack_roots().len(), 64);
        assert_eq!(t.roots_scratch.capacity(), cap, "no reallocation");
        assert_eq!(t.stack_roots().as_ptr(), ptr, "same storage reused");
    }
}
