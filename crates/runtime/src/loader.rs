//! Class loading: agent transformer chain, resolution, site assignment.

use std::collections::HashMap;

use polm2_heap::{ClassId, GenId, Heap, SiteId};

use crate::events::TraceFrame;
use crate::ir::{ClassDef, CodeLoc, CountSpec, Instr, Program, SizeSpec};
use crate::RuntimeError;

/// A load-time bytecode transformer — the Java-agent analogue.
///
/// The POLM2 Recorder and Instrumenter both implement this: they see every
/// class exactly once, while it is being loaded, and may rewrite its methods
/// freely. The application itself is never modified on disk, matching the
/// paper's "no source code access required" property.
pub trait ClassTransformer {
    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// Rewrites one class in place.
    fn transform(&mut self, class: &mut ClassDef);
}

/// Metadata for one allocation site discovered at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteInfo {
    /// The site id.
    pub id: SiteId,
    /// Name of the class the site allocates.
    pub alloc_class: String,
    /// Where the site lives.
    pub location: CodeLoc,
}

/// All allocation sites of a loaded program.
#[derive(Debug, Clone, Default)]
pub struct SiteTable {
    sites: Vec<SiteInfo>,
    by_location: HashMap<CodeLoc, SiteId>,
}

impl SiteTable {
    fn intern(&mut self, alloc_class: &str, location: CodeLoc) -> SiteId {
        if let Some(&id) = self.by_location.get(&location) {
            return id;
        }
        let id = SiteId::new(self.sites.len() as u32);
        self.sites.push(SiteInfo {
            id,
            alloc_class: alloc_class.to_string(),
            location: location.clone(),
        });
        self.by_location.insert(location, id);
        id
    }

    /// Site metadata by id.
    pub fn info(&self, id: SiteId) -> Option<&SiteInfo> {
        self.sites.get(id.index())
    }

    /// Site id by source location.
    pub fn find(&self, location: &CodeLoc) -> Option<SiteId> {
        self.by_location.get(location).copied()
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if the program allocates nowhere.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over all sites in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SiteInfo> {
        self.sites.iter()
    }
}

/// A resolved instruction (names replaced by indices/ids).
#[derive(Debug, Clone)]
pub(crate) enum RInstr {
    Alloc {
        class: ClassId,
        size: RSize,
        site: SiteId,
        pretenure: bool,
        line: u32,
    },
    Call {
        class_idx: u16,
        method_idx: u16,
        line: u32,
    },
    Branch {
        cond: String,
        then_block: Vec<RInstr>,
        else_block: Vec<RInstr>,
        line: u32,
    },
    Repeat {
        count: RCount,
        body: Vec<RInstr>,
        line: u32,
    },
    Native {
        hook: String,
        line: u32,
    },
    SetGen {
        gen: GenId,
        line: u32,
    },
    RestoreGen {
        line: u32,
    },
    RecordAlloc {
        line: u32,
    },
}

#[derive(Debug, Clone)]
pub(crate) enum RSize {
    Fixed(u32),
    Hook(String),
}

#[derive(Debug, Clone)]
pub(crate) enum RCount {
    Fixed(u32),
    Hook(String),
}

#[derive(Debug)]
pub(crate) struct LoadedMethod {
    pub(crate) name: String,
    pub(crate) body: Vec<RInstr>,
}

#[derive(Debug)]
pub(crate) struct LoadedClass {
    pub(crate) name: String,
    pub(crate) methods: Vec<LoadedMethod>,
}

/// A program after transformation and resolution: what the interpreter runs.
#[derive(Debug)]
pub struct LoadedProgram {
    classes: Vec<LoadedClass>,
    by_name: HashMap<String, u16>,
    method_index: HashMap<(u16, String), u16>,
    sites: SiteTable,
}

impl LoadedProgram {
    /// Resolves `(class, method)` to interpreter indices.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownClass`] / [`RuntimeError::UnknownMethod`].
    pub fn resolve(&self, class: &str, method: &str) -> Result<(u16, u16), RuntimeError> {
        let ci = *self
            .by_name
            .get(class)
            .ok_or_else(|| RuntimeError::UnknownClass {
                class: class.to_string(),
            })?;
        let mi = *self
            .method_index
            .get(&(ci, method.to_string()))
            .ok_or_else(|| RuntimeError::UnknownMethod {
                class: class.to_string(),
                method: method.to_string(),
            })?;
        Ok((ci, mi))
    }

    /// The allocation-site table.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Resolves a compact trace frame to a human-readable location.
    ///
    /// # Panics
    ///
    /// Panics if the indices do not belong to this program. For frames of
    /// untrusted provenance (e.g. records read back from disk), use
    /// [`try_code_loc`](Self::try_code_loc) instead.
    pub fn code_loc(&self, frame: TraceFrame) -> CodeLoc {
        self.try_code_loc(frame)
            .expect("trace frame belongs to this program")
    }

    /// Like [`code_loc`](Self::code_loc), but returns `None` for frames whose
    /// indices do not resolve in this program instead of panicking.
    pub fn try_code_loc(&self, frame: TraceFrame) -> Option<CodeLoc> {
        let class = self.classes.get(frame.class_idx as usize)?;
        let method = class.methods.get(frame.method_idx as usize)?;
        Some(CodeLoc {
            class: class.name.clone(),
            method: method.name.clone(),
            line: frame.line,
        })
    }

    /// True if the frame's class and method indices resolve in this program.
    pub fn frame_is_valid(&self, frame: TraceFrame) -> bool {
        self.classes
            .get(frame.class_idx as usize)
            .is_some_and(|c| c.methods.get(frame.method_idx as usize).is_some())
    }

    /// Number of loaded classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    pub(crate) fn class_by_idx(&self, idx: u16) -> &LoadedClass {
        &self.classes[idx as usize]
    }
}

/// Loads programs: runs the transformer chain, interns classes, resolves
/// calls, and assigns allocation-site ids.
#[derive(Debug, Default)]
pub struct Loader;

impl Loader {
    /// Loads `program` into `heap`'s class registry, applying `transformers`
    /// to every class first (in order), exactly as stacked Java agents see
    /// classes at load time.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownClass`] / [`RuntimeError::UnknownMethod`] if a
    /// call target does not resolve after transformation.
    pub fn load(
        mut program: Program,
        transformers: &mut [&mut dyn ClassTransformer],
        heap: &mut Heap,
    ) -> Result<LoadedProgram, RuntimeError> {
        for class in program.classes_mut() {
            for t in transformers.iter_mut() {
                t.transform(class);
            }
        }

        let mut by_name = HashMap::new();
        for (i, class) in program.classes().iter().enumerate() {
            by_name.insert(class.name.clone(), i as u16);
        }
        let mut method_index = HashMap::new();
        for (ci, class) in program.classes().iter().enumerate() {
            for (mi, method) in class.methods.iter().enumerate() {
                method_index.insert((ci as u16, method.name.clone()), mi as u16);
            }
        }

        let mut sites = SiteTable::default();
        let mut classes = Vec::with_capacity(program.classes().len());
        for class in program.classes() {
            let mut methods = Vec::with_capacity(class.methods.len());
            for method in &class.methods {
                let body = Self::resolve_block(
                    &method.body,
                    &class.name,
                    &method.name,
                    &by_name,
                    &method_index,
                    &mut sites,
                    heap,
                )?;
                methods.push(LoadedMethod {
                    name: method.name.clone(),
                    body,
                });
            }
            classes.push(LoadedClass {
                name: class.name.clone(),
                methods,
            });
        }

        Ok(LoadedProgram {
            classes,
            by_name,
            method_index,
            sites,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_block(
        block: &[Instr],
        class_name: &str,
        method_name: &str,
        by_name: &HashMap<String, u16>,
        method_index: &HashMap<(u16, String), u16>,
        sites: &mut SiteTable,
        heap: &mut Heap,
    ) -> Result<Vec<RInstr>, RuntimeError> {
        let mut out = Vec::with_capacity(block.len());
        for instr in block {
            out.push(match instr {
                Instr::Alloc {
                    class_name: alloc_class,
                    size,
                    line,
                    pretenure,
                } => {
                    let class = heap.classes_mut().intern(alloc_class);
                    let site =
                        sites.intern(alloc_class, CodeLoc::new(class_name, method_name, *line));
                    RInstr::Alloc {
                        class,
                        size: match size {
                            SizeSpec::Fixed(n) => RSize::Fixed(*n),
                            SizeSpec::Hook(h) => RSize::Hook(h.clone()),
                        },
                        site,
                        pretenure: *pretenure,
                        line: *line,
                    }
                }
                Instr::Call {
                    class,
                    method,
                    line,
                } => {
                    let ci = *by_name
                        .get(class)
                        .ok_or_else(|| RuntimeError::UnknownClass {
                            class: class.clone(),
                        })?;
                    let mi = *method_index.get(&(ci, method.clone())).ok_or_else(|| {
                        RuntimeError::UnknownMethod {
                            class: class.clone(),
                            method: method.clone(),
                        }
                    })?;
                    RInstr::Call {
                        class_idx: ci,
                        method_idx: mi,
                        line: *line,
                    }
                }
                Instr::Branch {
                    cond,
                    then_block,
                    else_block,
                    line,
                } => RInstr::Branch {
                    cond: cond.clone(),
                    then_block: Self::resolve_block(
                        then_block,
                        class_name,
                        method_name,
                        by_name,
                        method_index,
                        sites,
                        heap,
                    )?,
                    else_block: Self::resolve_block(
                        else_block,
                        class_name,
                        method_name,
                        by_name,
                        method_index,
                        sites,
                        heap,
                    )?,
                    line: *line,
                },
                Instr::Repeat { count, body, line } => RInstr::Repeat {
                    count: match count {
                        CountSpec::Fixed(n) => RCount::Fixed(*n),
                        CountSpec::Hook(h) => RCount::Hook(h.clone()),
                    },
                    body: Self::resolve_block(
                        body,
                        class_name,
                        method_name,
                        by_name,
                        method_index,
                        sites,
                        heap,
                    )?,
                    line: *line,
                },
                Instr::Native { hook, line } => RInstr::Native {
                    hook: hook.clone(),
                    line: *line,
                },
                Instr::SetGen { gen, line } => RInstr::SetGen {
                    gen: *gen,
                    line: *line,
                },
                Instr::RestoreGen { line } => RInstr::RestoreGen { line: *line },
                Instr::RecordAlloc { line } => RInstr::RecordAlloc { line: *line },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::MethodDef;
    use polm2_heap::HeapConfig;

    fn sample() -> Program {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("A")
                .with_method(MethodDef::new("main").push(Instr::call("A", "make", 2)))
                .with_method(MethodDef::new("make").push(Instr::alloc(
                    "Buf",
                    SizeSpec::Fixed(64),
                    5,
                ))),
        );
        p
    }

    #[test]
    fn load_resolves_and_assigns_sites() {
        let mut heap = Heap::new(HeapConfig::small());
        let loaded = Loader::load(sample(), &mut [], &mut heap).unwrap();
        assert_eq!(loaded.class_count(), 1);
        assert_eq!(loaded.sites().len(), 1);
        let site = loaded.sites().iter().next().unwrap();
        assert_eq!(site.alloc_class, "Buf");
        assert_eq!(site.location, CodeLoc::new("A", "make", 5));
        assert!(loaded.resolve("A", "main").is_ok());
        assert!(heap.classes().lookup("Buf").is_some());
    }

    #[test]
    fn unknown_call_target_fails_at_load() {
        let mut p = sample();
        p.classes_mut()[0]
            .methods
            .push(MethodDef::new("bad").push(Instr::call("Nope", "x", 1)));
        let mut heap = Heap::new(HeapConfig::small());
        let err = Loader::load(p, &mut [], &mut heap).unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownClass { .. }));

        let mut p = sample();
        p.classes_mut()[0]
            .methods
            .push(MethodDef::new("bad").push(Instr::call("A", "nope", 1)));
        let err = Loader::load(p, &mut [], &mut Heap::new(HeapConfig::small())).unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownMethod { .. }));
    }

    #[test]
    fn transformers_run_before_resolution() {
        struct AddAlloc;
        impl ClassTransformer for AddAlloc {
            fn name(&self) -> &str {
                "add-alloc"
            }
            fn transform(&mut self, class: &mut ClassDef) {
                if let Some(m) = class.method_mut("main") {
                    m.body.push(Instr::alloc("Extra", SizeSpec::Fixed(8), 99));
                }
            }
        }
        let mut heap = Heap::new(HeapConfig::small());
        let mut t = AddAlloc;
        let loaded = Loader::load(sample(), &mut [&mut t], &mut heap).unwrap();
        assert_eq!(
            loaded.sites().len(),
            2,
            "transformer-inserted site must be registered"
        );
        assert!(loaded
            .sites()
            .find(&CodeLoc::new("A", "main", 99))
            .is_some());
    }

    #[test]
    fn same_location_interns_once() {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("A").with_method(
                MethodDef::new("m")
                    .push(Instr::alloc("X", SizeSpec::Fixed(8), 4))
                    .push(Instr::alloc("X", SizeSpec::Fixed(8), 4)),
            ),
        );
        let mut heap = Heap::new(HeapConfig::small());
        let loaded = Loader::load(p, &mut [], &mut heap).unwrap();
        assert_eq!(loaded.sites().len(), 1);
    }

    #[test]
    fn code_loc_resolution() {
        let mut heap = Heap::new(HeapConfig::small());
        let loaded = Loader::load(sample(), &mut [], &mut heap).unwrap();
        let loc = loaded.code_loc(TraceFrame {
            class_idx: 0,
            method_idx: 1,
            line: 5,
        });
        assert_eq!(loc, CodeLoc::new("A", "make", 5));
    }

    #[test]
    fn out_of_range_frames_are_rejected_not_resolved() {
        let mut heap = Heap::new(HeapConfig::small());
        let loaded = Loader::load(sample(), &mut [], &mut heap).unwrap();
        let good = TraceFrame {
            class_idx: 0,
            method_idx: 0,
            line: 1,
        };
        let bad_class = TraceFrame {
            class_idx: u16::MAX,
            method_idx: 0,
            line: 1,
        };
        let bad_method = TraceFrame {
            class_idx: 0,
            method_idx: u16::MAX,
            line: 1,
        };
        assert!(loaded.frame_is_valid(good));
        assert!(!loaded.frame_is_valid(bad_class));
        assert!(!loaded.frame_is_valid(bad_method));
        assert!(loaded.try_code_loc(good).is_some());
        assert!(loaded.try_code_loc(bad_class).is_none());
        assert!(loaded.try_code_loc(bad_method).is_none());
    }
}
