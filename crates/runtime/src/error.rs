//! Runtime error type.

use std::error::Error;
use std::fmt;

use polm2_gc::GcError;
use polm2_heap::HeapError;

/// Errors produced while loading or executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A call referenced a class that is not loaded.
    UnknownClass {
        /// The class name.
        class: String,
    },
    /// A call referenced a method that does not exist on its class.
    UnknownMethod {
        /// The class name.
        class: String,
        /// The method name.
        method: String,
    },
    /// An instruction referenced a hook that is not registered.
    UnknownHook {
        /// The hook name.
        hook: String,
    },
    /// Call depth exceeded the interpreter's stack limit.
    StackOverflow {
        /// The limit that was hit.
        limit: usize,
    },
    /// A `RestoreGen` executed without a matching `SetGen` on the frame.
    UnbalancedRestoreGen,
    /// `RecordAlloc` executed with an empty accumulator (no allocation
    /// preceded it).
    NothingToRecord,
    /// The collector failed.
    Gc(GcError),
    /// A heap operation failed.
    Heap(HeapError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownClass { class } => write!(f, "unknown class {class}"),
            RuntimeError::UnknownMethod { class, method } => {
                write!(f, "unknown method {class}.{method}")
            }
            RuntimeError::UnknownHook { hook } => write!(f, "unknown hook {hook}"),
            RuntimeError::StackOverflow { limit } => {
                write!(f, "call depth exceeded the limit of {limit} frames")
            }
            RuntimeError::UnbalancedRestoreGen => {
                write!(f, "RestoreGen without a matching SetGen on the frame")
            }
            RuntimeError::NothingToRecord => {
                write!(f, "RecordAlloc with no preceding allocation in the frame")
            }
            RuntimeError::Gc(e) => write!(f, "collection failed: {e}"),
            RuntimeError::Heap(e) => write!(f, "heap operation failed: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Gc(e) => Some(e),
            RuntimeError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GcError> for RuntimeError {
    fn from(e: GcError) -> Self {
        RuntimeError::Gc(e)
    }
}

impl From<HeapError> for RuntimeError {
    fn from(e: HeapError) -> Self {
        RuntimeError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(RuntimeError::UnknownClass { class: "C".into() }
            .to_string()
            .contains("C"));
        assert!(RuntimeError::UnknownMethod {
            class: "C".into(),
            method: "m".into()
        }
        .to_string()
        .contains("C.m"));
        assert!(RuntimeError::UnknownHook { hook: "h".into() }
            .to_string()
            .contains("h"));
        assert!(RuntimeError::StackOverflow { limit: 64 }
            .to_string()
            .contains("64"));
        assert!(!RuntimeError::UnbalancedRestoreGen.to_string().is_empty());
        assert!(!RuntimeError::NothingToRecord.to_string().is_empty());
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: RuntimeError = GcError::OutOfMemory { requested: 1 }.into();
        assert!(Error::source(&e).is_some());
        let e: RuntimeError = HeapError::NoSuchObject {
            object: polm2_heap::ObjectId::new(1),
        }
        .into();
        assert!(Error::source(&e).is_some());
    }
}
