//! Allocation events: what the Recorder drains from the runtime.

use polm2_heap::{IdentityHash, ObjectId, SiteId};
use polm2_metrics::SimTime;

use crate::trie::TraceNodeId;

/// One frame of a captured stack trace, in compact (index) form.
///
/// Indices refer to the [`LoadedProgram`]; resolve to a human-readable
/// [`CodeLoc`] with [`LoadedProgram::code_loc`].
///
/// [`LoadedProgram`]: crate::LoadedProgram
/// [`LoadedProgram::code_loc`]: crate::LoadedProgram::code_loc
/// [`CodeLoc`]: crate::CodeLoc
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceFrame {
    /// Class index in the loaded program.
    pub class_idx: u16,
    /// Method index within the class.
    pub method_idx: u16,
    /// Source line within the method (call line for caller frames, the
    /// allocation line for the innermost frame).
    pub line: u32,
}

/// One recorded allocation: what the paper's Recorder logs — the full stack
/// trace of the allocation site plus the object's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocEvent {
    /// The call path, outermost frame first; the last frame is the
    /// allocation site itself.
    pub trace: Vec<TraceFrame>,
    /// The allocated object.
    pub object: ObjectId,
    /// The identity hash stored in the object's header (what snapshots are
    /// matched by).
    pub hash: IdentityHash,
    /// The allocation site id the loader assigned.
    pub site: SiteId,
    /// When the allocation happened.
    pub at: SimTime,
}

/// Per-thread buffer of recorded allocations in trie form: parallel columns
/// (structure-of-arrays) instead of a `Vec` of owning [`AllocEvent`]s.
///
/// The trie-path `RecordAlloc` pushes one entry per allocation — five
/// integer stores, no heap allocation. The buffer is created with a fixed
/// capacity ([`AllocEventBuffer::DEFAULT_CAPACITY`]) and keeps that storage
/// across drains ([`clear`](AllocEventBuffer::clear) retains capacity), so
/// the steady state allocates nothing; an operation that records more
/// events than the capacity between drains grows it once and the larger
/// buffer is then reused.
#[derive(Debug, Default)]
pub struct AllocEventBuffer {
    nodes: Vec<TraceNodeId>,
    hashes: Vec<IdentityHash>,
    objects: Vec<ObjectId>,
    sites: Vec<SiteId>,
    ats: Vec<SimTime>,
}

impl AllocEventBuffer {
    /// Events buffered per thread before the profiling session's next drain.
    pub const DEFAULT_CAPACITY: usize = 4_096;

    /// Creates a buffer with the default fixed capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a buffer with a given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        AllocEventBuffer {
            nodes: Vec::with_capacity(capacity),
            hashes: Vec::with_capacity(capacity),
            objects: Vec::with_capacity(capacity),
            sites: Vec::with_capacity(capacity),
            ats: Vec::with_capacity(capacity),
        }
    }

    /// Appends one recorded allocation.
    #[inline]
    pub fn push(
        &mut self,
        node: TraceNodeId,
        hash: IdentityHash,
        object: ObjectId,
        site: SiteId,
        at: SimTime,
    ) {
        self.nodes.push(node);
        self.hashes.push(hash);
        self.objects.push(object);
        self.sites.push(site);
        self.ats.push(at);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the buffer, retaining its storage.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.hashes.clear();
        self.objects.clear();
        self.sites.clear();
        self.ats.clear();
    }

    /// The trace-trie node column.
    pub fn nodes(&self) -> &[TraceNodeId] {
        &self.nodes
    }

    /// The identity-hash column.
    pub fn hashes(&self) -> &[IdentityHash] {
        &self.hashes
    }

    /// The object-id column.
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// The allocation-site column.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// The timestamp column.
    pub fn ats(&self) -> &[SimTime] {
        &self.ats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_frames_order_and_compare() {
        let a = TraceFrame {
            class_idx: 0,
            method_idx: 0,
            line: 1,
        };
        let b = TraceFrame {
            class_idx: 0,
            method_idx: 0,
            line: 2,
        };
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn event_is_cloneable_and_comparable() {
        let e = AllocEvent {
            trace: vec![TraceFrame {
                class_idx: 1,
                method_idx: 2,
                line: 3,
            }],
            object: ObjectId::new(9),
            hash: IdentityHash::of(ObjectId::new(9)),
            site: SiteId::new(4),
            at: SimTime::from_millis(5),
        };
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn event_buffer_columns_stay_parallel_and_capacity_survives_clear() {
        let mut buf = AllocEventBuffer::with_capacity(2);
        buf.push(
            TraceNodeId::ROOT,
            IdentityHash::of(ObjectId::new(1)),
            ObjectId::new(1),
            SiteId::new(3),
            SimTime::from_micros(7),
        );
        assert_eq!(buf.len(), 1);
        assert!(!buf.is_empty());
        assert_eq!(buf.nodes().len(), buf.hashes().len());
        assert_eq!(buf.sites()[0], SiteId::new(3));
        assert_eq!(buf.ats()[0], SimTime::from_micros(7));
        let cap = buf.nodes.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.nodes.capacity(), cap, "clear retains storage");
    }
}
