//! Allocation events: what the Recorder drains from the runtime.

use polm2_heap::{IdentityHash, ObjectId, SiteId};
use polm2_metrics::SimTime;

/// One frame of a captured stack trace, in compact (index) form.
///
/// Indices refer to the [`LoadedProgram`]; resolve to a human-readable
/// [`CodeLoc`] with [`LoadedProgram::code_loc`].
///
/// [`LoadedProgram`]: crate::LoadedProgram
/// [`LoadedProgram::code_loc`]: crate::LoadedProgram::code_loc
/// [`CodeLoc`]: crate::CodeLoc
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceFrame {
    /// Class index in the loaded program.
    pub class_idx: u16,
    /// Method index within the class.
    pub method_idx: u16,
    /// Source line within the method (call line for caller frames, the
    /// allocation line for the innermost frame).
    pub line: u32,
}

/// One recorded allocation: what the paper's Recorder logs — the full stack
/// trace of the allocation site plus the object's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocEvent {
    /// The call path, outermost frame first; the last frame is the
    /// allocation site itself.
    pub trace: Vec<TraceFrame>,
    /// The allocated object.
    pub object: ObjectId,
    /// The identity hash stored in the object's header (what snapshots are
    /// matched by).
    pub hash: IdentityHash,
    /// The allocation site id the loader assigned.
    pub site: SiteId,
    /// When the allocation happened.
    pub at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_frames_order_and_compare() {
        let a = TraceFrame {
            class_idx: 0,
            method_idx: 0,
            line: 1,
        };
        let b = TraceFrame {
            class_idx: 0,
            method_idx: 0,
            line: 2,
        };
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn event_is_cloneable_and_comparable() {
        let e = AllocEvent {
            trace: vec![TraceFrame {
                class_idx: 1,
                method_idx: 2,
                line: 3,
            }],
            object: ObjectId::new(9),
            hash: IdentityHash::of(ObjectId::new(9)),
            site: SiteId::new(4),
            at: SimTime::from_millis(5),
        };
        assert_eq!(e.clone(), e);
    }
}
