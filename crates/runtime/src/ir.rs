//! The structured bytecode IR.
//!
//! Programs are trees, not flat instruction streams: blocks nest inside
//! branches and loops. That keeps the interpreter simple while preserving
//! everything POLM2 observes — allocation sites with (class, method, line)
//! identity, call paths, and rewrite points for the agents.

use std::fmt;

use polm2_heap::GenId;

/// A source location: the (class, method, line) triple POLM2's STTree nodes
/// carry (the paper's 4-tuple minus the target generation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodeLoc {
    /// Class name.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Source line.
    pub line: u32,
}

impl CodeLoc {
    /// Creates a location.
    pub fn new(class: impl Into<String>, method: impl Into<String>, line: u32) -> Self {
        CodeLoc {
            class: class.into(),
            method: method.into(),
            line,
        }
    }
}

impl fmt::Display for CodeLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}:{}", self.class, self.method, self.line)
    }
}

/// How an allocation's size is determined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeSpec {
    /// A fixed size in bytes.
    Fixed(u32),
    /// Computed by a size hook (e.g. a value-size distribution).
    Hook(String),
}

/// How a loop's trip count is determined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountSpec {
    /// A fixed count.
    Fixed(u32),
    /// Computed by a count hook (e.g. "edges remaining in this batch").
    Hook(String),
}

/// One instruction of the structured IR.
///
/// Every variant carries a source line; lines identify allocation sites and
/// call sites to the profiler, so keep them unique within a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Allocate an object of `class_name`. The new object becomes the
    /// frame's accumulator and is frame-rooted until the frame pops.
    /// `pretenure` is the `@Gen` annotation (set by the Instrumenter).
    Alloc {
        /// Class of the allocated object.
        class_name: String,
        /// Size specification.
        size: SizeSpec,
        /// Source line (site identity).
        line: u32,
        /// `@Gen` annotation: allocate into the thread's target generation.
        pretenure: bool,
    },
    /// Call `class.method`. The callee's accumulator propagates back to the
    /// caller's accumulator on return.
    Call {
        /// Callee class name.
        class: String,
        /// Callee method name.
        method: String,
        /// Source line (call-site identity).
        line: u32,
    },
    /// Two-way branch on a condition hook.
    Branch {
        /// Condition hook name (must be registered as a cond hook).
        cond: String,
        /// Block when the hook returns true.
        then_block: Vec<Instr>,
        /// Block when the hook returns false.
        else_block: Vec<Instr>,
        /// Source line.
        line: u32,
    },
    /// Repeat a block.
    Repeat {
        /// Trip count specification.
        count: CountSpec,
        /// Loop body.
        body: Vec<Instr>,
        /// Source line.
        line: u32,
    },
    /// Invoke a native hook (workload semantics: insert into a memtable,
    /// flush, publish results, ...).
    Native {
        /// Action hook name.
        hook: String,
        /// Source line.
        line: u32,
    },
    /// Set the thread's target generation, saving the previous one on the
    /// frame (inserted by the Instrumenter; NG2C `setGeneration`).
    SetGen {
        /// The generation to make current.
        gen: GenId,
        /// Source line.
        line: u32,
    },
    /// Restore the most recently saved target generation (the Instrumenter
    /// pairs each [`Instr::SetGen`] with one of these).
    RestoreGen {
        /// Source line.
        line: u32,
    },
    /// Report the frame's accumulator (the most recent allocation) to the
    /// allocation-event buffer (inserted by the Recorder after every
    /// `Alloc`).
    RecordAlloc {
        /// Source line.
        line: u32,
    },
}

impl Instr {
    /// Shorthand for a fixed-size, non-pretenured allocation.
    pub fn alloc(class_name: impl Into<String>, size: SizeSpec, line: u32) -> Instr {
        Instr::Alloc {
            class_name: class_name.into(),
            size,
            line,
            pretenure: false,
        }
    }

    /// Shorthand for a call.
    pub fn call(class: impl Into<String>, method: impl Into<String>, line: u32) -> Instr {
        Instr::Call {
            class: class.into(),
            method: method.into(),
            line,
        }
    }

    /// Shorthand for a native hook invocation.
    pub fn native(hook: impl Into<String>, line: u32) -> Instr {
        Instr::Native {
            hook: hook.into(),
            line,
        }
    }

    /// The instruction's source line.
    pub fn line(&self) -> u32 {
        match self {
            Instr::Alloc { line, .. }
            | Instr::Call { line, .. }
            | Instr::Branch { line, .. }
            | Instr::Repeat { line, .. }
            | Instr::Native { line, .. }
            | Instr::SetGen { line, .. }
            | Instr::RestoreGen { line }
            | Instr::RecordAlloc { line } => *line,
        }
    }
}

/// One method: a name and a body of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDef {
    /// Method name, unique within its class.
    pub name: String,
    /// The method body.
    pub body: Vec<Instr>,
}

impl MethodDef {
    /// Creates an empty method.
    pub fn new(name: impl Into<String>) -> Self {
        MethodDef {
            name: name.into(),
            body: Vec::new(),
        }
    }

    /// Appends an instruction (builder style).
    pub fn push(mut self, instr: Instr) -> Self {
        self.body.push(instr);
        self
    }

    /// Appends many instructions (builder style).
    pub fn extend(mut self, instrs: impl IntoIterator<Item = Instr>) -> Self {
        self.body.extend(instrs);
        self
    }
}

/// One class: a name and its methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name, unique within the program.
    pub name: String,
    /// The class's methods.
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// Creates an empty class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            methods: Vec::new(),
        }
    }

    /// Adds a method (builder style).
    pub fn with_method(mut self, method: MethodDef) -> Self {
        self.methods.push(method);
        self
    }

    /// Finds a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Finds a method by name, mutably (used by transformers).
    pub fn method_mut(&mut self, name: &str) -> Option<&mut MethodDef> {
        self.methods.iter_mut().find(|m| m.name == name)
    }
}

/// A whole program: the unit the [`Loader`](crate::Loader) loads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    classes: Vec<ClassDef>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a class.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn add_class(&mut self, class: ClassDef) {
        assert!(
            self.class(&class.name).is_none(),
            "duplicate class {}",
            class.name
        );
        self.classes.push(class);
    }

    /// All classes.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Mutable classes (used by transformers before loading).
    pub fn classes_mut(&mut self) -> &mut [ClassDef] {
        &mut self.classes
    }

    /// Finds a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Walks every instruction in the program, depth first.
    pub fn visit_instrs<'a>(&'a self, mut f: impl FnMut(&'a ClassDef, &'a MethodDef, &'a Instr)) {
        fn walk<'a>(
            class: &'a ClassDef,
            method: &'a MethodDef,
            block: &'a [Instr],
            f: &mut impl FnMut(&'a ClassDef, &'a MethodDef, &'a Instr),
        ) {
            for instr in block {
                f(class, method, instr);
                match instr {
                    Instr::Branch {
                        then_block,
                        else_block,
                        ..
                    } => {
                        walk(class, method, then_block, f);
                        walk(class, method, else_block, f);
                    }
                    Instr::Repeat { body, .. } => walk(class, method, body, f),
                    _ => {}
                }
            }
        }
        for class in &self.classes {
            for method in &class.methods {
                walk(class, method, &method.body, &mut f);
            }
        }
    }

    /// Counts allocation sites in the program (`Alloc` instructions).
    pub fn alloc_site_count(&self) -> usize {
        let mut n = 0;
        self.visit_instrs(|_, _, i| {
            if matches!(i, Instr::Alloc { .. }) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("A")
                .with_method(
                    MethodDef::new("m")
                        .push(Instr::alloc("X", SizeSpec::Fixed(8), 1))
                        .push(Instr::Branch {
                            cond: "c".into(),
                            then_block: vec![Instr::alloc("Y", SizeSpec::Fixed(8), 3)],
                            else_block: vec![Instr::Repeat {
                                count: CountSpec::Fixed(2),
                                body: vec![Instr::alloc("Z", SizeSpec::Fixed(8), 5)],
                                line: 4,
                            }],
                            line: 2,
                        }),
                )
                .with_method(MethodDef::new("n").push(Instr::call("A", "m", 9))),
        );
        p
    }

    #[test]
    fn code_loc_display() {
        let loc = CodeLoc::new("Memtable", "insert", 42);
        assert_eq!(loc.to_string(), "Memtable.insert:42");
    }

    #[test]
    fn visit_reaches_nested_blocks() {
        let p = sample();
        assert_eq!(p.alloc_site_count(), 3);
        let mut lines = Vec::new();
        p.visit_instrs(|_, _, i| lines.push(i.line()));
        assert_eq!(lines, vec![1, 2, 3, 4, 5, 9]);
    }

    #[test]
    fn class_and_method_lookup() {
        let p = sample();
        assert!(p.class("A").is_some());
        assert!(p.class("B").is_none());
        assert!(p.class("A").unwrap().method("m").is_some());
        assert!(p.class("A").unwrap().method("q").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let mut p = sample();
        p.add_class(ClassDef::new("A"));
    }

    #[test]
    fn instr_shorthands() {
        assert_eq!(Instr::alloc("X", SizeSpec::Fixed(1), 7).line(), 7);
        assert_eq!(Instr::call("A", "b", 8).line(), 8);
        assert_eq!(Instr::native("h", 9).line(), 9);
        assert_eq!(Instr::RecordAlloc { line: 3 }.line(), 3);
        assert_eq!(Instr::RestoreGen { line: 4 }.line(), 4);
        assert_eq!(
            Instr::SetGen {
                gen: GenId::new(1),
                line: 5
            }
            .line(),
            5
        );
    }
}
