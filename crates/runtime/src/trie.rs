//! The incremental trace trie: O(1) allocation-context tracking.
//!
//! The seed Recorder paid O(depth) per allocation: every `RecordAlloc`
//! walked the thread's frame stack and heap-allocated a fresh
//! `Vec<TraceFrame>`. ROLP's observation (carried over here) is that the
//! allocation context only changes at *call* and *return*, so it can be
//! maintained incrementally: the runtime keeps one shared trie of call
//! edges, each thread carries the id of the trie node encoding its current
//! caller path, and recording an allocation reduces to a single child-edge
//! lookup — no stack walk, no per-event allocation.
//!
//! Structure: node 0 is the root (the empty path). Every other node is
//! reached from its parent over an edge labelled with one [`TraceFrame`];
//! the path of frames from the root to a node *is* the stack trace the node
//! stands for, outermost frame first. A thread's *context node* encodes the
//! frames **below** its topmost frame (each frozen at the line of the call
//! it made); the topmost frame's line still moves per instruction, so
//! `RecordAlloc` appends it with one [`child`](TraceTrie::child) lookup at
//! the allocation line.
//!
//! Invariants (relied on by the Recorder's node → trace memo, see
//! DESIGN.md §12):
//!
//! * Node ids are dense, allocated in first-visit order, and **stable for
//!   the lifetime of the trie** — nodes are never removed or renumbered, so
//!   ids remain valid across event drains.
//! * The trie stores only program locations (class/method indices and
//!   lines), never object references — GC safepoints, relocation, and
//!   collection cycles cannot invalidate it.

use polm2_heap::IdHashMap;

use crate::events::TraceFrame;

/// Identifies one node of a [`TraceTrie`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceNodeId(u32);

impl TraceNodeId {
    /// The root node: the empty call path.
    pub const ROOT: TraceNodeId = TraceNodeId(0);

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw index widened for table addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the root (empty-path) node.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

/// A frame packed into one integer (16 bits class, 16 bits method, 32 bits
/// line) — lossless, so key equality is frame equality.
const fn pack(frame: TraceFrame) -> u64 {
    (frame.class_idx as u64) << 48 | (frame.method_idx as u64) << 32 | frame.line as u64
}

/// The shared trie of call edges.
///
/// Columnar node storage (`parents`/`frames`/`depths` indexed by
/// [`TraceNodeId`]) plus one edge map keyed by `(parent, packed frame)`.
/// [`child`](TraceTrie::child) is the only mutating operation; everything
/// else is an array index.
#[derive(Debug)]
pub struct TraceTrie {
    /// Parent of each node; the root is its own parent.
    parents: Vec<TraceNodeId>,
    /// The frame labelling the edge from `parents[n]` to `n`. Entry 0 is a
    /// sentinel (the root has no incoming edge).
    frames: Vec<TraceFrame>,
    /// Path length from the root (root = 0).
    depths: Vec<u32>,
    /// `(parent, packed frame) → child`; hit once per call and once per
    /// allocation, so it uses the heap's fast id hasher.
    children: IdHashMap<(u32, u64), TraceNodeId>,
}

impl TraceTrie {
    /// Creates a trie holding only the root.
    pub fn new() -> Self {
        TraceTrie {
            parents: vec![TraceNodeId::ROOT],
            frames: vec![TraceFrame {
                class_idx: 0,
                method_idx: 0,
                line: 0,
            }],
            depths: vec![0],
            children: IdHashMap::default(),
        }
    }

    /// The child of `parent` over `frame`, creating it on first visit.
    ///
    /// This is the per-call (and per-allocation) hot operation: one hash
    /// probe in steady state.
    pub fn child(&mut self, parent: TraceNodeId, frame: TraceFrame) -> TraceNodeId {
        let key = (parent.raw(), pack(frame));
        if let Some(&node) = self.children.get(&key) {
            return node;
        }
        let node = TraceNodeId(self.parents.len() as u32);
        self.parents.push(parent);
        self.frames.push(frame);
        self.depths.push(self.depths[parent.index()] + 1);
        self.children.insert(key, node);
        node
    }

    /// The parent of `node` (the root's parent is the root).
    pub fn parent(&self, node: TraceNodeId) -> TraceNodeId {
        self.parents[node.index()]
    }

    /// The frame labelling the edge into `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root, which has no incoming edge.
    pub fn frame(&self, node: TraceNodeId) -> TraceFrame {
        assert!(!node.is_root(), "the root node has no frame");
        self.frames[node.index()]
    }

    /// Path length from the root to `node`.
    pub fn depth(&self, node: TraceNodeId) -> u32 {
        self.depths[node.index()]
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if the trie holds only the root.
    pub fn is_empty(&self) -> bool {
        self.parents.len() == 1
    }

    /// Materializes the stack trace `node` stands for, outermost frame
    /// first (the root materializes to an empty trace).
    pub fn path(&self, node: TraceNodeId) -> Vec<TraceFrame> {
        let mut out = Vec::with_capacity(self.depth(node) as usize);
        self.path_into(node, &mut out);
        out
    }

    /// Appends the trace of `node` to `out`, outermost frame first.
    pub fn path_into(&self, node: TraceNodeId, out: &mut Vec<TraceFrame>) {
        let start = out.len();
        let mut cur = node;
        while !cur.is_root() {
            out.push(self.frames[cur.index()]);
            cur = self.parents[cur.index()];
        }
        out[start..].reverse();
    }
}

impl Default for TraceTrie {
    fn default() -> Self {
        TraceTrie::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(class_idx: u16, method_idx: u16, line: u32) -> TraceFrame {
        TraceFrame {
            class_idx,
            method_idx,
            line,
        }
    }

    #[test]
    fn children_are_interned_and_stable() {
        let mut trie = TraceTrie::new();
        let a = trie.child(TraceNodeId::ROOT, frame(0, 0, 1));
        let b = trie.child(a, frame(0, 1, 2));
        let a2 = trie.child(TraceNodeId::ROOT, frame(0, 0, 1));
        assert_eq!(a, a2, "same edge, same node");
        assert_ne!(a, b);
        assert_eq!(trie.len(), 3);
        assert_eq!(trie.parent(b), a);
        assert_eq!(trie.parent(a), TraceNodeId::ROOT);
        assert_eq!(trie.depth(b), 2);
    }

    #[test]
    fn sibling_edges_differ_by_any_frame_field() {
        let mut trie = TraceTrie::new();
        let nodes = [
            trie.child(TraceNodeId::ROOT, frame(1, 0, 7)),
            trie.child(TraceNodeId::ROOT, frame(0, 1, 7)),
            trie.child(TraceNodeId::ROOT, frame(0, 0, 7)),
            trie.child(TraceNodeId::ROOT, frame(0, 0, 8)),
        ];
        let distinct: std::collections::HashSet<_> = nodes.iter().collect();
        assert_eq!(distinct.len(), nodes.len());
    }

    #[test]
    fn path_materializes_outermost_first() {
        let mut trie = TraceTrie::new();
        let a = trie.child(TraceNodeId::ROOT, frame(0, 0, 10));
        let b = trie.child(a, frame(0, 2, 5));
        assert_eq!(trie.path(b), vec![frame(0, 0, 10), frame(0, 2, 5)]);
        assert_eq!(trie.path(TraceNodeId::ROOT), Vec::<TraceFrame>::new());

        let mut out = vec![frame(9, 9, 9)];
        trie.path_into(b, &mut out);
        assert_eq!(out, vec![frame(9, 9, 9), frame(0, 0, 10), frame(0, 2, 5)]);
    }

    #[test]
    fn root_parent_is_root() {
        let trie = TraceTrie::new();
        assert_eq!(trie.parent(TraceNodeId::ROOT), TraceNodeId::ROOT);
        assert!(trie.is_empty());
        assert_eq!(trie.depth(TraceNodeId::ROOT), 0);
    }
}
