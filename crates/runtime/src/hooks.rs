//! Native hooks: workload semantics behind the IR.
//!
//! An interpreted program handles *allocation structure* (who allocates what,
//! where, through which call path); what the objects then *mean* — inserted
//! into a memtable, linked into an index, flushed, evicted — is workload
//! logic implemented as Rust closures registered here. Hooks get mutable
//! access to the heap's reference graph and root table plus a typed workload
//! state, so object lifetimes are driven by real data-structure dynamics.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;

use polm2_gc::ThreadId;
use polm2_heap::{Heap, ObjectId};
use polm2_metrics::SimTime;

use crate::RuntimeError;

/// Everything a hook may touch.
pub struct HookCtx<'a> {
    /// The heap: reference graph, root table, object queries.
    pub heap: &'a mut Heap,
    /// The executing thread.
    pub thread: ThreadId,
    /// The current frame's accumulator (most recent allocation or callee
    /// result). Hooks may read it (to link the object somewhere) or replace
    /// it (to "return" a looked-up object).
    pub acc: &'a mut Option<ObjectId>,
    /// Workload-defined state; downcast with [`HookCtx::state`].
    pub raw_state: &'a mut dyn Any,
    /// The current simulated time.
    pub now: SimTime,
}

impl fmt::Debug for HookCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HookCtx")
            .field("thread", &self.thread)
            .field("acc", &self.acc)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl HookCtx<'_> {
    /// Downcasts the workload state.
    ///
    /// # Panics
    ///
    /// Panics if the state is not a `S` — a wiring bug, not a runtime
    /// condition.
    pub fn state<S: 'static>(&mut self) -> &mut S {
        self.raw_state
            .downcast_mut::<S>()
            .expect("workload state has unexpected type")
    }
}

/// An action hook's effect on the interpreter, all fields optional.
#[derive(Debug, Clone, Copy, Default)]
pub struct HookAction {
    /// Extra mutator time to charge (models I/O or computation the workload
    /// performs besides allocation).
    pub cost: Option<polm2_metrics::SimDuration>,
}

type ActionFn = Box<dyn FnMut(&mut HookCtx<'_>) -> HookAction>;
type CondFn = Box<dyn FnMut(&mut HookCtx<'_>) -> bool>;
type ValueFn = Box<dyn FnMut(&mut HookCtx<'_>) -> u32>;

/// Registry of named hooks, by kind.
///
/// * **action** hooks run for [`Instr::Native`];
/// * **cond** hooks decide [`Instr::Branch`];
/// * **size** hooks compute [`SizeSpec::Hook`] allocation sizes;
/// * **count** hooks compute [`CountSpec::Hook`] trip counts.
///
/// [`Instr::Native`]: crate::Instr::Native
/// [`Instr::Branch`]: crate::Instr::Branch
/// [`SizeSpec::Hook`]: crate::SizeSpec::Hook
/// [`CountSpec::Hook`]: crate::CountSpec::Hook
#[derive(Default)]
pub struct HookRegistry {
    actions: HashMap<String, ActionFn>,
    conds: HashMap<String, CondFn>,
    sizes: HashMap<String, ValueFn>,
    counts: HashMap<String, ValueFn>,
}

impl fmt::Debug for HookRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.actions.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("HookRegistry")
            .field("actions", &names)
            .field("conds", &self.conds.len())
            .field("sizes", &self.sizes.len())
            .field("counts", &self.counts.len())
            .finish()
    }
}

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HookRegistry::default()
    }

    /// Registers an action hook (replaces any previous one of that name).
    pub fn register_action(
        &mut self,
        name: impl Into<String>,
        hook: impl FnMut(&mut HookCtx<'_>) -> HookAction + 'static,
    ) {
        self.actions.insert(name.into(), Box::new(hook));
    }

    /// Registers a condition hook.
    pub fn register_cond(
        &mut self,
        name: impl Into<String>,
        hook: impl FnMut(&mut HookCtx<'_>) -> bool + 'static,
    ) {
        self.conds.insert(name.into(), Box::new(hook));
    }

    /// Registers a size hook.
    pub fn register_size(
        &mut self,
        name: impl Into<String>,
        hook: impl FnMut(&mut HookCtx<'_>) -> u32 + 'static,
    ) {
        self.sizes.insert(name.into(), Box::new(hook));
    }

    /// Registers a count hook.
    pub fn register_count(
        &mut self,
        name: impl Into<String>,
        hook: impl FnMut(&mut HookCtx<'_>) -> u32 + 'static,
    ) {
        self.counts.insert(name.into(), Box::new(hook));
    }

    /// Runs an action hook.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownHook`] if no action hook has that name.
    pub fn run_action(
        &mut self,
        name: &str,
        ctx: &mut HookCtx<'_>,
    ) -> Result<HookAction, RuntimeError> {
        match self.actions.get_mut(name) {
            Some(h) => Ok(h(ctx)),
            None => Err(RuntimeError::UnknownHook {
                hook: name.to_string(),
            }),
        }
    }

    /// Evaluates a condition hook.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownHook`] if no cond hook has that name.
    pub fn eval_cond(&mut self, name: &str, ctx: &mut HookCtx<'_>) -> Result<bool, RuntimeError> {
        match self.conds.get_mut(name) {
            Some(h) => Ok(h(ctx)),
            None => Err(RuntimeError::UnknownHook {
                hook: name.to_string(),
            }),
        }
    }

    /// Evaluates a size hook.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownHook`] if no size hook has that name.
    pub fn eval_size(&mut self, name: &str, ctx: &mut HookCtx<'_>) -> Result<u32, RuntimeError> {
        match self.sizes.get_mut(name) {
            Some(h) => Ok(h(ctx)),
            None => Err(RuntimeError::UnknownHook {
                hook: name.to_string(),
            }),
        }
    }

    /// Evaluates a count hook.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownHook`] if no count hook has that name.
    pub fn eval_count(&mut self, name: &str, ctx: &mut HookCtx<'_>) -> Result<u32, RuntimeError> {
        match self.counts.get_mut(name) {
            Some(h) => Ok(h(ctx)),
            None => Err(RuntimeError::UnknownHook {
                hook: name.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::HeapConfig;

    fn ctx_parts() -> (Heap, Option<ObjectId>, u32) {
        (Heap::new(HeapConfig::small()), None, 7)
    }

    #[test]
    fn hooks_round_trip_through_registry() {
        let (mut heap, mut acc, mut state) = ctx_parts();
        let mut reg = HookRegistry::new();
        reg.register_action("bump", |ctx| {
            *ctx.state::<u32>() += 1;
            HookAction::default()
        });
        reg.register_cond("is_big", |ctx| *ctx.state::<u32>() > 5);
        reg.register_size("sz", |ctx| *ctx.state::<u32>() * 2);
        reg.register_count("n", |_| 3);

        let mut ctx = HookCtx {
            heap: &mut heap,
            thread: ThreadId::new(0),
            acc: &mut acc,
            raw_state: &mut state,
            now: SimTime::ZERO,
        };
        reg.run_action("bump", &mut ctx).unwrap();
        assert!(reg.eval_cond("is_big", &mut ctx).unwrap());
        assert_eq!(reg.eval_size("sz", &mut ctx).unwrap(), 16);
        assert_eq!(reg.eval_count("n", &mut ctx).unwrap(), 3);
        assert_eq!(state, 8);
    }

    #[test]
    fn unknown_hooks_error() {
        let (mut heap, mut acc, mut state) = ctx_parts();
        let mut reg = HookRegistry::new();
        let mut ctx = HookCtx {
            heap: &mut heap,
            thread: ThreadId::new(0),
            acc: &mut acc,
            raw_state: &mut state,
            now: SimTime::ZERO,
        };
        assert!(matches!(
            reg.run_action("missing", &mut ctx),
            Err(RuntimeError::UnknownHook { .. })
        ));
        assert!(reg.eval_cond("missing", &mut ctx).is_err());
        assert!(reg.eval_size("missing", &mut ctx).is_err());
        assert!(reg.eval_count("missing", &mut ctx).is_err());
    }

    #[test]
    fn hooks_can_manipulate_the_heap_and_acc() {
        let (mut heap, mut acc, mut state) = ctx_parts();
        let class = heap.classes_mut().intern("T");
        let obj = heap
            .allocate(class, 64, polm2_heap::SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        let _ = acc;
        acc = Some(obj);
        let mut reg = HookRegistry::new();
        reg.register_action("park", |ctx| {
            let obj = ctx.acc.expect("acc set");
            let slot = ctx.heap.roots_mut().create_slot("parked");
            ctx.heap.roots_mut().push(slot, obj);
            *ctx.acc = None;
            HookAction::default()
        });
        let mut ctx = HookCtx {
            heap: &mut heap,
            thread: ThreadId::new(0),
            acc: &mut acc,
            raw_state: &mut state,
            now: SimTime::ZERO,
        };
        reg.run_action("park", &mut ctx).unwrap();
        assert!(acc.is_none());
        assert_eq!(heap.roots().root_count(), 1);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn wrong_state_type_panics() {
        let (mut heap, mut acc, mut state) = ctx_parts();
        let mut ctx = HookCtx {
            heap: &mut heap,
            thread: ThreadId::new(0),
            acc: &mut acc,
            raw_state: &mut state,
            now: SimTime::ZERO,
        };
        let _: &mut String = ctx.state::<String>();
    }
}
