//! End-to-end interpreter tests: programs with calls, branches, loops,
//! hooks, agents, and collections.

use polm2_gc::{GcConfig, Ng2cCollector};
use polm2_heap::ObjectId;
use polm2_metrics::SimDuration;
use polm2_runtime::{
    ClassDef, ClassTransformer, CodeLoc, CountSpec, HookAction, HookRegistry, Instr, Jvm,
    MethodDef, Program, RuntimeConfig, RuntimeError, SizeSpec,
};

/// Workload state for these tests.
#[derive(Debug, Default)]
struct TestState {
    inserts: u64,
    flag: bool,
}

fn kv_program() -> Program {
    // Store.put -> Cell.create (alloc) -> insert hook roots the cell.
    // Store.scratch allocates garbage.
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("Store")
            .with_method(
                MethodDef::new("put")
                    .push(Instr::call("Cell", "create", 10))
                    .push(Instr::native("insert", 11)),
            )
            .with_method(MethodDef::new("scratch").push(Instr::alloc(
                "Temp",
                SizeSpec::Fixed(512),
                20,
            )))
            .with_method(MethodDef::new("mixed").push(Instr::Branch {
                cond: "flag".into(),
                then_block: vec![Instr::call("Store", "put", 31)],
                else_block: vec![Instr::call("Store", "scratch", 33)],
                line: 30,
            }))
            .with_method(MethodDef::new("batch").push(Instr::Repeat {
                count: CountSpec::Fixed(10),
                body: vec![Instr::call("Store", "scratch", 41)],
                line: 40,
            })),
    );
    p.add_class(
        ClassDef::new("Cell").with_method(MethodDef::new("create").push(Instr::alloc(
            "Cell",
            SizeSpec::Hook("cell_size".into()),
            5,
        ))),
    );
    p
}

fn hooks() -> HookRegistry {
    let mut h = HookRegistry::new();
    h.register_action("insert", |ctx| {
        let obj = ctx.acc.expect("cell allocated before insert");
        let slot = ctx.heap.roots_mut().create_slot("store");
        ctx.heap.roots_mut().push(slot, obj);
        ctx.state::<TestState>().inserts += 1;
        HookAction {
            cost: Some(SimDuration::from_micros(2)),
        }
    });
    h.register_cond("flag", |ctx| ctx.state::<TestState>().flag);
    h.register_size("cell_size", |_| 256);
    h
}

fn jvm() -> Jvm {
    Jvm::builder(RuntimeConfig::small())
        .hooks(hooks())
        .state(Box::new(TestState::default()))
        .build(kv_program())
        .expect("program loads")
}

#[test]
fn put_roots_object_and_scratch_dies() {
    let mut vm = jvm();
    let t = vm.spawn_thread();
    vm.invoke(t, "Store", "put").unwrap();
    vm.invoke(t, "Store", "scratch").unwrap();
    assert_eq!(vm.state_mut::<TestState>().inserts, 1);
    assert_eq!(vm.heap().stats().allocated_objects, 2);
    vm.force_collect().unwrap();
    // The inserted cell survives; the scratch buffer does not.
    assert_eq!(vm.heap().object_count(), 1);
}

#[test]
fn branch_follows_condition_hook() {
    let mut vm = jvm();
    let t = vm.spawn_thread();
    vm.state_mut::<TestState>().flag = true;
    vm.invoke(t, "Store", "mixed").unwrap();
    assert_eq!(vm.state_mut::<TestState>().inserts, 1);
    vm.state_mut::<TestState>().flag = false;
    vm.invoke(t, "Store", "mixed").unwrap();
    assert_eq!(
        vm.state_mut::<TestState>().inserts,
        1,
        "else branch allocates scratch only"
    );
    assert_eq!(vm.heap().stats().allocated_objects, 2);
}

#[test]
fn repeat_runs_body_n_times_and_scopes_locals() {
    let mut vm = jvm();
    let t = vm.spawn_thread();
    vm.invoke(t, "Store", "batch").unwrap();
    assert_eq!(vm.heap().stats().allocated_objects, 10);
    // Loop locals must not accumulate as stack roots: after the invoke
    // everything is garbage.
    vm.force_collect().unwrap();
    assert_eq!(vm.heap().object_count(), 0);
}

#[test]
fn clock_advances_with_work() {
    let mut vm = jvm();
    let t = vm.spawn_thread();
    let before = vm.now();
    for _ in 0..100 {
        vm.invoke(t, "Store", "put").unwrap();
    }
    assert!(vm.now() > before, "interpretation and hooks must cost time");
    assert!(vm.clock().mutator_time() > SimDuration::ZERO);
}

#[test]
fn gc_cycles_are_logged_under_churn() {
    let mut vm = jvm();
    let t = vm.spawn_thread();
    for _ in 0..5_000 {
        vm.invoke(t, "Store", "scratch").unwrap();
    }
    assert!(
        vm.gc_log().cycle_count() > 0,
        "churn must trigger collections"
    );
    assert!(vm.clock().pause_time() > SimDuration::ZERO);
    vm.heap().check_invariants();
}

#[test]
fn in_flight_objects_survive_collection_via_stack_roots() {
    // Cell.create allocates, then Store.put's frame holds the cell while
    // `insert` runs; a collection in between must not reclaim it. Force the
    // situation with a tiny young generation via mass allocation in a loop
    // of puts.
    let mut vm = jvm();
    let t = vm.spawn_thread();
    for _ in 0..3_000 {
        vm.invoke(t, "Store", "put").unwrap();
    }
    let inserts = vm.state_mut::<TestState>().inserts;
    assert_eq!(inserts, 3_000);
    vm.force_collect().unwrap();
    assert_eq!(
        vm.heap().object_count() as u64,
        inserts,
        "all inserted cells live"
    );
}

#[test]
fn recorder_style_transformer_sees_allocation_events() {
    struct RecorderAgent;
    impl ClassTransformer for RecorderAgent {
        fn name(&self) -> &str {
            "recorder"
        }
        fn transform(&mut self, class: &mut ClassDef) {
            for method in &mut class.methods {
                let mut body = Vec::new();
                for instr in method.body.drain(..) {
                    let line = instr.line();
                    let is_alloc = matches!(instr, Instr::Alloc { .. });
                    body.push(instr);
                    if is_alloc {
                        body.push(Instr::RecordAlloc { line });
                    }
                }
                method.body = body;
            }
        }
    }
    let mut vm = Jvm::builder(RuntimeConfig::small())
        .hooks(hooks())
        .state(Box::new(TestState::default()))
        .transformer(Box::new(RecorderAgent))
        .build(kv_program())
        .unwrap();
    let t = vm.spawn_thread();
    vm.invoke(t, "Store", "put").unwrap();
    vm.invoke(t, "Store", "scratch").unwrap();
    let events = vm.drain_alloc_events();
    assert_eq!(events.len(), 2);
    // The put's trace is Store.put -> Cell.create with the alloc line last.
    let trace: Vec<CodeLoc> = events[0]
        .trace
        .iter()
        .map(|&f| vm.program().code_loc(f))
        .collect();
    assert_eq!(trace.len(), 2);
    assert_eq!(trace[0], CodeLoc::new("Store", "put", 10));
    assert_eq!(trace[1], CodeLoc::new("Cell", "create", 5));
    // The event's hash matches the live object's header.
    let rec = vm.heap().object(events[0].object).unwrap();
    assert_eq!(rec.identity_hash(), events[0].hash);
    // Draining empties the buffer.
    assert!(vm.drain_alloc_events().is_empty());
}

#[test]
fn set_gen_instructions_drive_ng2c_pretenuring() {
    // Build a program where the allocation site is @Gen-annotated and the
    // caller sets the target generation — what the Instrumenter emits.
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("App")
            .with_method(
                MethodDef::new("main")
                    .push(Instr::SetGen {
                        gen: polm2_heap::GenId::new(2),
                        line: 1,
                    })
                    .push(Instr::call("App", "make", 2))
                    .push(Instr::RestoreGen { line: 3 }),
            )
            .with_method(MethodDef::new("make").push(Instr::Alloc {
                class_name: "Block".into(),
                size: SizeSpec::Fixed(128),
                line: 9,
                pretenure: true,
            })),
    );
    let mut vm = Jvm::builder(RuntimeConfig::small())
        .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
        .build(p)
        .unwrap();
    let gen = vm.new_generation();
    assert_eq!(gen, polm2_heap::GenId::new(2));
    let t = vm.spawn_thread();
    vm.invoke(t, "App", "main").unwrap();
    let obj = ObjectId::new(0);
    let rec = vm.heap().object(obj).expect("allocated");
    assert_eq!(
        rec.allocated_gen(),
        gen,
        "@Gen allocation must land in the target generation"
    );
}

#[test]
fn unbalanced_restore_gen_errors() {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("App")
            .with_method(MethodDef::new("main").push(Instr::RestoreGen { line: 1 })),
    );
    let mut vm = Jvm::builder(RuntimeConfig::small()).build(p).unwrap();
    let t = vm.spawn_thread();
    assert_eq!(
        vm.invoke(t, "App", "main"),
        Err(RuntimeError::UnbalancedRestoreGen)
    );
}

#[test]
fn recursion_hits_stack_limit() {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("App")
            .with_method(MethodDef::new("spin").push(Instr::call("App", "spin", 1))),
    );
    let mut vm = Jvm::builder(RuntimeConfig::small()).build(p).unwrap();
    let t = vm.spawn_thread();
    assert!(matches!(
        vm.invoke(t, "App", "spin"),
        Err(RuntimeError::StackOverflow { .. })
    ));
}

#[test]
fn unknown_entry_points_error() {
    let mut vm = jvm();
    let t = vm.spawn_thread();
    assert!(matches!(
        vm.invoke(t, "Nope", "x"),
        Err(RuntimeError::UnknownClass { .. })
    ));
    assert!(matches!(
        vm.invoke(t, "Store", "nope"),
        Err(RuntimeError::UnknownMethod { .. })
    ));
}

#[test]
fn hook_cost_advances_clock() {
    let mut vm = jvm();
    let t = vm.spawn_thread();
    let before = vm.clock().mutator_time();
    vm.invoke(t, "Store", "put").unwrap(); // insert hook costs 2us
    let spent = vm.clock().mutator_time() - before;
    assert!(spent >= SimDuration::from_micros(2));
}
