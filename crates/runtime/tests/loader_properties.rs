//! Property-based tests for the loader: arbitrary well-formed programs load,
//! resolve, and count allocation sites consistently — whatever the agents do
//! to them first.

use proptest::prelude::*;

use polm2_heap::{Heap, HeapConfig};
use polm2_runtime::{ClassDef, Instr, Loader, MethodDef, Program, SizeSpec};

/// A random instruction tree of bounded depth, with calls restricted to the
/// fixed method `Lib.helper` so resolution always succeeds.
fn arb_instr(depth: u32) -> BoxedStrategy<Instr> {
    let leaf = prop_oneof![
        ("[A-Z][a-z]{1,6}", 1u32..500).prop_map(|(class, line)| Instr::alloc(
            class,
            SizeSpec::Fixed(16),
            line
        )),
        (1u32..500).prop_map(|line| Instr::call("Lib", "helper", line)),
        (1u32..500).prop_map(|line| Instr::native("noop", line)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            4 => leaf,
            1 => (
                proptest::collection::vec(arb_instr(depth - 1), 0..3),
                proptest::collection::vec(arb_instr(depth - 1), 0..3),
                1u32..500,
            )
                .prop_map(|(then_block, else_block, line)| Instr::Branch {
                    cond: "flag".into(),
                    then_block,
                    else_block,
                    line,
                }),
            1 => (proptest::collection::vec(arb_instr(depth - 1), 0..3), 1u32..500)
                .prop_map(|(body, line)| Instr::Repeat {
                    count: polm2_runtime::CountSpec::Fixed(2),
                    body,
                    line,
                }),
        ]
        .boxed()
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(proptest::collection::vec(arb_instr(2), 1..8), 1..4).prop_map(
        |methods| {
            let mut program = Program::new();
            program.add_class(ClassDef::new("Lib").with_method(
                MethodDef::new("helper").push(Instr::alloc("H", SizeSpec::Fixed(8), 1)),
            ));
            let mut class = ClassDef::new("App");
            for (i, body) in methods.into_iter().enumerate() {
                let mut m = MethodDef::new(format!("m{i}"));
                m.body = body;
                class = class.with_method(m);
            }
            program.add_class(class);
            program
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loading never fails for well-formed programs, and the site table has
    /// one entry per distinct allocation location.
    #[test]
    fn well_formed_programs_load(program in arb_program()) {
        let mut heap = Heap::new(HeapConfig::small());
        let mut locations = std::collections::HashSet::new();
        program.visit_instrs(|class, method, instr| {
            if matches!(instr, Instr::Alloc { .. }) {
                locations.insert((class.name.clone(), method.name.clone(), instr.line()));
            }
        });
        let loaded = Loader::load(program, &mut [], &mut heap).expect("loads");
        prop_assert_eq!(loaded.sites().len(), locations.len());
        prop_assert!(loaded.resolve("Lib", "helper").is_ok());
        prop_assert!(loaded.resolve("App", "m0").is_ok());
        prop_assert!(loaded.resolve("App", "zzz").is_err());
    }

    /// Loading is idempotent in structure: loading the same program twice
    /// produces identical site tables.
    #[test]
    fn loading_is_deterministic(program in arb_program()) {
        let mut heap_a = Heap::new(HeapConfig::small());
        let mut heap_b = Heap::new(HeapConfig::small());
        let a = Loader::load(program.clone(), &mut [], &mut heap_a).expect("loads");
        let b = Loader::load(program, &mut [], &mut heap_b).expect("loads");
        prop_assert_eq!(a.sites().len(), b.sites().len());
        for (sa, sb) in a.sites().iter().zip(b.sites().iter()) {
            prop_assert_eq!(sa, sb);
        }
    }
}
