//! Failure-injection tests: the runtime must surface hook and memory
//! failures as errors (not panics or corruption) and remain usable where
//! that is promised.

use polm2_runtime::{
    ClassDef, HookAction, HookRegistry, Instr, Jvm, MethodDef, Program, RuntimeConfig,
    RuntimeError, SizeSpec,
};

fn program_with(hook_names: &[(&str, u32)]) -> Program {
    let mut method = MethodDef::new("main");
    for (hook, line) in hook_names {
        method = method.push(Instr::native(*hook, *line));
    }
    let mut p = Program::new();
    p.add_class(ClassDef::new("App").with_method(method));
    p
}

#[test]
fn missing_hook_fails_cleanly_and_jvm_survives() {
    let mut p = program_with(&[("exists", 1), ("missing", 2)]);
    p.add_class(
        ClassDef::new("Other").with_method(MethodDef::new("ok").push(Instr::alloc(
            "X",
            SizeSpec::Fixed(16),
            1,
        ))),
    );
    let mut hooks = HookRegistry::new();
    hooks.register_action("exists", |_| HookAction::default());
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .hooks(hooks)
        .build(p)
        .unwrap();
    let t = jvm.spawn_thread();
    let err = jvm.invoke(t, "App", "main").unwrap_err();
    assert_eq!(
        err,
        RuntimeError::UnknownHook {
            hook: "missing".into()
        }
    );
    // The failed invocation unwound its frames; the runtime keeps working.
    assert_eq!(jvm.threads()[t.raw() as usize].depth(), 0);
    jvm.invoke(t, "Other", "ok").unwrap();
    assert_eq!(jvm.heap().stats().allocated_objects, 1);
    jvm.heap().check_invariants();
}

#[test]
fn heap_exhaustion_surfaces_as_out_of_memory() {
    // Root everything: the collector eventually cannot free a single byte.
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("App").with_method(
            MethodDef::new("hoard")
                .push(Instr::alloc("Blob", SizeSpec::Fixed(65_536), 1))
                .push(Instr::native("root_it", 2)),
        ),
    );
    let mut hooks = HookRegistry::new();
    hooks.register_action("root_it", |ctx| {
        let obj = ctx.acc.expect("blob allocated");
        let slot = ctx.heap.roots_mut().create_slot("hoard");
        ctx.heap.roots_mut().push(slot, obj);
        HookAction::default()
    });
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .hooks(hooks)
        .build(p)
        .unwrap();
    let t = jvm.spawn_thread();
    let mut saw_oom = false;
    for _ in 0..200 {
        match jvm.invoke(t, "App", "hoard") {
            Ok(()) => {}
            Err(RuntimeError::Gc(polm2_gc::GcError::OutOfMemory { .. })) => {
                saw_oom = true;
                break;
            }
            Err(other) => panic!("expected OOM, got {other}"),
        }
    }
    assert!(saw_oom, "a 4 MiB heap cannot hoard forever");
}

#[test]
fn panicking_size_hook_is_contained_by_the_test_harness() {
    // A size hook returning zero is legal (zero-sized objects occupy a
    // header byte? no — zero is allowed by the heap: it consumes no space
    // but still exists). Verify the runtime tolerates degenerate sizes.
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("App").with_method(MethodDef::new("tiny").push(Instr::alloc(
            "Z",
            SizeSpec::Hook("zero".into()),
            1,
        ))),
    );
    let mut hooks = HookRegistry::new();
    hooks.register_size("zero", |_| 0);
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .hooks(hooks)
        .build(p)
        .unwrap();
    let t = jvm.spawn_thread();
    jvm.invoke(t, "App", "tiny").unwrap();
    assert_eq!(jvm.heap().stats().allocated_objects, 1);
    assert_eq!(jvm.heap().stats().allocated_bytes, 0);
    jvm.heap().check_invariants();
}

#[test]
fn oversized_allocation_is_rejected_not_looped() {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("App").with_method(MethodDef::new("huge").push(Instr::alloc(
            "Mega",
            SizeSpec::Fixed(10 << 20),
            1,
        ))),
    );
    let mut jvm = Jvm::builder(RuntimeConfig::small()).build(p).unwrap();
    let t = jvm.spawn_thread();
    let err = jvm.invoke(t, "App", "huge").unwrap_err();
    assert!(
        matches!(
            err,
            RuntimeError::Gc(polm2_gc::GcError::Heap(
                polm2_heap::HeapError::ObjectTooLarge { .. }
            ))
        ),
        "got {err}"
    );
}
