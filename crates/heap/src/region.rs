//! Regions, addresses, and the kernel-style page table.

use crate::{ObjectId, PageId, RegionId, SpaceId};

/// The address of an object: a region and a byte offset inside it.
///
/// Relocation (promotion, compaction) rewrites an object's `Addr`; the
/// [`ObjectId`] stays stable, like the identity hash in a JVM header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Region containing the object.
    pub region: RegionId,
    /// Byte offset of the object's first byte within the region.
    pub offset: u32,
}

/// One fixed-size region of the heap pool.
///
/// A region is either free or assigned to exactly one space (generation).
/// Allocation bumps `cursor`; the GC maintains `live_bytes` during marking so
/// compaction policies and the Dumper's no-need walk can reason about
/// occupancy without re-tracing.
#[derive(Debug, Clone)]
pub struct Region {
    id: RegionId,
    first_page: PageId,
    /// Owning space, or `None` while in the free pool.
    space: Option<SpaceId>,
    /// Bump-allocation cursor (bytes used from the start of the region).
    cursor: u32,
    /// Bytes of live objects, as of the most recent mark.
    live_bytes: u32,
    /// Objects allocated into this region. Dead entries are purged when the
    /// owning collector sweeps.
    objects: Vec<ObjectId>,
}

impl Region {
    pub(crate) fn new(id: RegionId, first_page: PageId) -> Self {
        Region {
            id,
            first_page,
            space: None,
            cursor: 0,
            live_bytes: 0,
            objects: Vec::new(),
        }
    }

    /// This region's id.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The global id of the region's first page.
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// The owning space, or `None` if the region is in the free pool.
    pub fn space(&self) -> Option<SpaceId> {
        self.space
    }

    /// Bytes consumed by the bump allocator.
    pub fn used_bytes(&self) -> u32 {
        self.cursor
    }

    /// Bytes of live objects as of the last mark.
    pub fn live_bytes(&self) -> u32 {
        self.live_bytes
    }

    /// Objects allocated into this region (may include dead ids between a
    /// mark and the owning collector's sweep).
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// Live fraction relative to allocated bytes (0.0 for an empty region).
    pub fn live_fraction(&self) -> f64 {
        if self.cursor == 0 {
            0.0
        } else {
            self.live_bytes as f64 / self.cursor as f64
        }
    }

    pub(crate) fn assign(&mut self, space: SpaceId) {
        debug_assert!(self.space.is_none(), "region already assigned");
        self.space = Some(space);
        self.cursor = 0;
        self.live_bytes = 0;
        self.objects.clear();
    }

    pub(crate) fn release(&mut self) {
        self.space = None;
        self.cursor = 0;
        self.live_bytes = 0;
        self.objects.clear();
    }

    /// Attempts to bump-allocate `size` bytes; returns the offset on success.
    pub(crate) fn try_bump(&mut self, size: u32, capacity: u32) -> Option<u32> {
        if self.cursor.checked_add(size)? <= capacity {
            let offset = self.cursor;
            self.cursor += size;
            Some(offset)
        } else {
            None
        }
    }

    pub(crate) fn push_object(&mut self, obj: ObjectId) {
        self.objects.push(obj);
    }

    pub(crate) fn set_live_bytes(&mut self, bytes: u32) {
        self.live_bytes = bytes;
    }

    pub(crate) fn retain_objects(&mut self, mut keep: impl FnMut(ObjectId) -> bool) {
        self.objects.retain(|&o| keep(o));
    }
}

/// Per-page flags mirroring the two kernel bits CRIU relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags {
    /// Set when the page is written; cleared by the Dumper after each
    /// snapshot (the kernel soft-dirty bit).
    pub dirty: bool,
    /// Set by the Recorder's pre-snapshot heap walk (`madvise`) for pages
    /// containing no live object; the Dumper skips such pages.
    pub no_need: bool,
}

/// The simulated kernel page table: dirty and no-need bits for every heap
/// page.
///
/// # Examples
///
/// ```
/// use polm2_heap::{Addr, PageTable, RegionId};
///
/// let mut pt = PageTable::new(64, 16, 4096);
/// let addr = Addr { region: RegionId::new(1), offset: 5000 };
/// pt.mark_dirty_range(addr, 8192);
/// // offset 5000..13192 touches pages 1..=3 of region 1 => global 17..=19.
/// assert!(pt.flags_of(17).dirty);
/// assert!(pt.flags_of(19).dirty);
/// assert!(!pt.flags_of(16).dirty);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    /// Bit-packed dirty flags, one bit per page, 32 pages per word.
    dirty: Vec<u32>,
    /// Bit-packed no-need flags, same layout as `dirty`.
    no_need: Vec<u32>,
    page_count: u32,
    pages_per_region: u32,
    page_bytes: u32,
}

/// Atomic view over one of the page-flag bitmaps, handed to evacuation
/// workers so flag updates (dirty-OR, no-need-ANDNOT) can race safely.
/// All updates exposed through it are commutative, so the final word values
/// are independent of worker interleaving.
pub(crate) struct AtomicPageBits<'a> {
    words: &'a [std::sync::atomic::AtomicU32],
}

impl AtomicPageBits<'_> {
    /// ORs the page's bit into the bitmap.
    pub(crate) fn set(&self, page: u32) {
        let (word, bit) = (page as usize / 32, page % 32);
        self.words[word].fetch_or(1 << bit, std::sync::atomic::Ordering::Relaxed);
    }

    /// ANDNOTs the page's bit out of the bitmap.
    pub(crate) fn clear(&self, page: u32) {
        let (word, bit) = (page as usize / 32, page % 32);
        self.words[word].fetch_and(!(1 << bit), std::sync::atomic::Ordering::Relaxed);
    }
}

/// Reinterprets a `&mut [u32]` as a shared slice of `AtomicU32`.
///
/// Sound because `AtomicU32` has the same size and alignment as `u32` on
/// every supported platform, every bit pattern is valid for both, and the
/// exclusive borrow guarantees no non-atomic access can overlap the
/// atomic view's lifetime.
pub(crate) fn as_atomic_words(words: &mut [u32]) -> &[std::sync::atomic::AtomicU32] {
    // SAFETY: same layout, every bit pattern valid, and the exclusive borrow
    // rules out overlapping non-atomic access (see the doc comment above).
    unsafe { &*(words as *mut [u32] as *const [std::sync::atomic::AtomicU32]) }
}

fn bit_words(page_count: u32) -> Vec<u32> {
    vec![0u32; (page_count as usize).div_ceil(32)]
}

impl PageTable {
    /// Creates a page table for `page_count` pages with the given geometry.
    pub fn new(page_count: u32, pages_per_region: u32, page_bytes: u32) -> Self {
        PageTable {
            dirty: bit_words(page_count),
            no_need: bit_words(page_count),
            page_count,
            pages_per_region,
            page_bytes,
        }
    }

    /// Number of pages tracked.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    fn bit_get(words: &[u32], page: u32) -> bool {
        words[page as usize / 32] >> (page % 32) & 1 == 1
    }

    fn bit_put(words: &mut [u32], page: u32, value: bool) {
        let (word, bit) = (page as usize / 32, page % 32);
        if value {
            words[word] |= 1 << bit;
        } else {
            words[word] &= !(1 << bit);
        }
    }

    /// The flags of a page by global index.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn flags_of(&self, page: u32) -> PageFlags {
        assert!(page < self.page_count, "page {page} out of range");
        PageFlags {
            dirty: Self::bit_get(&self.dirty, page),
            no_need: Self::bit_get(&self.no_need, page),
        }
    }

    /// The global page range `[first, last]` covered by `size` bytes at
    /// `addr`.
    pub fn pages_of(&self, addr: Addr, size: u32) -> (u32, u32) {
        let base = addr.region.raw() * self.pages_per_region;
        let first = base + addr.offset / self.page_bytes;
        let last_byte = addr.offset + size.saturating_sub(1);
        let last = base + last_byte / self.page_bytes;
        (first, last)
    }

    /// Marks every page covered by `size` bytes at `addr` dirty (a mutator or
    /// collector wrote the bytes).
    pub fn mark_dirty_range(&mut self, addr: Addr, size: u32) {
        let (first, last) = self.pages_of(addr, size);
        for p in first..=last {
            Self::bit_put(&mut self.dirty, p, true);
        }
    }

    /// Clears every dirty bit (CRIU does this when completing a snapshot).
    pub fn clear_dirty(&mut self) {
        self.dirty.fill(0);
    }

    /// Sets or clears the no-need bit of one page.
    pub fn set_no_need(&mut self, page: u32, no_need: bool) {
        assert!(page < self.page_count, "page {page} out of range");
        Self::bit_put(&mut self.no_need, page, no_need);
    }

    /// Clears the no-need bit of every page covered by `size` bytes at
    /// `addr` (the bytes are in use again).
    pub fn clear_no_need_range(&mut self, addr: Addr, size: u32) {
        let (first, last) = self.pages_of(addr, size);
        for p in first..=last {
            Self::bit_put(&mut self.no_need, p, false);
        }
    }

    /// Iterates over all page flags in global page order.
    pub fn iter(&self) -> impl Iterator<Item = PageFlags> + '_ {
        (0..self.page_count).map(|p| PageFlags {
            dirty: Self::bit_get(&self.dirty, p),
            no_need: Self::bit_get(&self.no_need, p),
        })
    }

    /// Number of pages currently marked dirty.
    pub fn dirty_count(&self) -> u32 {
        self.dirty.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of pages currently marked no-need.
    pub fn no_need_count(&self) -> u32 {
        self.no_need.iter().map(|w| w.count_ones()).sum()
    }

    /// Atomic views over the dirty and no-need bitmaps, in that order, for
    /// racing commutative updates from evacuation workers.
    pub(crate) fn atomic_views(&mut self) -> (AtomicPageBits<'_>, AtomicPageBits<'_>) {
        let dirty = AtomicPageBits {
            words: as_atomic_words(&mut self.dirty),
        };
        let no_need = AtomicPageBits {
            words: as_atomic_words(&mut self.no_need),
        };
        (dirty, no_need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(region: u32, offset: u32) -> Addr {
        Addr {
            region: RegionId::new(region),
            offset,
        }
    }

    #[test]
    fn bump_allocation_respects_capacity() {
        let mut r = Region::new(RegionId::new(0), PageId::new(0));
        r.assign(SpaceId::new(0));
        assert_eq!(r.try_bump(100, 256), Some(0));
        assert_eq!(r.try_bump(100, 256), Some(100));
        assert_eq!(r.try_bump(100, 256), None);
        assert_eq!(r.used_bytes(), 200);
    }

    #[test]
    fn release_resets_region() {
        let mut r = Region::new(RegionId::new(3), PageId::new(48));
        r.assign(SpaceId::new(1));
        r.try_bump(64, 1024).unwrap();
        r.push_object(ObjectId::new(1));
        r.set_live_bytes(64);
        r.release();
        assert_eq!(r.space(), None);
        assert_eq!(r.used_bytes(), 0);
        assert_eq!(r.live_bytes(), 0);
        assert!(r.objects().is_empty());
    }

    #[test]
    fn live_fraction() {
        let mut r = Region::new(RegionId::new(0), PageId::new(0));
        r.assign(SpaceId::new(0));
        assert_eq!(r.live_fraction(), 0.0);
        r.try_bump(200, 1024).unwrap();
        r.set_live_bytes(50);
        assert_eq!(r.live_fraction(), 0.25);
    }

    #[test]
    fn page_range_math() {
        let pt = PageTable::new(64, 16, 4096);
        // Object spanning exactly one page.
        assert_eq!(pt.pages_of(addr(0, 0), 4096), (0, 0));
        // Object crossing a page boundary.
        assert_eq!(pt.pages_of(addr(0, 4000), 200), (0, 1));
        // Region 2 starts at page 32.
        assert_eq!(pt.pages_of(addr(2, 0), 1), (32, 32));
    }

    #[test]
    fn dirty_bits_set_and_clear() {
        let mut pt = PageTable::new(64, 16, 4096);
        pt.mark_dirty_range(addr(1, 0), 4096 * 3);
        assert_eq!(pt.dirty_count(), 3);
        pt.clear_dirty();
        assert_eq!(pt.dirty_count(), 0);
    }

    #[test]
    fn no_need_bits() {
        let mut pt = PageTable::new(16, 16, 4096);
        pt.set_no_need(5, true);
        pt.set_no_need(6, true);
        assert_eq!(pt.no_need_count(), 2);
        pt.clear_no_need_range(addr(0, 5 * 4096), 4096 * 2);
        assert_eq!(pt.no_need_count(), 0);
    }

    #[test]
    fn zero_sized_write_touches_one_page() {
        let pt = PageTable::new(16, 16, 4096);
        assert_eq!(pt.pages_of(addr(0, 100), 0), (0, 0));
    }

    #[test]
    fn bit_packing_crosses_word_boundaries() {
        let mut pt = PageTable::new(70, 16, 4096);
        pt.set_no_need(31, true);
        pt.set_no_need(32, true);
        pt.set_no_need(69, true);
        assert_eq!(pt.no_need_count(), 3);
        assert!(pt.flags_of(32).no_need);
        assert!(!pt.flags_of(33).no_need);
        assert_eq!(pt.iter().filter(|f| f.no_need).count(), 3);
    }

    #[test]
    fn atomic_views_match_serial_updates() {
        let mut pt = PageTable::new(70, 16, 4096);
        pt.set_no_need(32, true);
        {
            let (dirty, no_need) = pt.atomic_views();
            dirty.set(33);
            dirty.set(0);
            no_need.clear(32);
        }
        assert!(pt.flags_of(33).dirty);
        assert!(pt.flags_of(0).dirty);
        assert_eq!(pt.dirty_count(), 2);
        assert_eq!(pt.no_need_count(), 0);
    }
}
