//! Interned class names.

use std::collections::HashMap;

use crate::ClassId;

/// Metadata for one interned class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// Fully-qualified class name, e.g. `"cassandra/Memtable"`.
    pub name: String,
}

/// Intern table mapping class names to [`ClassId`]s.
///
/// # Examples
///
/// ```
/// use polm2_heap::ClassRegistry;
///
/// let mut reg = ClassRegistry::new();
/// let a = reg.intern("Memtable");
/// let b = reg.intern("Memtable");
/// assert_eq!(a, b);
/// assert_eq!(reg.name(a), Some("Memtable"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassRegistry {
    classes: Vec<ClassInfo>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ClassRegistry::default()
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> ClassId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ClassId::new(self.classes.len() as u32);
        self.classes.push(ClassInfo {
            name: name.to_string(),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a class by name without interning.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// The name for `id`, if it exists.
    pub fn name(&self, id: ClassId) -> Option<&str> {
        self.classes.get(id.index()).map(|c| c.name.as_str())
    }

    /// Number of interned classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no class has been interned.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over `(id, info)` pairs in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId::new(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut reg = ClassRegistry::new();
        let a = reg.intern("A");
        let b = reg.intern("B");
        assert_ne!(a, b);
        assert_eq!(reg.intern("A"), a);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut reg = ClassRegistry::new();
        assert_eq!(reg.lookup("missing"), None);
        let id = reg.intern("present");
        assert_eq!(reg.lookup("present"), Some(id));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn iteration_follows_intern_order() {
        let mut reg = ClassRegistry::new();
        reg.intern("first");
        reg.intern("second");
        let names: Vec<&str> = reg.iter().map(|(_, c)| c.name.as_str()).collect();
        assert_eq!(names, ["first", "second"]);
    }

    #[test]
    fn name_of_unknown_id_is_none() {
        let reg = ClassRegistry::new();
        assert_eq!(reg.name(ClassId::new(9)), None);
    }
}
