//! Pluggable memory backends: simulated addresses vs real allocation.
//!
//! The heap's *logical* layout — region assignment order, bump cursors, page
//! ranges, object addresses — is computed by [`Heap`](crate::Heap) itself
//! and is the single source of truth for every profile, snapshot, and
//! GcWork ledger. A [`HeapBackend`] only decides whether those logical
//! addresses are *backed by real memory*:
//!
//! - [`SimBackend`] is the historical behavior: pure address arithmetic,
//!   every hook a no-op. Zero cost, zero memory.
//! - [`RealBackend`] maps each assigned region to a page-aligned block of
//!   real memory — young regions from a pointer-bump arena
//!   ([`BumpArena`]), tenured regions from a size-class segregated free
//!   list ([`FreeList`]) — establishes each object's bytes on allocation,
//!   and `memcpy`s payloads on relocate/evacuate.
//!
//! The allocation hot path is TLAB-style: one cached write window per
//! generation ([`TlabWindow`]) serves consecutive `write_object` calls
//! with a single bounds compare and one header store, refilling (and
//! counting the refill) only when an allocation falls off the window.
//! Both allocators hand their blocks out pre-zeroed — zeroing happens in
//! bulk at prefault and when a released region's backing is recycled or
//! freed inside a collection, HotSpot's `ZeroTLAB` discipline — so an
//! object's payload content is defined (zeros) without the allocation
//! path streaming payload-sized stores through the host's write-bandwidth
//! ceiling; only the evacuation copy phase moves payload bytes. The configured heap is committed and pre-faulted at
//! construction (the `-XX:+AlwaysPreTouch` analogue), so the store never
//! eats a first-touch page fault. The tenured free list defers neighbor coalescing to one
//! address-order pass per GC cycle ([`HeapBackend::gc_cycle_finished`]),
//! keeping `free` O(1). The evacuation copy phase reports its own timing
//! ([`HeapBackend::note_copy_phase`]) so bandwidth figures measure the
//! copier, not the whole collection.
//!
//! Because the physical offset of an object inside its region's backing
//! equals its logical [`Addr::offset`], the two backends produce
//! bit-identical ObjectIds, page bits, snapshot columns, and GcWork at any
//! worker count: the equality invariant perfgate's heap arm hard-gates.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::bump::{BumpArena, BumpBlock};
use crate::config::HeapConfig;
use crate::free_list::{FreeBlock, FreeList};
use crate::ids::{IdentityHash, RegionId};
use crate::region::Addr;
use crate::tlab::TlabWindow;

/// Object header written at the start of every real-memory payload of at
/// least this many bytes: `(identity_hash as u64) << 32 | size`, little
/// endian. Smaller objects carry no header (their whole payload is the
/// zeros the allocator handed out) and readers fall back to the object
/// table. Payload content past the header is backend-internal — zeros
/// until the object is evacuated, whatever the memcpy carried after —
/// and only the header is ever read back
/// ([`HeapBackend::read_header_hash`]).
pub const OBJECT_HEADER_BYTES: usize = 8;

/// Which memory backend a heap runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Pure address arithmetic (the historical default).
    #[default]
    Sim,
    /// Real page-aligned memory: bump-allocated young regions, free-list
    /// tenured regions, payloads written and memcpy'd.
    Real,
}

impl BackendKind {
    /// Parses a CLI value (`sim` or `real`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "real" => Some(BackendKind::Real),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Sim => "sim",
            BackendKind::Real => "real",
        })
    }
}

/// Byte counters a backend accumulates; the perfgate heap arm turns these
/// into alloc-bandwidth and copy/compact GB/s figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Object bytes established by `write_object` (allocation path).
    /// Payloads are pre-zeroed in bulk when the backing is recycled, so
    /// the store itself touches only the header line; the count is the
    /// object bytes made valid, not the bytes the store streamed.
    pub bytes_written: u64,
    /// Payload bytes memcpy'd by `copy_object` / the parallel copier.
    pub bytes_copied: u64,
    /// Wall-clock nanoseconds spent inside evacuation *copy phases* only
    /// (reported via [`HeapBackend::note_copy_phase`]); the denominator of
    /// a phase-accurate copy-bandwidth figure, as opposed to whole-pause
    /// wall clock.
    pub copy_phase_ns: u64,
    /// Critical-path payload bytes of the copy phases: the largest single
    /// worker shard of each phase, summed. Equals `bytes_copied` for a
    /// serial copier; the ratio `bytes_copied / copy_critical_bytes` is
    /// the copy phase's partition-balance speedup.
    pub copy_critical_bytes: u64,
    /// TLAB window refills on the allocation path (each covers many
    /// `write_object` calls when the windows are doing their job).
    pub tlab_refills: u64,
    /// Regions currently backed by real memory.
    pub regions_backed: u64,
    /// Total bytes obtained from the system allocator.
    pub footprint_bytes: u64,
}

/// Memory behavior behind the heap's logical address layout.
///
/// Implementations must never influence logical placement: the heap calls
/// these hooks *after* it has decided addresses, and equality of sim and
/// real outputs is a hard perfgate invariant.
pub trait HeapBackend: fmt::Debug + Send {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// A region was just assigned to a space; back it with memory if this
    /// backend uses any. `young` selects the bump arena over the tenured
    /// free list.
    fn ensure_region(&mut self, region: RegionId, young: bool);

    /// A region was released back to the free pool; its backing returns to
    /// the allocator it came from.
    fn release_region(&mut self, region: RegionId);

    /// An object was just allocated at `addr`: establish its bytes — write
    /// the header; the payload's defined content is the zeros the
    /// allocator handed the backing out with.
    fn write_object(&mut self, addr: Addr, size: u32, hash: IdentityHash);

    /// An object was relocated from `from` to `to`: copy its payload.
    fn copy_object(&mut self, from: Addr, to: Addr, size: u32);

    /// Reads the identity hash back out of the object header at `addr`, or
    /// `None` if this backend keeps no memory or the object is too small to
    /// carry a header. Callers fall back to the object table; the streamed
    /// snapshot path uses this so capture reads heap pages, not a
    /// materialized side table.
    fn read_header_hash(&self, addr: Addr, size: u32) -> Option<IdentityHash>;

    /// A shareable copier for the parallel evacuation apply phase, or
    /// `None` if copying is a no-op for this backend.
    fn copier(&self) -> Option<RegionCopier<'_>>;

    /// Reads `buf.len()` raw bytes starting at `addr` into `buf`, returning
    /// `false` when this backend keeps no memory or the region is unbacked.
    /// The integrity verifier reads headers through this rather than
    /// [`read_header_hash`](HeapBackend::read_header_hash), which
    /// debug-asserts on the very drift the verifier exists to report.
    fn read_bytes(&self, addr: Addr, buf: &mut [u8]) -> bool {
        let _ = (addr, buf);
        false
    }

    /// Whether every byte of `[addr.offset, addr.offset + len)` in the
    /// region's backing is zero, or `None` when this backend keeps no
    /// memory or the region is unbacked.
    fn range_is_zero(&self, addr: Addr, len: usize) -> Option<bool> {
        let _ = (addr, len);
        None
    }

    /// XORs `mask` into the byte at `addr` — the memory-corruption chaos
    /// arm's planting primitive, never called outside fault injection.
    /// Returns `false` (nothing planted) when this backend keeps no memory,
    /// the region is unbacked, or `mask` is zero.
    fn corrupt_byte(&mut self, addr: Addr, mask: u8) -> bool {
        let _ = (addr, mask);
        false
    }

    /// XORs `mask` into a deterministically chosen byte of the allocators'
    /// *free* memory (a free tenured block or a recycled young block) — the
    /// chaos arm's "stray write into freed memory" class. Returns `false`
    /// when this backend keeps no memory, no free blocks exist, or `mask`
    /// is zero.
    fn corrupt_free_byte(&mut self, selector: u64, mask: u8) -> bool {
        let _ = (selector, mask);
        false
    }

    /// Verifies allocator-internal invariants: free-list structure, the
    /// zeroed-handout contract on free memory, and TLAB window validity.
    /// Returns `(invariant, detail)` for the first violation; trivially
    /// clean for memory-less backends.
    ///
    /// # Errors
    ///
    /// The failing invariant's stable name plus a description.
    fn verify_allocator(&self) -> Result<(), (&'static str, String)> {
        Ok(())
    }

    /// The heap finished one evacuation-copy phase that took `ns`
    /// wall-clock nanoseconds with a critical-path (largest worker shard)
    /// of `critical_bytes`. Accumulated into [`BackendStats`]; a no-op for
    /// backends that never copy.
    fn note_copy_phase(&mut self, _ns: u64, _critical_bytes: u64) {}

    /// A GC cycle just completed: run deferred allocator maintenance
    /// (address-order free-list coalescing). Never influences logical
    /// placement; a no-op for memory-less backends.
    fn gc_cycle_finished(&mut self) {}

    /// Current byte counters.
    fn stats(&self) -> BackendStats;

    /// Resets the byte counters (footprint/backed-region gauges remain).
    fn reset_stats(&mut self);
}

/// The historical simulated backend: address arithmetic only.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl HeapBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }
    fn ensure_region(&mut self, _region: RegionId, _young: bool) {}
    fn release_region(&mut self, _region: RegionId) {}
    fn write_object(&mut self, _addr: Addr, _size: u32, _hash: IdentityHash) {}
    fn copy_object(&mut self, _from: Addr, _to: Addr, _size: u32) {}
    fn read_header_hash(&self, _addr: Addr, _size: u32) -> Option<IdentityHash> {
        None
    }
    fn copier(&self) -> Option<RegionCopier<'_>> {
        None
    }
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
    fn reset_stats(&mut self) {}
}

/// Where a region's backing memory came from.
#[derive(Debug, Clone, Copy)]
enum Backing {
    /// No memory backs this region (it is in the free pool).
    None,
    /// Backed by the young bump arena.
    Bump(BumpBlock),
    /// Backed by the tenured free list.
    Tenured(FreeBlock),
}

/// Real-memory backend: every assigned region is a page-aligned block, every
/// object's bytes are established on allocation (a header store into
/// pre-zeroed backing) and memcpy'd on move.
pub struct RealBackend {
    region_bytes: usize,
    /// Base pointer of each region's backing, null when unbacked. Kept as a
    /// flat array so the hot paths are one indexed load.
    bases: Vec<*mut u8>,
    backing: Vec<Backing>,
    bump: BumpArena,
    tenured: FreeList,
    /// Per-generation allocation windows (young, tenured): the TLAB-style
    /// fast path `write_object` hits before any region lookup.
    tlabs: [TlabWindow; 2],
    /// Window length installed on refill (the `--tlab-kb` knob), clamped
    /// to the region size.
    tlab_bytes: u32,
    tlab_refills: u64,
    bytes_written: u64,
    /// Atomic because the parallel apply phase adds to it through
    /// [`RegionCopier`] while the backend itself is only borrowed shared.
    bytes_copied: AtomicU64,
    copy_phase_ns: u64,
    copy_critical_bytes: u64,
    regions_backed: u64,
}

// SAFETY: the backend exclusively owns its arena/free-list memory; the raw
// base pointers alias that memory and are never shared outside `&self`
// methods (the copier borrows the backend for its lifetime), so moving the
// backend between threads is sound.
unsafe impl Send for RealBackend {}

impl fmt::Debug for RealBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RealBackend")
            .field("region_bytes", &self.region_bytes)
            .field("regions_backed", &self.regions_backed)
            .field("bytes_written", &self.bytes_written)
            .field("bytes_copied", &self.bytes_copied.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RealBackend {
    /// Chunks are sized to hold several regions so split/coalesce in the
    /// tenured free list is genuinely exercised.
    const REGIONS_PER_CHUNK: usize = 8;

    /// Creates a real backend for the given heap geometry. The configured
    /// heap (`total_bytes`, split at the young budget between the bump
    /// arena and the tenured free list) is committed and pre-faulted up
    /// front — the `-XX:+AlwaysPreTouch` analogue — so region carving and
    /// object stores never pay first-touch page faults on the hot path.
    pub fn new(config: &HeapConfig) -> Self {
        let region_bytes = config.region_bytes as usize;
        let page_bytes = config.page_bytes as usize;
        let chunk_bytes = region_bytes * Self::REGIONS_PER_CHUNK;
        let regions = config.region_count() as usize;
        let mut bump = BumpArena::new(page_bytes, chunk_bytes);
        bump.prefault(config.young_bytes as usize);
        let mut tenured = FreeList::new(page_bytes, chunk_bytes);
        tenured.prefault((config.total_bytes - config.young_bytes) as usize);
        RealBackend {
            region_bytes,
            bases: vec![ptr::null_mut(); regions],
            backing: vec![Backing::None; regions],
            bump,
            tenured,
            tlabs: [TlabWindow::empty(), TlabWindow::empty()],
            tlab_bytes: (config.tlab_bytes.min(config.region_bytes) as u32).max(1),
            tlab_refills: 0,
            bytes_written: 0,
            bytes_copied: AtomicU64::new(0),
            copy_phase_ns: 0,
            copy_critical_bytes: 0,
            regions_backed: 0,
        }
    }

    #[inline]
    fn base(&self, region: RegionId) -> *mut u8 {
        self.bases[region.index()]
    }

    /// `write_object`'s miss path: re-derive the region base, install a
    /// fresh window over `[offset, offset + tlab_bytes)` (clamped to the
    /// region and stretched to cover oversized objects) in the slot of the
    /// region's generation, and retry the write through it.
    #[cold]
    fn refill_and_write(&mut self, addr: Addr, size: u32, raw: u32) {
        let idx = addr.region.index();
        let base = self.bases[idx];
        debug_assert!(!base.is_null(), "write into unbacked region {addr:?}");
        debug_assert!(addr.offset as usize + size as usize <= self.region_bytes);
        let way = match self.backing[idx] {
            Backing::Bump(_) => 0,
            Backing::Tenured(_) => 1,
            Backing::None => return,
        };
        let limit = addr
            .offset
            .saturating_add(self.tlab_bytes.max(size))
            .min(self.region_bytes as u32);
        // SAFETY: the backing block spans the full region (`ensure_region`
        // carved it region-sized), so it is live for `limit <=
        // region_bytes` bytes, and it outlives the window because
        // `release_region` retires the window before recycling the block.
        // The two generation windows never cover the same region: a region
        // is backed by exactly one allocator, and the previous window over
        // this region (if any) is the one being replaced.
        unsafe { self.tlabs[way].install(base, addr.region.raw(), addr.offset, limit) };
        self.tlab_refills += 1;
        let wrote = self.tlabs[way].write(addr.region.raw(), addr.offset, size, raw);
        debug_assert!(wrote, "freshly installed window must cover its trigger");
        self.bytes_written += u64::from(size);
    }
}

impl HeapBackend for RealBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Real
    }

    fn ensure_region(&mut self, region: RegionId, young: bool) {
        let idx = region.index();
        if !self.bases[idx].is_null() {
            return;
        }
        if young {
            let block = self.bump.alloc(self.region_bytes);
            self.bases[idx] = self.bump.ptr(block).as_ptr();
            self.backing[idx] = Backing::Bump(block);
        } else {
            let block = self.tenured.alloc(self.region_bytes);
            self.bases[idx] = self.tenured.ptr(block).as_ptr();
            self.backing[idx] = Backing::Tenured(block);
        }
        self.regions_backed += 1;
    }

    fn release_region(&mut self, region: RegionId) {
        let idx = region.index();
        // Retire any window over the region first: its backing is about to
        // be recycled, and a stale window must never write into whatever
        // that memory backs next.
        for tlab in &mut self.tlabs {
            if tlab.region() == Some(region.raw()) {
                tlab.retire();
            }
        }
        match std::mem::replace(&mut self.backing[idx], Backing::None) {
            Backing::None => return,
            Backing::Bump(block) => self.bump.recycle(block),
            Backing::Tenured(block) => self.tenured.free(block),
        }
        self.bases[idx] = ptr::null_mut();
        self.regions_backed -= 1;
    }

    fn write_object(&mut self, addr: Addr, size: u32, hash: IdentityHash) {
        let raw = hash.raw();
        let region = addr.region.raw();
        // TLAB fast path: consecutive allocations into the same generation
        // land inside a cached window — one bounds compare, one header
        // store into pre-zeroed backing, no region lookup.
        if self.tlabs[0].write(region, addr.offset, size, raw)
            || self.tlabs[1].write(region, addr.offset, size, raw)
        {
            self.bytes_written += u64::from(size);
            return;
        }
        if self.base(addr.region).is_null() {
            debug_assert!(false, "write into unbacked region {addr:?}");
            return;
        }
        self.refill_and_write(addr, size, raw);
    }

    fn copy_object(&mut self, from: Addr, to: Addr, size: u32) {
        let src = self.base(from.region);
        let dst = self.base(to.region);
        debug_assert!(!src.is_null() && !dst.is_null(), "copy via unbacked region");
        if src.is_null() || dst.is_null() {
            return;
        }
        let size = size as usize;
        debug_assert!(from.offset as usize + size <= self.region_bytes);
        debug_assert!(to.offset as usize + size <= self.region_bytes);
        // Destinations are freshly bump-allocated above every live object in
        // their region, so source and destination ranges never overlap even
        // within one region.
        debug_assert!(
            from.region != to.region
                || to.offset >= from.offset + size as u32
                || from.offset >= to.offset + size as u32,
            "overlapping copy {from:?} -> {to:?}"
        );
        // SAFETY: both ranges lie inside their regions' backing blocks (the
        // heap sized them), and they are disjoint per the argument above.
        unsafe {
            ptr::copy_nonoverlapping(
                src.add(from.offset as usize),
                dst.add(to.offset as usize),
                size,
            );
        }
        self.bytes_copied.fetch_add(size as u64, Ordering::Relaxed);
    }

    fn read_header_hash(&self, addr: Addr, size: u32) -> Option<IdentityHash> {
        if (size as usize) < OBJECT_HEADER_BYTES {
            return None;
        }
        let base = self.base(addr.region);
        if base.is_null() {
            return None;
        }
        debug_assert!(addr.offset as usize + size as usize <= self.region_bytes);
        let mut bytes = [0u8; OBJECT_HEADER_BYTES];
        // SAFETY: the object spans at least OBJECT_HEADER_BYTES at
        // [offset, offset+size) inside this region's backing block.
        unsafe {
            ptr::copy_nonoverlapping(
                base.add(addr.offset as usize),
                bytes.as_mut_ptr(),
                OBJECT_HEADER_BYTES,
            );
        }
        let header = u64::from_le_bytes(bytes);
        debug_assert_eq!(header as u32, size, "object header size drifted");
        Some(IdentityHash::from_raw((header >> 32) as u32))
    }

    fn copier(&self) -> Option<RegionCopier<'_>> {
        Some(RegionCopier {
            bases: self.bases.clone(),
            region_bytes: self.region_bytes,
            bytes_copied: &self.bytes_copied,
        })
    }

    fn read_bytes(&self, addr: Addr, buf: &mut [u8]) -> bool {
        let base = self.base(addr.region);
        if base.is_null() {
            return false;
        }
        debug_assert!(addr.offset as usize + buf.len() <= self.region_bytes);
        // SAFETY: the range lies inside this region's backing block, which
        // the backend exclusively owns.
        unsafe {
            ptr::copy_nonoverlapping(base.add(addr.offset as usize), buf.as_mut_ptr(), buf.len());
        }
        true
    }

    fn range_is_zero(&self, addr: Addr, len: usize) -> Option<bool> {
        let base = self.base(addr.region);
        if base.is_null() {
            return None;
        }
        debug_assert!(addr.offset as usize + len <= self.region_bytes);
        // SAFETY: in-bounds of the exclusively-owned backing block.
        let bytes = unsafe { std::slice::from_raw_parts(base.add(addr.offset as usize), len) };
        Some(bytes.iter().all(|&b| b == 0))
    }

    fn corrupt_byte(&mut self, addr: Addr, mask: u8) -> bool {
        let base = self.base(addr.region);
        if base.is_null() || mask == 0 {
            return false;
        }
        debug_assert!((addr.offset as usize) < self.region_bytes);
        // SAFETY: a single in-bounds byte of the exclusively-owned backing.
        unsafe {
            let p = base.add(addr.offset as usize);
            p.write(p.read() ^ mask);
        }
        true
    }

    // Not `if_same_then_else`: the branches try the two allocators in
    // opposite orders, and `||` short-circuits after the first plant.
    #[allow(clippy::if_same_then_else)]
    fn corrupt_free_byte(&mut self, selector: u64, mask: u8) -> bool {
        // Alternate which allocator is hit first so both free-memory pools
        // get exercised across seeds.
        if selector & 1 == 0 {
            self.bump.corrupt_recycled(selector, mask) || self.tenured.corrupt_free(selector, mask)
        } else {
            self.tenured.corrupt_free(selector, mask) || self.bump.corrupt_recycled(selector, mask)
        }
    }

    fn verify_allocator(&self) -> Result<(), (&'static str, String)> {
        self.tenured
            .validate()
            .map_err(|d| ("free-list-structure", d))?;
        self.tenured
            .check_zeroed()
            .map_err(|d| ("free-memory-zero", format!("tenured: {d}")))?;
        self.bump
            .check_recycled_zeroed()
            .map_err(|d| ("free-memory-zero", format!("young: {d}")))?;
        for (way, tlab) in self.tlabs.iter().enumerate() {
            let Some(region) = tlab.region() else {
                continue;
            };
            let base = self
                .bases
                .get(region as usize)
                .copied()
                .unwrap_or(ptr::null_mut());
            if base.is_null() {
                return Err((
                    "tlab-window",
                    format!("window {way} installed over unbacked region {region}"),
                ));
            }
            if tlab.base_ptr() != base {
                return Err((
                    "tlab-window",
                    format!("window {way} base pointer drifted for region {region}"),
                ));
            }
            if tlab.start() > tlab.limit() || tlab.limit() as usize > self.region_bytes {
                return Err((
                    "tlab-window",
                    format!(
                        "window {way} bounds [{}, {}) exceed region {region}",
                        tlab.start(),
                        tlab.limit()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn note_copy_phase(&mut self, ns: u64, critical_bytes: u64) {
        self.copy_phase_ns += ns;
        self.copy_critical_bytes += critical_bytes;
    }

    fn gc_cycle_finished(&mut self) {
        // Deferred maintenance point: fold this cycle's O(1) frees into
        // address-coalesced blocks in one sorted pass.
        self.tenured.coalesce();
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            bytes_written: self.bytes_written,
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            copy_phase_ns: self.copy_phase_ns,
            copy_critical_bytes: self.copy_critical_bytes,
            tlab_refills: self.tlab_refills,
            regions_backed: self.regions_backed,
            footprint_bytes: (self.bump.footprint_bytes() + self.tenured.footprint_bytes()) as u64,
        }
    }

    fn reset_stats(&mut self) {
        self.bytes_written = 0;
        self.bytes_copied.store(0, Ordering::Relaxed);
        self.copy_phase_ns = 0;
        self.copy_critical_bytes = 0;
        self.tlab_refills = 0;
    }
}

/// Shareable payload copier for the parallel evacuation apply phase.
///
/// Snapshot of the backend's region base pointers, handed to the scoped
/// worker threads. Soundness leans on the same contract as the rest of the
/// apply phase (see [`crate::evac`]): every move in a batch has a distinct
/// destination range (bump-allocated), and source regions are detached from
/// their spaces before evacuation, so no two threads ever write overlapping
/// bytes and no thread reads bytes another writes.
pub struct RegionCopier<'a> {
    bases: Vec<*mut u8>,
    region_bytes: usize,
    bytes_copied: &'a AtomicU64,
}

// SAFETY: per the batch contract above, concurrent `copy` calls touch
// disjoint destination ranges and read only regions no move writes; the
// byte counter is atomic.
unsafe impl Sync for RegionCopier<'_> {}
// SAFETY: the copier only holds pointers into the backend it borrows from;
// sending it to a scoped worker thread cannot outlive that borrow.
unsafe impl Send for RegionCopier<'_> {}

impl RegionCopier<'_> {
    /// Copies one object payload; called from the apply-phase workers.
    pub(crate) fn copy(&self, from: Addr, to: Addr, size: u32) {
        let src = self.bases[from.region.index()];
        let dst = self.bases[to.region.index()];
        debug_assert!(!src.is_null() && !dst.is_null(), "copy via unbacked region");
        if src.is_null() || dst.is_null() {
            return;
        }
        let size = size as usize;
        debug_assert!(from.offset as usize + size <= self.region_bytes);
        debug_assert!(to.offset as usize + size <= self.region_bytes);
        // SAFETY: ranges are in-bounds of their backing blocks; disjointness
        // across the batch is the apply-phase contract (distinct bump
        // destinations, detached sources), making concurrent copies sound.
        unsafe {
            ptr::copy_nonoverlapping(
                src.add(from.offset as usize),
                dst.add(to.offset as usize),
                size,
            );
        }
        self.bytes_copied.fetch_add(size as u64, Ordering::Relaxed);
    }
}

impl fmt::Debug for RegionCopier<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegionCopier")
            .field("regions", &self.bases.len())
            .field("region_bytes", &self.region_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real() -> RealBackend {
        RealBackend::new(&HeapConfig::small())
    }

    fn addr(region: u32, offset: u32) -> Addr {
        Addr {
            region: RegionId::new(region),
            offset,
        }
    }

    #[test]
    fn header_round_trips_through_real_memory() {
        let mut b = real();
        b.ensure_region(RegionId::new(0), true);
        let hash = IdentityHash::from_raw(0xDEAD_BEEF);
        b.write_object(addr(0, 128), 64, hash);
        assert_eq!(b.read_header_hash(addr(0, 128), 64), Some(hash));
        // Tiny objects carry no header.
        b.write_object(addr(0, 0), 4, hash);
        assert_eq!(b.read_header_hash(addr(0, 0), 4), None);
        assert_eq!(b.stats().bytes_written, 68);
    }

    #[test]
    fn copy_moves_payload_across_regions() {
        let mut b = real();
        b.ensure_region(RegionId::new(0), true);
        b.ensure_region(RegionId::new(5), false);
        let hash = IdentityHash::from_raw(42);
        b.write_object(addr(0, 256), 512, hash);
        b.copy_object(addr(0, 256), addr(5, 1024), 512);
        assert_eq!(b.read_header_hash(addr(5, 1024), 512), Some(hash));
        assert_eq!(b.stats().bytes_copied, 512);
    }

    #[test]
    fn release_returns_backing_to_its_origin() {
        let mut b = real();
        b.ensure_region(RegionId::new(1), true);
        b.ensure_region(RegionId::new(2), false);
        assert_eq!(b.stats().regions_backed, 2);
        b.release_region(RegionId::new(1));
        b.release_region(RegionId::new(2));
        assert_eq!(b.stats().regions_backed, 0);
        // Releasing an unbacked region is a no-op.
        b.release_region(RegionId::new(3));
        // Re-assigning reuses the recycled memory, footprint stays flat.
        let footprint = b.stats().footprint_bytes;
        b.ensure_region(RegionId::new(7), true);
        b.ensure_region(RegionId::new(8), false);
        assert_eq!(b.stats().footprint_bytes, footprint);
    }

    #[test]
    fn sim_backend_is_inert() {
        let mut s = SimBackend;
        s.ensure_region(RegionId::new(0), true);
        s.write_object(addr(0, 0), 64, IdentityHash::from_raw(1));
        assert_eq!(s.read_header_hash(addr(0, 0), 64), None);
        assert!(s.copier().is_none());
        assert_eq!(s.stats(), BackendStats::default());
    }

    #[test]
    fn copier_counts_bytes_into_the_backend() {
        let mut b = real();
        b.ensure_region(RegionId::new(0), true);
        b.ensure_region(RegionId::new(1), false);
        b.write_object(addr(0, 0), 4096, IdentityHash::from_raw(7));
        let copier = b.copier().expect("real backend has a copier");
        copier.copy(addr(0, 0), addr(1, 0), 4096);
        drop(copier);
        assert_eq!(b.stats().bytes_copied, 4096);
        assert_eq!(
            b.read_header_hash(addr(1, 0), 4096),
            Some(IdentityHash::from_raw(7))
        );
    }
}
