//! Simulated managed heap for the POLM2 reproduction.
//!
//! The paper instruments the HotSpot JVM heap; Rust has no moving,
//! generational runtime to instrument, so this crate provides the substitute:
//! a page/region-structured heap holding explicit objects with headers
//! (class, allocation site, identity hash, age), reference edges, and a root
//! table. Reachability is defined by graph traversal from roots, exactly the
//! property both the collectors ([`polm2-gc`]) and the POLM2 Analyzer
//! measure.
//!
//! Layout model:
//!
//! * The heap owns a fixed pool of **regions** (default 1 MiB), each a run of
//!   **pages** (default 4 KiB). Pages carry the kernel-style *dirty* and
//!   *no-need* bits that the CRIU-like Dumper consumes.
//! * **Spaces** are generations: space 0 is the young generation; collectors
//!   create older spaces on demand (G1 uses one, NG2C arbitrarily many).
//!   Each space bump-allocates into regions acquired from the shared pool.
//! * **Objects** live in a slab table; an object knows its address (region +
//!   offset), so relocation (promotion/compaction) is an address update plus
//!   page-accounting, as in a real copying collector.
//!
//! [`polm2-gc`]: ../polm2_gc/index.html
//!
//! # Examples
//!
//! ```
//! use polm2_heap::{Heap, HeapConfig};
//!
//! let mut heap = Heap::new(HeapConfig::small());
//! let class = heap.classes_mut().intern("Example");
//! let site = polm2_heap::SiteId::new(0);
//! let young = Heap::YOUNG_SPACE;
//! let parent = heap.allocate(class, 64, site, young)?;
//! let child = heap.allocate(class, 32, site, young)?;
//! heap.add_ref(parent, child)?;
//! let root = heap.roots_mut().create_slot("static-table");
//! heap.roots_mut().push(root, parent);
//! let live = heap.mark_live(&[]);
//! assert!(live.contains(child));
//! # Ok::<(), polm2_heap::HeapError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
#![deny(unsafe_op_in_unsafe_fn)]

mod backend;
mod bump;
mod class;
mod config;
mod error;
mod evac;
mod fasthash;
mod free_list;
mod heap;
mod ids;
mod mark;
mod object;
mod region;
mod roots;
mod space;
mod stats;
mod tlab;

pub use backend::{
    BackendKind, BackendStats, HeapBackend, RealBackend, RegionCopier, SimBackend,
    OBJECT_HEADER_BYTES,
};
pub use bump::{BumpArena, BumpBlock};
pub use class::{ClassInfo, ClassRegistry};
pub use config::{HeapConfig, VerifyMode};
pub use error::HeapError;
pub use evac::EvacDecision;
pub use fasthash::{BuildIdHasher, IdHashMap, IdHashSet, IdHasher};
pub use free_list::{FreeBlock, FreeList};
pub use heap::{CorruptionKind, Heap, LiveSet, ParallelTuning, PlantedCorruption};
pub use ids::{ClassId, GenId, IdentityHash, ObjectId, PageId, RegionId, SiteId, SpaceId};
pub use object::ObjectRecord;
pub use region::{Addr, PageFlags, PageTable, Region};
pub use roots::{RootSlotId, RootTable};
pub use space::Space;
pub use stats::HeapStats;
pub use tlab::TlabWindow;
