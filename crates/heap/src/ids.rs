//! Identifier newtypes used across the workspace.
//!
//! Every entity the simulation tracks — objects, classes, allocation sites,
//! spaces (generations), regions, pages — gets its own index newtype so the
//! different id spaces cannot be mixed up ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! index_id {
    ($(#[$meta:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name($repr);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: $repr) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// The raw index widened to `usize` for slab addressing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for $repr {
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

index_id!(
    /// Identifies one heap object for its whole lifetime.
    ///
    /// Ids are never reused within a run, so an `ObjectId` is a stable handle
    /// even across relocation — mirroring how the paper's Recorder tracks
    /// objects by `System.identityHashCode` rather than by address.
    ObjectId,
    u64,
    "obj#"
);

index_id!(
    /// Identifies an interned class name.
    ClassId,
    u32,
    "class#"
);

index_id!(
    /// Identifies an allocation site: a unique (class, method, line) triple
    /// in the loaded program. The POLM2 profile maps `SiteId` → generation.
    SiteId,
    u32,
    "site#"
);

index_id!(
    /// Identifies a heap space. Space 0 is the young generation; collectors
    /// create older spaces on demand.
    SpaceId,
    u32,
    "space#"
);

index_id!(
    /// Identifies one fixed-size region of the heap's region pool.
    RegionId,
    u32,
    "region#"
);

index_id!(
    /// Identifies one page. Pages are numbered globally:
    /// `page = region.first_page + offset / page_size`.
    PageId,
    u32,
    "page#"
);

/// A *logical* generation number as NG2C exposes it to applications:
/// 0 is the young generation, higher numbers are older generations.
///
/// Collectors map `GenId`s onto [`SpaceId`]s; applications and profiles only
/// ever speak `GenId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GenId(u32);

impl GenId {
    /// The young generation.
    pub const YOUNG: GenId = GenId(0);

    /// Wraps a raw generation number.
    pub const fn new(raw: u32) -> Self {
        GenId(raw)
    }

    /// The raw generation number.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// True for the young generation.
    pub const fn is_young(self) -> bool {
        self.0 == 0
    }

    /// The next older generation.
    pub const fn older(self) -> GenId {
        GenId(self.0 + 1)
    }
}

impl fmt::Display for GenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gen{}", self.0)
    }
}

/// The 32-bit identity hash stored in an object's header.
///
/// The JVM computes `System.identityHashCode` once per object and stashes it
/// in the header; POLM2's Analyzer matches Recorder ids against snapshot
/// headers through it. We derive it deterministically from the [`ObjectId`]
/// with a 64→32 bit mix, so collisions are possible (as in the JVM) but
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdentityHash(u32);

impl IdentityHash {
    /// Computes the identity hash for an object id (splitmix64 finalizer,
    /// truncated).
    pub fn of(id: ObjectId) -> Self {
        let mut z = id.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        IdentityHash(z as u32)
    }

    /// The raw hash value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Rewraps a raw hash value, e.g. when decoding a persisted snapshot
    /// column whose hashes were stored via [`raw`](IdentityHash::raw).
    pub const fn from_raw(raw: u32) -> Self {
        IdentityHash(raw)
    }
}

impl fmt::Display for IdentityHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

impl fmt::LowerHex for IdentityHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn newtype_round_trip() {
        let id = ObjectId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(u64::from(id), 7);
        assert_eq!(id.to_string(), "obj#7");
    }

    #[test]
    fn gen_id_ordering_and_helpers() {
        assert!(GenId::YOUNG.is_young());
        let g2 = GenId::new(2);
        assert!(!g2.is_young());
        assert_eq!(g2.older(), GenId::new(3));
        assert!(GenId::YOUNG < g2);
        assert_eq!(g2.to_string(), "gen2");
    }

    #[test]
    fn identity_hash_is_deterministic() {
        let a = IdentityHash::of(ObjectId::new(42));
        let b = IdentityHash::of(ObjectId::new(42));
        assert_eq!(a, b);
        assert_ne!(a, IdentityHash::of(ObjectId::new(43)));
    }

    #[test]
    fn identity_hash_spreads() {
        // 10k sequential ids should produce (nearly) 10k distinct hashes;
        // a tiny number of collisions is acceptable, as in the JVM.
        let hashes: HashSet<u32> = (0..10_000)
            .map(|i| IdentityHash::of(ObjectId::new(i)).raw())
            .collect();
        assert!(
            hashes.len() > 9_990,
            "too many collisions: {}",
            10_000 - hashes.len()
        );
    }

    #[test]
    fn distinct_id_spaces_display_differently() {
        assert_eq!(ClassId::new(1).to_string(), "class#1");
        assert_eq!(SiteId::new(1).to_string(), "site#1");
        assert_eq!(SpaceId::new(1).to_string(), "space#1");
        assert_eq!(RegionId::new(1).to_string(), "region#1");
        assert_eq!(PageId::new(1).to_string(), "page#1");
    }
}
