//! Spaces: the heap's generations.

use crate::{GenId, RegionId, SpaceId};

/// One space (generation) of the heap.
///
/// A space owns a set of regions and bump-allocates into the most recently
/// acquired one. Space 0 is always the young generation; collectors create
/// older spaces (`G1` one, `NG2C` arbitrarily many) and map logical
/// [`GenId`]s onto them.
#[derive(Debug, Clone)]
pub struct Space {
    id: SpaceId,
    /// The logical generation this space represents.
    gen: GenId,
    /// Regions owned by this space, acquisition order. The last one is the
    /// current allocation region.
    regions: Vec<RegionId>,
    /// Maximum number of regions this space may own (`None` = unbounded,
    /// i.e. limited only by the shared pool).
    region_budget: Option<u32>,
}

impl Space {
    pub(crate) fn new(id: SpaceId, gen: GenId, region_budget: Option<u32>) -> Self {
        Space {
            id,
            gen,
            regions: Vec::new(),
            region_budget,
        }
    }

    /// This space's id.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// The logical generation this space represents.
    pub fn gen(&self) -> GenId {
        self.gen
    }

    /// Regions owned by this space, oldest first.
    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }

    /// Number of regions owned.
    pub fn region_count(&self) -> u32 {
        self.regions.len() as u32
    }

    /// The region budget, if bounded.
    pub fn region_budget(&self) -> Option<u32> {
        self.region_budget
    }

    /// True if acquiring one more region would exceed the budget.
    pub fn at_budget(&self) -> bool {
        match self.region_budget {
            Some(b) => self.region_count() >= b,
            None => false,
        }
    }

    /// The current allocation region, if any.
    pub fn current_region(&self) -> Option<RegionId> {
        self.regions.last().copied()
    }

    pub(crate) fn push_region(&mut self, region: RegionId) {
        self.regions.push(region);
    }

    pub(crate) fn remove_region(&mut self, region: RegionId) {
        self.regions.retain(|&r| r != region);
    }

    pub(crate) fn take_regions(&mut self) -> Vec<RegionId> {
        std::mem::take(&mut self.regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_tracking() {
        let mut s = Space::new(SpaceId::new(0), GenId::YOUNG, Some(2));
        assert!(!s.at_budget());
        s.push_region(RegionId::new(0));
        s.push_region(RegionId::new(1));
        assert!(s.at_budget());
        assert_eq!(s.current_region(), Some(RegionId::new(1)));
        assert_eq!(s.region_count(), 2);
    }

    #[test]
    fn unbounded_space_never_at_budget() {
        let mut s = Space::new(SpaceId::new(1), GenId::new(1), None);
        for i in 0..100 {
            s.push_region(RegionId::new(i));
        }
        assert!(!s.at_budget());
        assert_eq!(s.region_budget(), None);
    }

    #[test]
    fn remove_and_take() {
        let mut s = Space::new(SpaceId::new(0), GenId::YOUNG, None);
        s.push_region(RegionId::new(5));
        s.push_region(RegionId::new(6));
        s.remove_region(RegionId::new(5));
        assert_eq!(s.regions(), &[RegionId::new(6)]);
        let all = s.take_regions();
        assert_eq!(all, vec![RegionId::new(6)]);
        assert_eq!(s.region_count(), 0);
    }
}
