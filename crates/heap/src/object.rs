//! Object records: the simulated object header plus reference edges.

use crate::{Addr, ClassId, GenId, IdentityHash, ObjectId, SiteId, SpaceId};

/// One live heap object.
///
/// Mirrors a JVM object's header (class, identity hash, GC age) plus the two
/// things the simulation adds: the allocation site that created it (what the
/// paper's Recorder captures via stack traces) and explicit reference edges
/// (what defines reachability).
#[derive(Debug, Clone)]
pub struct ObjectRecord {
    id: ObjectId,
    class: ClassId,
    site: SiteId,
    size: u32,
    identity_hash: IdentityHash,
    /// Number of collections survived while in the young generation.
    age: u8,
    /// The space the object currently resides in.
    space: SpaceId,
    /// The logical generation the object was allocated into (0 unless
    /// pretenured). Used for accounting, not placement.
    allocated_gen: GenId,
    addr: Addr,
    /// The heap mark epoch that last reached this object. Epoch 0 is never
    /// issued by a mark, so a fresh record is unmarked by construction.
    mark_epoch: u32,
    refs: Vec<ObjectId>,
}

impl ObjectRecord {
    pub(crate) fn new(
        id: ObjectId,
        class: ClassId,
        site: SiteId,
        size: u32,
        space: SpaceId,
        allocated_gen: GenId,
        addr: Addr,
    ) -> Self {
        ObjectRecord {
            id,
            class,
            site,
            size,
            identity_hash: IdentityHash::of(id),
            age: 0,
            space,
            allocated_gen,
            addr,
            mark_epoch: 0,
            refs: Vec::new(),
        }
    }

    /// The object's stable id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The object's class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The allocation site that created the object.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Object size in bytes (header included).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The header identity hash (what the Analyzer matches snapshot objects
    /// by).
    pub fn identity_hash(&self) -> IdentityHash {
        self.identity_hash
    }

    /// Collections survived in the young generation.
    pub fn age(&self) -> u8 {
        self.age
    }

    /// The space the object currently resides in.
    pub fn space(&self) -> SpaceId {
        self.space
    }

    /// The logical generation the allocation targeted (0 unless pretenured).
    pub fn allocated_gen(&self) -> GenId {
        self.allocated_gen
    }

    /// The object's current address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Outgoing reference edges.
    pub fn refs(&self) -> &[ObjectId] {
        &self.refs
    }

    pub(crate) fn refs_mut(&mut self) -> &mut Vec<ObjectId> {
        &mut self.refs
    }

    pub(crate) fn mark_epoch(&self) -> u32 {
        self.mark_epoch
    }

    pub(crate) fn set_mark_epoch(&mut self, epoch: u32) {
        self.mark_epoch = epoch;
    }

    pub(crate) fn bump_age(&mut self) -> u8 {
        self.age = self.age.saturating_add(1);
        self.age
    }

    pub(crate) fn relocate(&mut self, space: SpaceId, addr: Addr) {
        self.space = space;
        self.addr = addr;
    }

    /// Resets the young-generation age (a collector may do this when an
    /// object changes space).
    pub fn reset_age(&mut self) {
        self.age = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionId;

    fn record() -> ObjectRecord {
        ObjectRecord::new(
            ObjectId::new(9),
            ClassId::new(1),
            SiteId::new(2),
            128,
            SpaceId::new(0),
            GenId::YOUNG,
            Addr {
                region: RegionId::new(0),
                offset: 0,
            },
        )
    }

    #[test]
    fn header_fields() {
        let r = record();
        assert_eq!(r.id(), ObjectId::new(9));
        assert_eq!(r.class(), ClassId::new(1));
        assert_eq!(r.site(), SiteId::new(2));
        assert_eq!(r.size(), 128);
        assert_eq!(r.identity_hash(), IdentityHash::of(ObjectId::new(9)));
        assert_eq!(r.age(), 0);
        assert!(r.allocated_gen().is_young());
    }

    #[test]
    fn aging_saturates() {
        let mut r = record();
        for _ in 0..300 {
            r.bump_age();
        }
        assert_eq!(r.age(), u8::MAX);
        r.reset_age();
        assert_eq!(r.age(), 0);
    }

    #[test]
    fn relocation_updates_placement_only() {
        let mut r = record();
        let hash = r.identity_hash();
        r.relocate(
            SpaceId::new(2),
            Addr {
                region: RegionId::new(7),
                offset: 512,
            },
        );
        assert_eq!(r.space(), SpaceId::new(2));
        assert_eq!(r.addr().region, RegionId::new(7));
        assert_eq!(r.identity_hash(), hash, "identity hash survives relocation");
        assert_eq!(r.id(), ObjectId::new(9));
    }
}
