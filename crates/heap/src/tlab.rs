//! TLAB-style allocation windows and the header-only object store.
//!
//! A [`TlabWindow`] is a thread-local-allocation-buffer analogue for the
//! real-memory backend: a cached `[start, limit)` write window over one
//! region's backing block. The heap still decides every logical address
//! (region + offset) before any backend hook fires — the window never
//! influences placement — but while consecutive allocations land inside the
//! window, the backend skips the per-object region lookup and bounds
//! re-derivation entirely and goes straight to one store. Falling off the
//! window's end (or switching regions) triggers a *refill*: the backend
//! re-derives the base pointer once, installs a fresh window of up to
//! `tlab_bytes`, and counts the refill. Releasing a region *retires* any
//! window over it, so a recycled backing block can never be written
//! through a stale window.
//!
//! The store itself ([`TlabWindow::write`]) is **header-only**: both
//! allocators hand out their blocks pre-zeroed (the HotSpot `ZeroTLAB`
//! discipline — bulk re-zeroing rides along with the GC that recycles or
//! frees the memory, see [`BumpArena`](crate::bump::BumpArena) and
//! [`FreeList`](crate::free_list::FreeList)), so establishing an object
//! costs one unaligned store of the 8-byte header
//! `(hash << 32) | size` and the payload's defined content is the zeros
//! already there. That is what keeps real allocation near sim speed: a
//! 4 KiB object touches one cache line, not 64, and the allocation path
//! never streams payload-sized stores through the host's write-bandwidth
//! ceiling. Payload bytes move only in the evacuation copy phase, which
//! `memcpy`s header + payload together.
//!
//! # Safety model
//!
//! A window is only a *view*: it borrows no lifetime but holds a raw base
//! pointer, so the type that installs it (the backend) must guarantee the
//! backing block outlives the window — retiring on region release is what
//! maintains that. Writes are bounds-checked against `[start, limit)`
//! before any unsafe store, so a window can never write outside the range
//! it was installed over; disjoint windows therefore never overlap, which
//! is what the cross-thread property fuzz in `backend_properties.rs`
//! pins down.

use crate::backend::OBJECT_HEADER_BYTES;

/// A cached write window over one region's backing memory.
///
/// See the [module docs](self) for the refill/retire protocol and safety
/// model.
#[derive(Debug)]
pub struct TlabWindow {
    /// Base pointer of the *region* backing (not of the window), so object
    /// offsets index directly. Dangling iff `region == EMPTY`.
    base: *mut u8,
    /// Raw region id this window is installed over, [`TlabWindow::EMPTY`]
    /// when retired.
    region: u32,
    /// Inclusive first offset the window may write.
    start: u32,
    /// Exclusive end offset of the window.
    limit: u32,
}

// SAFETY: the window is a plain (pointer, range) pair; sending it to
// another thread is sound. Concurrent use is governed by the installer's
// contract that live windows cover disjoint ranges.
unsafe impl Send for TlabWindow {}

impl TlabWindow {
    /// Sentinel region id of a retired window.
    const EMPTY: u32 = u32::MAX;

    /// A retired window that covers nothing.
    pub const fn empty() -> Self {
        TlabWindow {
            base: std::ptr::null_mut(),
            region: Self::EMPTY,
            start: 0,
            limit: 0,
        }
    }

    /// Installs the window over `[start, limit)` of the region whose
    /// backing begins at `base`.
    ///
    /// # Safety
    ///
    /// `base` must point to a live allocation spanning at least `limit`
    /// bytes, and that allocation must outlive every [`write`] through
    /// this window (retire the window before the backing is released).
    /// No other live window may cover an overlapping range of the same
    /// backing while both are written.
    ///
    /// [`write`]: TlabWindow::write
    pub unsafe fn install(&mut self, base: *mut u8, region: u32, start: u32, limit: u32) {
        debug_assert!(!base.is_null() && start <= limit && region != Self::EMPTY);
        self.base = base;
        self.region = region;
        self.start = start;
        self.limit = limit;
    }

    /// Retires the window; every subsequent [`write`](TlabWindow::write)
    /// misses until it is installed again.
    pub fn retire(&mut self) {
        self.region = Self::EMPTY;
        self.base = std::ptr::null_mut();
        self.start = 0;
        self.limit = 0;
    }

    /// The raw region id the window is installed over, if any.
    pub fn region(&self) -> Option<u32> {
        (self.region != Self::EMPTY).then_some(self.region)
    }

    /// The base pointer the window was installed with (null when retired).
    /// Exposed for the integrity verifier's window-validity check only.
    pub(crate) fn base_ptr(&self) -> *mut u8 {
        self.base
    }

    /// The window's inclusive start offset.
    pub(crate) fn start(&self) -> u32 {
        self.start
    }

    /// The window's exclusive end offset.
    pub(crate) fn limit(&self) -> u32 {
        self.limit
    }

    /// Whether `[offset, offset + size)` of `region` lies inside the
    /// window.
    #[inline]
    pub fn covers(&self, region: u32, offset: u32, size: u32) -> bool {
        // One compare chain, no data-dependent branches beyond it: this is
        // the allocation fast path's only check.
        region == self.region && offset >= self.start && offset + size <= self.limit
    }

    /// Writes one object's header at `offset` if the window covers it;
    /// returns `false` (a *miss*, prompting a refill) if not. Misses never
    /// touch memory.
    #[inline]
    pub fn write(&mut self, region: u32, offset: u32, size: u32, hash_raw: u32) -> bool {
        if !self.covers(region, offset, size) {
            return false;
        }
        // SAFETY: `covers` proved [offset, offset+size) ⊆ [start, limit),
        // and the install contract guarantees the backing spans `limit`
        // bytes and is live; no other window overlaps this range.
        unsafe { write_header(self.base.add(offset as usize), size as usize, hash_raw) };
        true
    }
}

/// Header-only object store for pre-zeroed backing: writes the 8-byte
/// object header `(hash << 32) | size` (little endian) and nothing else —
/// the payload's defined content is the zeros the block provider
/// established in bulk (prefault, recycle, free). Objects smaller than a
/// header store nothing at all; their whole payload is zeros and readers
/// fall back to the object table.
///
/// # Safety
///
/// `dst` must be valid for writes of `size` bytes.
pub(crate) unsafe fn write_header(dst: *mut u8, size: usize, hash_raw: u32) {
    if size < OBJECT_HEADER_BYTES {
        return;
    }
    let header = ((u64::from(hash_raw)) << 32) | size as u64;
    // SAFETY: the header occupies [0, 8) of the caller-guaranteed `size`
    // writable bytes; `write_unaligned` because object offsets are
    // byte-granular.
    unsafe { (dst as *mut u64).write_unaligned(header.to_le()) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_store_matches_the_reference_layout() {
        // Sizes on both sides of the header threshold; the buffer models
        // pre-zeroed backing with 0xEE guard bytes outside the object.
        for size in [1usize, 4, 7, 8, 9, 16, 64, 2048, 4097] {
            let mut buf = vec![0u8; size + 16];
            buf[..3].fill(0xEE);
            buf[3 + size..].fill(0xEE);
            // Offset by 3 to exercise the unaligned store.
            let dst = unsafe { buf.as_mut_ptr().add(3) };
            unsafe { write_header(dst, size, 0xAB12_34CD) };
            if size < OBJECT_HEADER_BYTES {
                assert!(
                    buf[3..3 + size].iter().all(|&b| b == 0),
                    "tiny object must store nothing (size {size})"
                );
            } else {
                let header = ((0xAB12_34CDu64) << 32) | size as u64;
                assert_eq!(&buf[3..11], &header.to_le_bytes(), "size {size}");
                assert!(
                    buf[11..3 + size].iter().all(|&b| b == 0),
                    "payload touched (size {size})"
                );
            }
            // Guard bytes on both sides untouched.
            assert!(buf[..3].iter().all(|&b| b == 0xEE), "size {size} underran");
            assert!(
                buf[3 + size..].iter().all(|&b| b == 0xEE),
                "size {size} overran"
            );
        }
    }

    #[test]
    fn window_bounds_misses_never_write() {
        let mut backing = vec![0u8; 4096];
        let mut w = TlabWindow::empty();
        assert!(!w.write(0, 0, 8, 1), "retired window must miss");
        unsafe { w.install(backing.as_mut_ptr(), 7, 1024, 2048) };
        assert_eq!(w.region(), Some(7));
        assert!(!w.write(8, 1024, 8, 1), "wrong region");
        assert!(!w.write(7, 1000, 8, 1), "below start");
        assert!(!w.write(7, 2040, 16, 1), "crosses limit");
        assert!(backing.iter().all(|&b| b == 0), "misses wrote memory");
        assert!(w.write(7, 1024, 64, 0x55), "covered write");
        assert_eq!(backing[1024], 64, "header size byte");
        assert_eq!(backing[1028], 0x55, "header hash byte");
        w.retire();
        assert_eq!(w.region(), None);
        assert!(!w.write(7, 1024, 8, 1), "retired window must miss again");
    }

    #[test]
    fn header_survives_the_store_and_payload_stays_zero() {
        let mut backing = vec![0u8; 4096];
        let mut w = TlabWindow::empty();
        unsafe { w.install(backing.as_mut_ptr(), 0, 0, 4096) };
        assert!(w.write(0, 128, 512, 0xDEAD_BEEF));
        let mut header = [0u8; 8];
        header.copy_from_slice(&backing[128..136]);
        let header = u64::from_le_bytes(header);
        assert_eq!(header as u32, 512);
        assert_eq!((header >> 32) as u32, 0xDEAD_BEEF);
        assert!(
            backing[136..128 + 512].iter().all(|&b| b == 0),
            "payload must stay the zeros the backing was handed out with"
        );
    }
}
