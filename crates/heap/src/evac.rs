//! Batched evacuation: plan/apply split and the parallel fix-up phase.
//!
//! [`Heap::evacuate_batch`] runs in two phases. The *planning* phase is
//! serial and deterministic: it walks the ops in order, takes dead records,
//! bump-allocates every destination address, and updates region lists and
//! live-byte accounting — everything whose outcome depends on order. What
//! remains for the *fix-up* phase is strictly commutative: rewriting each
//! moved record's address/age (disjoint slots), adjusting per-page occupancy
//! counters (atomic add/sub), and ORing/ANDNOT-ing page dirty/no-need bits.
//! Commutativity is what makes the fix-up safe to shard across workers with
//! no coordination and bit-identical at any worker count.
//!
//! [`Heap::evacuate_batch`]: crate::Heap::evacuate_batch

use std::sync::atomic::Ordering;

use crate::backend::RegionCopier;
use crate::region::as_atomic_words;
use crate::{Addr, ObjectRecord, PageTable, SpaceId};

/// What a collector decided to do with one object during an evacuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvacDecision {
    /// The object is dead: take its record and free its pages.
    Drop,
    /// The object survives: copy it into `dest`.
    Move {
        /// Destination space (same space for survivor copying, an older
        /// space for promotion or compaction).
        dest: SpaceId,
        /// Bump the object's young-generation age as part of the move
        /// (survivor copying and promotion do; compaction does not).
        bump_age: bool,
    },
}

/// A planned move, carrying everything the fix-up phase needs without
/// touching shared heap state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MoveEntry {
    /// Record slot of the moved object (unique within one batch).
    pub slot: u32,
    pub dest: SpaceId,
    /// Address the object is copied from (the payload source).
    pub old_addr: Addr,
    pub new_addr: Addr,
    pub size: u32,
    pub bump_age: bool,
    /// Global page range the object vacated.
    pub old_first: u32,
    pub old_last: u32,
    /// Global page range the object now occupies.
    pub new_first: u32,
    pub new_last: u32,
}

/// A planned drop: only the vacated page range remains to account.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DropEntry {
    pub first: u32,
    pub last: u32,
}

/// Shares the record slab across fix-up workers.
///
/// Safety rests on the batch contract: every [`MoveEntry::slot`] is unique
/// within the batch, so no two workers ever touch the same record, and the
/// exclusive `&mut` borrow held by the caller guarantees nothing else reads
/// the slab while workers write disjoint slots.
struct RecordsCell {
    ptr: *mut Option<ObjectRecord>,
    len: usize,
}

unsafe impl Sync for RecordsCell {}

impl RecordsCell {
    /// Returns the slot's address; the caller may form a `&mut` from it only
    /// while no other worker holds the same slot (guaranteed by slot
    /// uniqueness within the batch).
    fn record(&self, slot: u32) -> *mut Option<ObjectRecord> {
        assert!((slot as usize) < self.len, "record slot out of range");
        // SAFETY: `slot < len` was just asserted, so the offset stays inside
        // the slab allocation `ptr` was derived from.
        unsafe { self.ptr.add(slot as usize) }
    }
}

/// Applies the fix-up phase across `workers` scoped threads. Every effect is
/// commutative, so chunk boundaries and interleaving cannot change the final
/// state. When a real-memory backend supplies a `copier`, each worker also
/// memcpys its moves' payloads — destination ranges are distinct
/// bump-allocations and source regions are detached from their spaces, so
/// the copies touch disjoint bytes (see [`RegionCopier`]).
pub(crate) fn apply_parallel(
    workers: usize,
    records: &mut [Option<ObjectRecord>],
    page_object_counts: &mut [u32],
    page_table: &mut PageTable,
    moves: &[MoveEntry],
    drops: &[DropEntry],
    copier: Option<&RegionCopier<'_>>,
) {
    let workers = workers.max(1);
    let cell = RecordsCell {
        ptr: records.as_mut_ptr(),
        len: records.len(),
    };
    let counts = as_atomic_words(page_object_counts);
    let (dirty, no_need) = page_table.atomic_views();
    let move_chunk = moves.len().div_ceil(workers).max(1);
    let drop_chunk = drops.len().div_ceil(workers).max(1);
    std::thread::scope(|s| {
        for w in 0..workers {
            let cell = &cell;
            let counts = &counts;
            let dirty = &dirty;
            let no_need = &no_need;
            s.spawn(move || {
                let mstart = (w * move_chunk).min(moves.len());
                let mend = ((w + 1) * move_chunk).min(moves.len());
                for m in &moves[mstart..mend] {
                    if let Some(c) = copier {
                        c.copy(m.old_addr, m.new_addr, m.size);
                    }
                    // SAFETY: slots are unique within the batch; this worker
                    // is the only one holding this slot.
                    let rec = unsafe { &mut *cell.record(m.slot) }
                        .as_mut()
                        .expect("planned move has a record");
                    rec.relocate(m.dest, m.new_addr);
                    if m.bump_age {
                        rec.bump_age();
                    }
                    for p in m.new_first..=m.new_last {
                        dirty.set(p);
                        no_need.clear(p);
                        counts[p as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    for p in m.old_first..=m.old_last {
                        counts[p as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let dstart = (w * drop_chunk).min(drops.len());
                let dend = ((w + 1) * drop_chunk).min(drops.len());
                for d in &drops[dstart..dend] {
                    for p in d.first..=d.last {
                        counts[p as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
}
