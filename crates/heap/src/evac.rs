//! Batched evacuation: plan/apply split and the parallel fix-up phase.
//!
//! [`Heap::evacuate_batch`] runs in three phases. The *planning* phase is
//! serial and deterministic: it walks the ops in order, takes dead records,
//! bump-allocates every destination address, and updates region lists and
//! live-byte accounting — everything whose outcome depends on order. The
//! *copy* phase (real backend only) memcpys the planned payloads,
//! partitioned by **destination region** ([`plan_copy_shards`]): moves into
//! the same region stay on one worker, so workers stream into disjoint
//! memory instead of interleaving stores across each other's cache lines,
//! and the phase is timed on its own so bandwidth figures measure the
//! copier. What remains for the *fix-up* phase is strictly commutative:
//! rewriting each moved record's address/age (disjoint slots), adjusting
//! per-page occupancy counters (atomic add/sub), and ORing/ANDNOT-ing page
//! dirty/no-need bits. Commutativity is what makes the fix-up safe to shard
//! across workers with no coordination and bit-identical at any worker
//! count; the copy phase is safe because destination ranges are distinct
//! bump allocations, and *placement-identical* because copying bytes can
//! never alter logical state.
//!
//! [`Heap::evacuate_batch`]: crate::Heap::evacuate_batch

use std::sync::atomic::Ordering;

use crate::backend::RegionCopier;
use crate::region::as_atomic_words;
use crate::{Addr, ObjectRecord, PageTable, SpaceId};

/// What a collector decided to do with one object during an evacuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvacDecision {
    /// The object is dead: take its record and free its pages.
    Drop,
    /// The object survives: copy it into `dest`.
    Move {
        /// Destination space (same space for survivor copying, an older
        /// space for promotion or compaction).
        dest: SpaceId,
        /// Bump the object's young-generation age as part of the move
        /// (survivor copying and promotion do; compaction does not).
        bump_age: bool,
    },
}

/// A planned move, carrying everything the fix-up phase needs without
/// touching shared heap state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MoveEntry {
    /// Record slot of the moved object (unique within one batch).
    pub slot: u32,
    pub dest: SpaceId,
    /// Address the object is copied from (the payload source).
    pub old_addr: Addr,
    pub new_addr: Addr,
    pub size: u32,
    pub bump_age: bool,
    /// Global page range the object vacated.
    pub old_first: u32,
    pub old_last: u32,
    /// Global page range the object now occupies.
    pub new_first: u32,
    pub new_last: u32,
}

/// A planned drop: only the vacated page range remains to account.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DropEntry {
    pub first: u32,
    pub last: u32,
}

/// Shares the record slab across fix-up workers.
///
/// Safety rests on the batch contract: every [`MoveEntry::slot`] is unique
/// within the batch, so no two workers ever touch the same record, and the
/// exclusive `&mut` borrow held by the caller guarantees nothing else reads
/// the slab while workers write disjoint slots.
struct RecordsCell {
    ptr: *mut Option<ObjectRecord>,
    len: usize,
}

unsafe impl Sync for RecordsCell {}

impl RecordsCell {
    /// Returns the slot's address; the caller may form a `&mut` from it only
    /// while no other worker holds the same slot (guaranteed by slot
    /// uniqueness within the batch).
    fn record(&self, slot: u32) -> *mut Option<ObjectRecord> {
        assert!((slot as usize) < self.len, "record slot out of range");
        // SAFETY: `slot < len` was just asserted, so the offset stays inside
        // the slab allocation `ptr` was derived from.
        unsafe { self.ptr.add(slot as usize) }
    }
}

/// One worker's share of a copy phase: the indices into the move list it
/// copies, and their total payload bytes.
#[derive(Debug, Default)]
pub(crate) struct CopyShard {
    pub moves: Vec<u32>,
    pub bytes: u64,
}

/// Partitions a batch's moves into per-worker copy shards, keyed by
/// **destination region**: all moves into one region land on one worker
/// (disjoint destination memory per worker, no cross-worker cache-line
/// interleaving), and region groups are spread across workers
/// largest-bytes-first onto the least-loaded shard (deterministic LPT).
/// Returns exactly `workers.max(1)` shards; trailing shards may be empty
/// when there are fewer destination regions than workers.
pub(crate) fn plan_copy_shards(moves: &[MoveEntry], workers: usize) -> Vec<CopyShard> {
    let workers = workers.max(1);
    let mut shards: Vec<CopyShard> = (0..workers).map(|_| CopyShard::default()).collect();
    if moves.is_empty() {
        return shards;
    }
    // Group move indices by destination region, preserving planning order
    // within each group (sort is stable; the key ignores the index).
    let mut by_dest: Vec<u32> = (0..moves.len() as u32).collect();
    by_dest.sort_by_key(|&i| moves[i as usize].new_addr.region.raw());
    let mut groups: Vec<(u64, Vec<u32>)> = Vec::new();
    let mut start = 0;
    while start < by_dest.len() {
        let region = moves[by_dest[start] as usize].new_addr.region;
        let mut end = start;
        let mut bytes = 0u64;
        while end < by_dest.len() && moves[by_dest[end] as usize].new_addr.region == region {
            bytes += u64::from(moves[by_dest[end] as usize].size);
            end += 1;
        }
        groups.push((bytes, by_dest[start..end].to_vec()));
        start = end;
    }
    // LPT: biggest groups first, each onto the currently lightest shard.
    // Ties break on the group's first move index, keeping the plan a pure
    // function of the batch.
    groups.sort_by_key(|(bytes, idxs)| (std::cmp::Reverse(*bytes), idxs[0]));
    for (bytes, idxs) in groups {
        let lightest = shards
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.bytes, *i))
            .map(|(i, _)| i)
            .expect("workers >= 1");
        shards[lightest].bytes += bytes;
        shards[lightest].moves.extend(idxs);
    }
    shards
}

/// Runs the copy phase: each non-empty shard's payload memcpys on its own
/// scoped thread (or inline when only one shard has work). Safe because
/// destination ranges are distinct bump allocations and source regions are
/// detached (the [`RegionCopier`] contract), and shard partitioning by
/// destination region additionally keeps each worker's stores inside its
/// own regions.
pub(crate) fn run_copy_phase(copier: &RegionCopier<'_>, moves: &[MoveEntry], shards: &[CopyShard]) {
    let busy = shards.iter().filter(|s| !s.moves.is_empty()).count();
    if busy <= 1 {
        for shard in shards {
            for &i in &shard.moves {
                let m = &moves[i as usize];
                copier.copy(m.old_addr, m.new_addr, m.size);
            }
        }
        return;
    }
    std::thread::scope(|s| {
        for shard in shards.iter().filter(|s| !s.moves.is_empty()) {
            s.spawn(move || {
                for &i in &shard.moves {
                    let m = &moves[i as usize];
                    copier.copy(m.old_addr, m.new_addr, m.size);
                }
            });
        }
    });
}

/// Applies the fix-up phase across `workers` scoped threads. Every effect is
/// commutative, so chunk boundaries and interleaving cannot change the final
/// state. Payload copies happen earlier, in the dedicated copy phase
/// ([`run_copy_phase`]); by the time fix-up runs, the bytes have landed.
pub(crate) fn apply_parallel(
    workers: usize,
    records: &mut [Option<ObjectRecord>],
    page_object_counts: &mut [u32],
    page_table: &mut PageTable,
    moves: &[MoveEntry],
    drops: &[DropEntry],
) {
    let workers = workers.max(1);
    let cell = RecordsCell {
        ptr: records.as_mut_ptr(),
        len: records.len(),
    };
    let counts = as_atomic_words(page_object_counts);
    let (dirty, no_need) = page_table.atomic_views();
    let move_chunk = moves.len().div_ceil(workers).max(1);
    let drop_chunk = drops.len().div_ceil(workers).max(1);
    std::thread::scope(|s| {
        for w in 0..workers {
            let cell = &cell;
            let counts = &counts;
            let dirty = &dirty;
            let no_need = &no_need;
            s.spawn(move || {
                let mstart = (w * move_chunk).min(moves.len());
                let mend = ((w + 1) * move_chunk).min(moves.len());
                for m in &moves[mstart..mend] {
                    // SAFETY: slots are unique within the batch; this worker
                    // is the only one holding this slot.
                    let rec = unsafe { &mut *cell.record(m.slot) }
                        .as_mut()
                        .expect("planned move has a record");
                    rec.relocate(m.dest, m.new_addr);
                    if m.bump_age {
                        rec.bump_age();
                    }
                    for p in m.new_first..=m.new_last {
                        dirty.set(p);
                        no_need.clear(p);
                        counts[p as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    for p in m.old_first..=m.old_last {
                        counts[p as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let dstart = (w * drop_chunk).min(drops.len());
                let dend = ((w + 1) * drop_chunk).min(drops.len());
                for d in &drops[dstart..dend] {
                    for p in d.first..=d.last {
                        counts[p as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
}
