//! Heap error type.

use std::error::Error;
use std::fmt;

use crate::{ObjectId, SpaceId};

/// Errors produced by heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeapError {
    /// No free region was available to extend a space. A collector should
    /// run and retry; if it recurs immediately afterwards the heap is truly
    /// exhausted.
    OutOfRegions {
        /// The space that needed to grow.
        space: SpaceId,
    },
    /// A space has hit its region budget (e.g. the young-generation budget).
    SpaceFull {
        /// The space that is full.
        space: SpaceId,
    },
    /// An object id did not resolve to a live object.
    NoSuchObject {
        /// The offending id.
        object: ObjectId,
    },
    /// A space id did not resolve to an existing space.
    NoSuchSpace {
        /// The offending id.
        space: SpaceId,
    },
    /// An object was larger than a region, which the bump allocator cannot
    /// place.
    ObjectTooLarge {
        /// Requested size in bytes.
        size: u64,
        /// Maximum allocatable size (one region).
        max: u64,
    },
    /// The integrity verifier found heap state that breaks an invariant —
    /// evidence of a stale write, memory corruption, or an accounting bug.
    /// Reported, never panicked, so a supervisor can quarantine the heap.
    IntegrityViolation {
        /// Short stable name of the invariant that failed (e.g.
        /// `"header-matches-record"`), the handle tests and ledgers key on.
        invariant: &'static str,
        /// Human-readable description of the specific violation.
        detail: String,
    },
    /// The configured hard heap budget (`--heap-mb`) is exhausted: growing
    /// a space would commit more regions than the budget allows, even after
    /// an emergency full collection.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: u64,
        /// The configured budget, in bytes.
        limit_bytes: u64,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfRegions { space } => {
                write!(f, "no free region available to grow {space}")
            }
            HeapError::SpaceFull { space } => write!(f, "{space} reached its region budget"),
            HeapError::NoSuchObject { object } => write!(f, "{object} is not a live object"),
            HeapError::NoSuchSpace { space } => write!(f, "{space} does not exist"),
            HeapError::ObjectTooLarge { size, max } => {
                write!(
                    f,
                    "object of {size} bytes exceeds the maximum of {max} bytes"
                )
            }
            HeapError::IntegrityViolation { invariant, detail } => {
                write!(f, "heap integrity violation [{invariant}]: {detail}")
            }
            HeapError::OutOfMemory {
                requested,
                limit_bytes,
            } => {
                write!(
                    f,
                    "heap limit of {limit_bytes} bytes exhausted \
                     (allocation of {requested} bytes failed)"
                )
            }
        }
    }
}

impl Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HeapError::OutOfRegions {
            space: SpaceId::new(0),
        };
        assert!(e.to_string().contains("space#0"));
        let e = HeapError::NoSuchObject {
            object: ObjectId::new(5),
        };
        assert!(e.to_string().contains("obj#5"));
        let e = HeapError::ObjectTooLarge { size: 10, max: 5 };
        assert!(e.to_string().contains("10 bytes"));
        let e = HeapError::IntegrityViolation {
            invariant: "header-matches-record",
            detail: "obj#3 header drifted".into(),
        };
        assert!(e.to_string().contains("header-matches-record"));
        assert!(e.to_string().contains("obj#3"));
        let e = HeapError::OutOfMemory {
            requested: 64,
            limit_bytes: 1024,
        };
        assert!(e.to_string().contains("1024 bytes exhausted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeapError>();
    }
}
