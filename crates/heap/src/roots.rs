//! The root table: named GC root slots.
//!
//! Workload hooks park long-lived structures (memtables, caches, vertex
//! state) in root slots; mutator stacks are handled separately by the
//! runtime, which passes frame-rooted objects to [`Heap::mark_live`] as extra
//! roots.
//!
//! [`Heap::mark_live`]: crate::Heap::mark_live

use std::collections::HashMap;

use crate::ObjectId;

/// Identifies one named root slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RootSlotId(u32);

impl RootSlotId {
    /// The raw slot index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// Named root slots, each holding a set of root object ids.
///
/// # Examples
///
/// ```
/// use polm2_heap::{ObjectId, RootTable};
///
/// let mut roots = RootTable::new();
/// let slot = roots.create_slot("memtable");
/// roots.push(slot, ObjectId::new(1));
/// roots.push(slot, ObjectId::new(2));
/// assert_eq!(roots.slot(slot).len(), 2);
/// roots.clear_slot(slot);
/// assert!(roots.slot(slot).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RootTable {
    slots: Vec<Vec<ObjectId>>,
    /// Keyed roots per slot: `set_keyed` replaces in O(1), the pattern for
    /// map-shaped application structures (document tables, key indexes).
    keyed: Vec<HashMap<u64, ObjectId>>,
    names: Vec<String>,
    by_name: HashMap<String, RootSlotId>,
    /// Bumped on every mutation that can change the root *membership*
    /// (push/remove/clear/set_keyed/remove_keyed). Consumers — the heap's
    /// published-LiveSet validity check — compare versions to detect that a
    /// previously computed reachability set may be stale.
    version: u64,
}

impl RootTable {
    /// Creates an empty root table.
    pub fn new() -> Self {
        RootTable::default()
    }

    /// Creates (or finds) the slot named `name`.
    pub fn create_slot(&mut self, name: &str) -> RootSlotId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = RootSlotId(self.slots.len() as u32);
        self.slots.push(Vec::new());
        self.keyed.push(HashMap::new());
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Finds a slot by name.
    pub fn find_slot(&self, name: &str) -> Option<RootSlotId> {
        self.by_name.get(name).copied()
    }

    /// The slot's name.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn name(&self, slot: RootSlotId) -> &str {
        &self.names[slot.0 as usize]
    }

    /// The roots currently held by `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn slot(&self, slot: RootSlotId) -> &[ObjectId] {
        &self.slots[slot.0 as usize]
    }

    /// Adds a root to `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn push(&mut self, slot: RootSlotId, obj: ObjectId) {
        self.version += 1;
        self.slots[slot.0 as usize].push(obj);
    }

    /// Removes one occurrence of `obj` from `slot`; returns whether it was
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn remove(&mut self, slot: RootSlotId, obj: ObjectId) -> bool {
        let v = &mut self.slots[slot.0 as usize];
        if let Some(pos) = v.iter().position(|&o| o == obj) {
            v.swap_remove(pos);
            self.version += 1;
            true
        } else {
            false
        }
    }

    /// Empties `slot` (both plain and keyed roots) and returns the plain
    /// ids it held.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn clear_slot(&mut self, slot: RootSlotId) -> Vec<ObjectId> {
        self.version += 1;
        self.keyed[slot.0 as usize].clear();
        std::mem::take(&mut self.slots[slot.0 as usize])
    }

    /// Sets the keyed root `key` in `slot`, returning the object it
    /// replaced (which, if otherwise unreferenced, is now garbage). O(1) —
    /// the pattern for map-shaped structures like document tables.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn set_keyed(&mut self, slot: RootSlotId, key: u64, obj: ObjectId) -> Option<ObjectId> {
        self.version += 1;
        self.keyed[slot.0 as usize].insert(key, obj)
    }

    /// Removes the keyed root `key` from `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn remove_keyed(&mut self, slot: RootSlotId, key: u64) -> Option<ObjectId> {
        let removed = self.keyed[slot.0 as usize].remove(&key);
        if removed.is_some() {
            self.version += 1;
        }
        removed
    }

    /// The keyed root at `key` in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist.
    pub fn keyed(&self, slot: RootSlotId, key: u64) -> Option<ObjectId> {
        self.keyed[slot.0 as usize].get(&key).copied()
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Total number of root references across all slots (plain + keyed).
    pub fn root_count(&self) -> usize {
        self.slots.iter().map(Vec::len).sum::<usize>()
            + self.keyed.iter().map(HashMap::len).sum::<usize>()
    }

    /// The membership version: bumped by every mutation that can change
    /// which objects are roots. Two equal versions guarantee the root set
    /// has not changed in between.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Iterates over every root id in every slot (plain + keyed).
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.slots
            .iter()
            .flatten()
            .copied()
            .chain(self.keyed.iter().flat_map(|m| m.values().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_slot_is_idempotent() {
        let mut r = RootTable::new();
        let a = r.create_slot("x");
        let b = r.create_slot("x");
        assert_eq!(a, b);
        assert_eq!(r.slot_count(), 1);
        assert_eq!(r.name(a), "x");
        assert_eq!(r.find_slot("x"), Some(a));
        assert_eq!(r.find_slot("y"), None);
    }

    #[test]
    fn push_remove_clear() {
        let mut r = RootTable::new();
        let s = r.create_slot("cache");
        r.push(s, ObjectId::new(1));
        r.push(s, ObjectId::new(2));
        assert_eq!(r.root_count(), 2);
        assert!(r.remove(s, ObjectId::new(1)));
        assert!(!r.remove(s, ObjectId::new(1)));
        let drained = r.clear_slot(s);
        assert_eq!(drained, vec![ObjectId::new(2)]);
        assert_eq!(r.root_count(), 0);
    }

    #[test]
    fn keyed_roots_replace_in_place() {
        let mut r = RootTable::new();
        let s = r.create_slot("docs");
        assert_eq!(r.set_keyed(s, 7, ObjectId::new(1)), None);
        assert_eq!(r.set_keyed(s, 7, ObjectId::new(2)), Some(ObjectId::new(1)));
        assert_eq!(r.keyed(s, 7), Some(ObjectId::new(2)));
        assert_eq!(r.root_count(), 1);
        assert!(r.iter().any(|o| o == ObjectId::new(2)));
        assert_eq!(r.remove_keyed(s, 7), Some(ObjectId::new(2)));
        assert_eq!(r.keyed(s, 7), None);
        assert_eq!(r.root_count(), 0);
    }

    #[test]
    fn clear_slot_drops_keyed_roots_too() {
        let mut r = RootTable::new();
        let s = r.create_slot("docs");
        r.push(s, ObjectId::new(1));
        r.set_keyed(s, 9, ObjectId::new(2));
        let plain = r.clear_slot(s);
        assert_eq!(plain, vec![ObjectId::new(1)]);
        assert_eq!(r.root_count(), 0);
    }

    #[test]
    fn iter_spans_slots() {
        let mut r = RootTable::new();
        let a = r.create_slot("a");
        let b = r.create_slot("b");
        r.push(a, ObjectId::new(10));
        r.push(b, ObjectId::new(20));
        let mut all: Vec<u64> = r.iter().map(|o| o.raw()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![10, 20]);
    }
}
