//! Cumulative heap statistics.

/// Cumulative counters maintained by the heap.
///
/// `allocated_*` only ever grow; occupancy numbers live on the heap itself
/// ([`Heap::committed_bytes`], [`Heap::used_bytes`]) because they are derived
/// from region state.
///
/// [`Heap::committed_bytes`]: crate::Heap::committed_bytes
/// [`Heap::used_bytes`]: crate::Heap::used_bytes
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated since heap creation.
    pub allocated_objects: u64,
    /// Bytes allocated since heap creation.
    pub allocated_bytes: u64,
    /// Objects reclaimed by sweeps.
    pub freed_objects: u64,
    /// Bytes reclaimed by sweeps.
    pub freed_bytes: u64,
    /// Objects relocated (promotion + compaction copies).
    pub relocated_objects: u64,
    /// Bytes relocated.
    pub relocated_bytes: u64,
}

impl HeapStats {
    /// Live object count implied by the counters.
    pub fn live_objects(&self) -> u64 {
        self.allocated_objects - self.freed_objects
    }

    /// Live byte count implied by the counters.
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes - self.freed_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_live_counts() {
        let s = HeapStats {
            allocated_objects: 10,
            allocated_bytes: 1_000,
            freed_objects: 4,
            freed_bytes: 400,
            relocated_objects: 2,
            relocated_bytes: 128,
        };
        assert_eq!(s.live_objects(), 6);
        assert_eq!(s.live_bytes(), 600);
    }
}
