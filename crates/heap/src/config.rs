//! Heap geometry configuration.

use std::fmt;

use crate::backend::BackendKind;

/// When the heap's integrity verifier runs (the `--verify-heap` knob).
///
/// Verification is strictly read-only: trajectories are bit-identical at
/// every mode, on either backend, at any worker count. The modes only trade
/// detection latency against mutator overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Never verify (the historical behavior, zero overhead).
    #[default]
    Off,
    /// Verify at every safepoint that performed a collection — the cheap
    /// production setting: corruption is caught before its effects spread
    /// through a copy phase.
    Gc,
    /// Verify at every allocation safepoint — the chaos-test setting: a
    /// planted fault is detected at the very next safepoint.
    Full,
}

impl VerifyMode {
    /// Parses a CLI value (`off`, `gc`, or `full`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(VerifyMode::Off),
            "gc" => Some(VerifyMode::Gc),
            "full" => Some(VerifyMode::Full),
            _ => None,
        }
    }
}

impl fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VerifyMode::Off => "off",
            VerifyMode::Gc => "gc",
            VerifyMode::Full => "full",
        })
    }
}

/// Geometry of the simulated heap.
///
/// The paper's evaluation fixes a 12 GiB heap with a 2 GiB young generation.
/// The simulation scales everything down (default 256 MiB / 32 MiB) and
/// scales workload object counts accordingly; ratios, not absolute sizes,
/// drive every figure.
///
/// # Examples
///
/// ```
/// use polm2_heap::HeapConfig;
///
/// let cfg = HeapConfig::default();
/// assert_eq!(cfg.total_bytes % cfg.region_bytes, 0);
/// assert_eq!(cfg.region_bytes % cfg.page_bytes, 0);
/// assert!(cfg.young_bytes < cfg.total_bytes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapConfig {
    /// Total committed heap, in bytes.
    pub total_bytes: u64,
    /// Young-generation budget, in bytes (the `-Xmn` analogue).
    pub young_bytes: u64,
    /// Region size, in bytes. Spaces grow region by region.
    pub region_bytes: u64,
    /// Page size, in bytes. Pages carry dirty/no-need bits for the Dumper.
    pub page_bytes: u64,
    /// Which memory backend the heap runs on. [`BackendKind::Sim`] keeps the
    /// historical pure-address-arithmetic behavior; [`BackendKind::Real`]
    /// backs every region with real page-aligned memory. Logical layout —
    /// and therefore every profile, snapshot, and GcWork ledger — is
    /// identical either way.
    pub backend: BackendKind,
    /// TLAB window size for the real backend's allocation fast path, in
    /// bytes (the `--tlab-kb` knob). Clamped to the region size; ignored by
    /// the sim backend. Never affects logical placement, only how often the
    /// real backend's write window refills.
    pub tlab_bytes: u64,
    /// When the integrity verifier runs (the `--verify-heap` knob).
    /// Read-only at every setting; see [`VerifyMode`].
    pub verify: VerifyMode,
    /// Optional hard commit budget in bytes (the `--heap-mb` knob): growing
    /// a space beyond this many committed bytes fails with
    /// [`HeapError::OutOfMemory`] instead of drawing from the region pool.
    /// `None` (the default) keeps the historical behavior where
    /// `total_bytes` alone bounds the heap.
    ///
    /// [`HeapError::OutOfMemory`]: crate::HeapError::OutOfMemory
    pub limit_bytes: Option<u64>,
}

impl HeapConfig {
    /// The default evaluation geometry: 256 MiB heap, 32 MiB young,
    /// 1 MiB regions, 4 KiB pages — a 1:48 scale model of the paper's
    /// 12 GiB / 2 GiB setup.
    pub fn paper_scaled() -> Self {
        HeapConfig {
            total_bytes: 256 << 20,
            young_bytes: 32 << 20,
            region_bytes: 1 << 20,
            page_bytes: 4 << 10,
            backend: BackendKind::Sim,
            tlab_bytes: Self::DEFAULT_TLAB_BYTES,
            verify: VerifyMode::Off,
            limit_bytes: None,
        }
    }

    /// A small geometry for unit tests: 4 MiB heap, 1 MiB young,
    /// 256 KiB regions, 4 KiB pages.
    pub fn small() -> Self {
        HeapConfig {
            total_bytes: 4 << 20,
            young_bytes: 1 << 20,
            region_bytes: 256 << 10,
            page_bytes: 4 << 10,
            backend: BackendKind::Sim,
            tlab_bytes: Self::DEFAULT_TLAB_BYTES,
            verify: VerifyMode::Off,
            limit_bytes: None,
        }
    }

    /// Default TLAB window size (256 KiB): large enough that the gate
    /// workloads refill a handful of times per region, small enough that a
    /// window never outlives its usefulness across survivor turnover.
    pub const DEFAULT_TLAB_BYTES: u64 = 256 << 10;

    /// This geometry with the given memory backend (chainable).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// This geometry with the given TLAB window size in bytes (chainable).
    pub fn with_tlab_bytes(mut self, tlab_bytes: u64) -> Self {
        self.tlab_bytes = tlab_bytes;
        self
    }

    /// This geometry with the given verifier mode (chainable).
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }

    /// This geometry with the given hard commit budget in bytes (chainable).
    pub fn with_limit_bytes(mut self, limit_bytes: u64) -> Self {
        self.limit_bytes = Some(limit_bytes);
        self
    }

    /// Number of regions in the pool.
    pub fn region_count(&self) -> u32 {
        (self.total_bytes / self.region_bytes) as u32
    }

    /// Number of pages per region.
    pub fn pages_per_region(&self) -> u32 {
        (self.region_bytes / self.page_bytes) as u32
    }

    /// Total number of pages.
    pub fn page_count(&self) -> u32 {
        self.region_count() * self.pages_per_region()
    }

    /// Number of regions the young generation may hold.
    pub fn young_region_budget(&self) -> u32 {
        (self.young_bytes / self.region_bytes) as u32
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if sizes are zero, not multiples of each other, or
    /// the young budget does not fit in the heap.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_bytes == 0 || self.region_bytes == 0 || self.total_bytes == 0 {
            return Err("heap sizes must be non-zero".into());
        }
        if !self.region_bytes.is_multiple_of(self.page_bytes) {
            return Err("region size must be a multiple of the page size".into());
        }
        if !self.total_bytes.is_multiple_of(self.region_bytes) {
            return Err("heap size must be a multiple of the region size".into());
        }
        if !self.young_bytes.is_multiple_of(self.region_bytes) {
            return Err("young size must be a multiple of the region size".into());
        }
        if self.young_bytes == 0 || self.young_bytes >= self.total_bytes {
            return Err("young generation must be non-empty and smaller than the heap".into());
        }
        if self.tlab_bytes == 0 {
            return Err("TLAB window size must be non-zero".into());
        }
        if let Some(limit) = self.limit_bytes {
            if limit < self.region_bytes {
                return Err("heap limit must cover at least one region".into());
            }
        }
        Ok(())
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_valid() {
        assert!(HeapConfig::default().validate().is_ok());
        assert!(HeapConfig::small().validate().is_ok());
    }

    #[test]
    fn derived_counts() {
        let cfg = HeapConfig::small();
        assert_eq!(cfg.region_count(), 16);
        assert_eq!(cfg.pages_per_region(), 64);
        assert_eq!(cfg.page_count(), 1024);
        assert_eq!(cfg.young_region_budget(), 4);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut cfg = HeapConfig::small();
        cfg.region_bytes = 100_000; // not a multiple of page size
        assert!(cfg.validate().is_err());

        let mut cfg = HeapConfig::small();
        cfg.young_bytes = cfg.total_bytes;
        assert!(cfg.validate().is_err());

        let mut cfg = HeapConfig::small();
        cfg.young_bytes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = HeapConfig::small();
        cfg.total_bytes = 0;
        assert!(cfg.validate().is_err());

        let cfg = HeapConfig::small().with_tlab_bytes(0);
        assert!(cfg.validate().is_err());

        // A budget smaller than one region could never grow any space.
        let cfg = HeapConfig::small().with_limit_bytes(1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn verify_mode_parses_and_displays() {
        assert_eq!(VerifyMode::parse("off"), Some(VerifyMode::Off));
        assert_eq!(VerifyMode::parse("gc"), Some(VerifyMode::Gc));
        assert_eq!(VerifyMode::parse("full"), Some(VerifyMode::Full));
        assert_eq!(VerifyMode::parse("sometimes"), None);
        assert_eq!(VerifyMode::Gc.to_string(), "gc");
    }

    #[test]
    fn verify_and_limit_chainables() {
        let cfg = HeapConfig::small()
            .with_verify(VerifyMode::Full)
            .with_limit_bytes(2 << 20);
        assert_eq!(cfg.verify, VerifyMode::Full);
        assert_eq!(cfg.limit_bytes, Some(2 << 20));
        assert!(cfg.validate().is_ok());
    }
}
