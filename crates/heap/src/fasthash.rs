//! A fast hasher for the heap's id-keyed tables.
//!
//! Object/region ids are dense integers; the default SipHash is overkill and
//! dominates marking cost at simulation scale. `IdHasher` is a Fibonacci
//! multiply-mix — not DoS-resistant, which is fine for a simulator whose
//! keys it generates itself.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHasher {
    state: u64,
}

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (used for compound keys): FNV-style fold.
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.state = (self.state ^ i)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type BuildIdHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by simulation ids.
pub type IdHashMap<K, V> = std::collections::HashMap<K, V, BuildIdHasher>;

/// A `HashSet` of simulation ids.
pub type IdHashSet<K> = std::collections::HashSet<K, BuildIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut set = IdHashSet::default();
        for i in 0..10_000u64 {
            set.insert(crate::ObjectId::new(i));
        }
        assert_eq!(set.len(), 10_000);
        assert!(set.contains(&crate::ObjectId::new(42)));
    }

    #[test]
    fn map_round_trip() {
        let mut map: IdHashMap<crate::ObjectId, u32> = IdHashMap::default();
        map.insert(crate::ObjectId::new(7), 1);
        map.insert(crate::ObjectId::new(7), 2);
        assert_eq!(map.len(), 1);
        assert_eq!(map[&crate::ObjectId::new(7)], 2);
    }
}
