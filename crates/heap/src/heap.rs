//! The heap façade: allocation, mutation, marking, relocation, reclamation.

use std::collections::VecDeque;

use crate::fasthash::{IdHashMap, IdHashSet};

use crate::{
    Addr, ClassId, ClassRegistry, GenId, HeapConfig, HeapError, HeapStats, ObjectId, ObjectRecord,
    PageTable, Region, RegionId, RootTable, SiteId, Space, SpaceId,
};

/// The result of a marking pass: which objects are reachable and how much
/// they weigh.
///
/// Produced by [`Heap::mark_live`]; consumed by collectors (to decide what to
/// copy or sweep), by the Dumper's no-need walk, and by the Analyzer's
/// snapshot contents.
#[derive(Debug, Clone)]
pub struct LiveSet {
    live: IdHashSet<ObjectId>,
    /// Live objects in deterministic (discovery) order.
    order: Vec<ObjectId>,
    live_bytes: u64,
    /// Objects traced (== `order.len()`), kept separate for cost accounting.
    traced_objects: u64,
}

impl LiveSet {
    /// True if `obj` was reachable at mark time.
    pub fn contains(&self, obj: ObjectId) -> bool {
        self.live.contains(&obj)
    }

    /// Live objects in discovery order (roots first, then BFS).
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.order.iter().copied()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing was reachable.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total bytes of live objects.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of objects traced during the mark (equal to [`len`]).
    ///
    /// [`len`]: LiveSet::len
    pub fn traced_objects(&self) -> u64 {
        self.traced_objects
    }
}

/// The simulated managed heap.
///
/// See the [crate documentation](crate) for the layout model and an example.
#[derive(Debug)]
pub struct Heap {
    config: HeapConfig,
    classes: ClassRegistry,
    roots: RootTable,
    objects: IdHashMap<ObjectId, ObjectRecord>,
    next_object: u64,
    regions: Vec<Region>,
    /// Free pool; regions are handed out lowest-id first.
    free_regions: Vec<RegionId>,
    spaces: Vec<Space>,
    /// Regions detached from their space for evacuation (still assigned, not
    /// allocatable). See [`Heap::begin_evacuation`].
    evacuating: Vec<RegionId>,
    page_table: PageTable,
    mark_epoch: u32,
    /// Remembered set: young objects referenced from non-young objects
    /// (appended by the `add_ref` write barrier, pruned after each young
    /// collection). Lets minor collections avoid tracing the old spaces.
    remembered: Vec<ObjectId>,
    stats: HeapStats,
}

impl Heap {
    /// The space id of the always-present young generation.
    pub const YOUNG_SPACE: SpaceId = SpaceId::new(0);

    /// Creates a heap with the given geometry. The young generation (space 0)
    /// exists from the start, budgeted to `config.young_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`HeapConfig::validate`].
    pub fn new(config: HeapConfig) -> Self {
        config.validate().expect("invalid heap configuration");
        let region_count = config.region_count();
        let pages_per_region = config.pages_per_region();
        let regions: Vec<Region> = (0..region_count)
            .map(|i| Region::new(RegionId::new(i), crate::PageId::new(i * pages_per_region)))
            .collect();
        let free_regions: Vec<RegionId> = (0..region_count).rev().map(RegionId::new).collect();
        let mut page_table = PageTable::new(
            config.page_count(),
            pages_per_region,
            config.page_bytes as u32,
        );
        // Unassigned regions hold no live data.
        for p in 0..config.page_count() {
            page_table.set_no_need(p, true);
        }
        let young = Space::new(
            Heap::YOUNG_SPACE,
            GenId::YOUNG,
            Some(config.young_region_budget()),
        );
        Heap {
            config,
            classes: ClassRegistry::new(),
            roots: RootTable::new(),
            objects: IdHashMap::default(),
            next_object: 0,
            regions,
            free_regions,
            spaces: vec![young],
            evacuating: Vec::new(),
            page_table,
            mark_epoch: 0,
            remembered: Vec::new(),
            stats: HeapStats::default(),
        }
    }

    /// The heap geometry.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// The class intern table.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Mutable access to the class intern table.
    pub fn classes_mut(&mut self) -> &mut ClassRegistry {
        &mut self.classes
    }

    /// The root table.
    pub fn roots(&self) -> &RootTable {
        &self.roots
    }

    /// Mutable access to the root table.
    pub fn roots_mut(&mut self) -> &mut RootTable {
        &mut self.roots
    }

    /// Cumulative allocation/reclamation counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// The kernel-style page table (dirty / no-need bits).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable access to the page table (used by the Dumper to clear dirty
    /// bits after a snapshot).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    // ------------------------------------------------------------------
    // Spaces
    // ------------------------------------------------------------------

    /// Creates a new space representing logical generation `gen`.
    ///
    /// `region_budget` bounds the space (young is bounded; older spaces are
    /// usually unbounded, competing for the shared pool).
    pub fn create_space(&mut self, gen: GenId, region_budget: Option<u32>) -> SpaceId {
        let id = SpaceId::new(self.spaces.len() as u32);
        self.spaces.push(Space::new(id, gen, region_budget));
        id
    }

    /// All spaces, creation order.
    pub fn spaces(&self) -> &[Space] {
        &self.spaces
    }

    /// One space.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    pub fn space(&self, id: SpaceId) -> Result<&Space, HeapError> {
        self.spaces
            .get(id.index())
            .ok_or(HeapError::NoSuchSpace { space: id })
    }

    /// One region.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (region ids are created only by this
    /// heap, so an out-of-range id is a logic error).
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// All regions (free and assigned).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions in the free pool.
    pub fn free_region_count(&self) -> u32 {
        self.free_regions.len() as u32
    }

    // ------------------------------------------------------------------
    // Allocation & mutation
    // ------------------------------------------------------------------

    /// Allocates an object of `size` bytes of class `class` from allocation
    /// site `site` into `space`.
    ///
    /// # Errors
    ///
    /// * [`HeapError::ObjectTooLarge`] if `size` exceeds one region.
    /// * [`HeapError::SpaceFull`] if the space is at its region budget —
    ///   the young generation signals a collection this way.
    /// * [`HeapError::OutOfRegions`] if the shared pool is empty.
    /// * [`HeapError::NoSuchSpace`] for an unknown space.
    pub fn allocate(
        &mut self,
        class: ClassId,
        size: u32,
        site: SiteId,
        space: SpaceId,
    ) -> Result<ObjectId, HeapError> {
        let gen = self.space(space)?.gen();
        let addr = self.bump_into(space, size)?;
        let id = ObjectId::new(self.next_object);
        self.next_object += 1;
        let record = ObjectRecord::new(id, class, site, size, space, gen, addr);
        self.regions[addr.region.index()].push_object(id);
        // Objects allocated after the last mark are conservatively counted
        // live; marking recomputes the truth.
        let live = self.regions[addr.region.index()].live_bytes();
        self.regions[addr.region.index()].set_live_bytes(live + size);
        self.page_table.mark_dirty_range(addr, size);
        self.page_table.clear_no_need_range(addr, size);
        self.objects.insert(id, record);
        self.stats.allocated_objects += 1;
        self.stats.allocated_bytes += u64::from(size);
        Ok(id)
    }

    fn bump_into(&mut self, space: SpaceId, size: u32) -> Result<Addr, HeapError> {
        let capacity = self.config.region_bytes as u32;
        if size > capacity {
            return Err(HeapError::ObjectTooLarge {
                size: u64::from(size),
                max: u64::from(capacity),
            });
        }
        if space.index() >= self.spaces.len() {
            return Err(HeapError::NoSuchSpace { space });
        }
        // Try the current allocation region.
        if let Some(region) = self.spaces[space.index()].current_region() {
            if let Some(offset) = self.regions[region.index()].try_bump(size, capacity) {
                return Ok(Addr { region, offset });
            }
        }
        // Acquire a fresh region.
        if self.spaces[space.index()].at_budget() {
            return Err(HeapError::SpaceFull { space });
        }
        let region = self
            .free_regions
            .pop()
            .ok_or(HeapError::OutOfRegions { space })?;
        self.regions[region.index()].assign(space);
        self.spaces[space.index()].push_region(region);
        let offset = self.regions[region.index()]
            .try_bump(size, capacity)
            .expect("fresh region fits a validated size");
        Ok(Addr { region, offset })
    }

    /// The record of a live object.
    pub fn object(&self, id: ObjectId) -> Option<&ObjectRecord> {
        self.objects.get(&id)
    }

    /// Number of live object records.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Adds a reference edge `parent -> child` (a field write: the parent's
    /// memory is dirtied).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if either end is not live.
    pub fn add_ref(&mut self, parent: ObjectId, child: ObjectId) -> Result<(), HeapError> {
        if !self.objects.contains_key(&child) {
            return Err(HeapError::NoSuchObject { object: child });
        }
        let record = self
            .objects
            .get_mut(&parent)
            .ok_or(HeapError::NoSuchObject { object: parent })?;
        record.refs_mut().push(child);
        let (addr, size, parent_space) = (record.addr(), record.size(), record.space());
        self.page_table.mark_dirty_range(addr, size);
        // Generational write barrier: remember old->young edges so minor
        // collections need not trace the old spaces.
        if parent_space != Heap::YOUNG_SPACE {
            if let Some(child_rec) = self.objects.get(&child) {
                if child_rec.space() == Heap::YOUNG_SPACE {
                    self.remembered.push(child);
                }
            }
        }
        Ok(())
    }

    /// Removes one occurrence of the edge `parent -> child`; returns whether
    /// it was present.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `parent` is not live.
    pub fn remove_ref(&mut self, parent: ObjectId, child: ObjectId) -> Result<bool, HeapError> {
        let record = self
            .objects
            .get_mut(&parent)
            .ok_or(HeapError::NoSuchObject { object: parent })?;
        let refs = record.refs_mut();
        let removed = if let Some(pos) = refs.iter().position(|&o| o == child) {
            refs.swap_remove(pos);
            true
        } else {
            false
        };
        if removed {
            let (addr, size) = (record.addr(), record.size());
            self.page_table.mark_dirty_range(addr, size);
        }
        Ok(removed)
    }

    /// Records a plain field write to `obj` (dirties its pages without
    /// changing the reference graph) — e.g. updating a counter inside a
    /// vertex object.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `obj` is not live.
    pub fn write_field(&mut self, obj: ObjectId) -> Result<(), HeapError> {
        let record = self
            .objects
            .get(&obj)
            .ok_or(HeapError::NoSuchObject { object: obj })?;
        self.page_table
            .mark_dirty_range(record.addr(), record.size());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Marking
    // ------------------------------------------------------------------

    /// Marks every object reachable from the root table plus `extra_roots`
    /// (mutator stack roots supplied by the runtime).
    ///
    /// Updates each assigned region's `live_bytes` so collectors and the
    /// no-need walk can reason about occupancy.
    pub fn mark_live(&mut self, extra_roots: &[ObjectId]) -> LiveSet {
        self.mark_epoch += 1;
        let mut queue: VecDeque<ObjectId> = VecDeque::new();
        let mut order: Vec<ObjectId> = Vec::new();
        let mut live: IdHashSet<ObjectId> = IdHashSet::default();
        let mut live_bytes: u64 = 0;
        let mut region_live: IdHashMap<RegionId, u32> = IdHashMap::default();

        for id in self.roots.iter().chain(extra_roots.iter().copied()) {
            if let Some(rec) = self.objects.get(&id) {
                if live.insert(id) {
                    order.push(id);
                    live_bytes += u64::from(rec.size());
                    *region_live.entry(rec.addr().region).or_insert(0) += rec.size();
                    queue.push_back(id);
                }
            }
        }
        let mut scratch: Vec<ObjectId> = Vec::new();
        while let Some(id) = queue.pop_front() {
            let rec = self.objects.get(&id).expect("queued objects are live");
            // One reusable scratch buffer instead of a fresh clone per node.
            scratch.clear();
            scratch.extend_from_slice(rec.refs());
            for &child in &scratch {
                if let Some(child_rec) = self.objects.get(&child) {
                    if live.insert(child) {
                        order.push(child);
                        live_bytes += u64::from(child_rec.size());
                        *region_live.entry(child_rec.addr().region).or_insert(0) +=
                            child_rec.size();
                        queue.push_back(child);
                    }
                }
            }
        }

        // Refresh per-region live-byte accounting.
        for region in &mut self.regions {
            if region.space().is_some() {
                region.set_live_bytes(region_live.get(&region.id()).copied().unwrap_or(0));
            }
        }

        let traced = order.len() as u64;
        LiveSet {
            live,
            order,
            live_bytes,
            traced_objects: traced,
        }
    }

    /// Marks only the *young* generation: everything outside young is
    /// assumed live (the generational bargain), and old->young edges come
    /// from the remembered set maintained by the `add_ref` write barrier.
    /// The returned [`LiveSet`] covers young objects only — exactly what a
    /// minor collection needs.
    ///
    /// Prune the remembered set with [`prune_remembered`](Heap::prune_remembered)
    /// once the collection has relocated or dropped every young object.
    pub fn mark_live_young(&mut self, extra_roots: &[ObjectId]) -> LiveSet {
        self.mark_epoch += 1;
        let mut queue: VecDeque<ObjectId> = VecDeque::new();
        let mut order: Vec<ObjectId> = Vec::new();
        let mut live: IdHashSet<ObjectId> = IdHashSet::default();
        let mut live_bytes: u64 = 0;
        let mut region_live: IdHashMap<RegionId, u32> = IdHashMap::default();

        let remembered = std::mem::take(&mut self.remembered);
        {
            let mut push_young = |id: ObjectId,
                                  objects: &IdHashMap<ObjectId, ObjectRecord>,
                                  queue: &mut VecDeque<ObjectId>| {
                if let Some(rec) = objects.get(&id) {
                    if rec.space() == Heap::YOUNG_SPACE && live.insert(id) {
                        order.push(id);
                        live_bytes += u64::from(rec.size());
                        *region_live.entry(rec.addr().region).or_insert(0) += rec.size();
                        queue.push_back(id);
                    }
                }
            };
            for id in self
                .roots
                .iter()
                .chain(extra_roots.iter().copied())
                .chain(remembered.iter().copied())
            {
                push_young(id, &self.objects, &mut queue);
            }
            let mut scratch: Vec<ObjectId> = Vec::new();
            while let Some(id) = queue.pop_front() {
                let rec = self.objects.get(&id).expect("queued objects are live");
                scratch.clear();
                scratch.extend_from_slice(rec.refs());
                for &child in &scratch {
                    push_young(child, &self.objects, &mut queue);
                }
            }
        }
        self.remembered = remembered;

        for region in &mut self.regions {
            if region.space() == Some(Heap::YOUNG_SPACE) {
                region.set_live_bytes(region_live.get(&region.id()).copied().unwrap_or(0));
            }
        }

        let traced = order.len() as u64;
        LiveSet {
            live,
            order,
            live_bytes,
            traced_objects: traced,
        }
    }

    /// Prunes the remembered set after a young collection: entries whose
    /// object died or left the young generation are dropped, duplicates
    /// collapse.
    pub fn prune_remembered(&mut self) {
        let objects = &self.objects;
        let mut seen: IdHashSet<ObjectId> = IdHashSet::default();
        self.remembered.retain(|&id| {
            objects.get(&id).map(|r| r.space()) == Some(Heap::YOUNG_SPACE) && seen.insert(id)
        });
    }

    /// Current remembered-set length (diagnostics).
    pub fn remembered_len(&self) -> usize {
        self.remembered.len()
    }

    /// Adds `obj` to the remembered set if it is a young object. Collectors
    /// call this for the young children of objects they promote — those
    /// edges become old->young without passing through the `add_ref`
    /// barrier.
    pub fn remember_if_young(&mut self, obj: ObjectId) {
        if self.objects.get(&obj).map(|r| r.space()) == Some(Heap::YOUNG_SPACE) {
            self.remembered.push(obj);
        }
    }

    /// The current mark epoch (increments on every [`mark_live`]).
    ///
    /// [`mark_live`]: Heap::mark_live
    pub fn mark_epoch(&self) -> u32 {
        self.mark_epoch
    }

    // ------------------------------------------------------------------
    // Relocation & reclamation (collector back-end)
    // ------------------------------------------------------------------

    /// Relocates `obj` into `dest` (promotion or compaction copy). Returns
    /// the number of bytes copied.
    ///
    /// The object keeps its id and identity hash; its address changes and the
    /// destination pages are dirtied, as a real copying collector would.
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchObject`] if `obj` is not live.
    /// * Any allocation error from the destination space.
    pub fn relocate(&mut self, obj: ObjectId, dest: SpaceId) -> Result<u32, HeapError> {
        let (size, old_addr) = {
            let rec = self
                .objects
                .get(&obj)
                .ok_or(HeapError::NoSuchObject { object: obj })?;
            (rec.size(), rec.addr())
        };
        let new_addr = self.bump_into(dest, size)?;
        self.regions[new_addr.region.index()].push_object(obj);
        // The source region keeps a stale list entry (see `drop_object`);
        // relocation sources are always released or purged by the collector.
        // Keep per-region live accounting fresh: only live objects are
        // relocated, so the bytes move from the source to the destination.
        let src_live = self.regions[old_addr.region.index()].live_bytes();
        self.regions[old_addr.region.index()].set_live_bytes(src_live.saturating_sub(size));
        let dst_live = self.regions[new_addr.region.index()].live_bytes();
        self.regions[new_addr.region.index()].set_live_bytes(dst_live + size);
        self.page_table.mark_dirty_range(new_addr, size);
        self.page_table.clear_no_need_range(new_addr, size);
        let rec = self.objects.get_mut(&obj).expect("checked above");
        rec.relocate(dest, new_addr);
        self.stats.relocated_objects += 1;
        self.stats.relocated_bytes += u64::from(size);
        Ok(size)
    }

    /// Increments the young-generation age of `obj` and returns the new age.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `obj` is not live.
    pub fn bump_age(&mut self, obj: ObjectId) -> Result<u8, HeapError> {
        self.objects
            .get_mut(&obj)
            .map(|r| r.bump_age())
            .ok_or(HeapError::NoSuchObject { object: obj })
    }

    /// Removes a dead object's record and accounts the reclaimed bytes.
    ///
    /// The caller (a collector's sweep) is responsible for only dropping
    /// objects that the latest mark proved unreachable.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `obj` is not live.
    pub fn drop_object(&mut self, obj: ObjectId) -> Result<u32, HeapError> {
        let rec = self
            .objects
            .remove(&obj)
            .ok_or(HeapError::NoSuchObject { object: obj })?;
        // The region's object list keeps a stale entry; collectors purge
        // stale entries in bulk ([`purge_region_objects`]) or release the
        // region outright. Per-object list surgery would make sweeps
        // quadratic in region population.
        //
        // [`purge_region_objects`]: Heap::purge_region_objects
        self.stats.freed_objects += 1;
        self.stats.freed_bytes += u64::from(rec.size());
        Ok(rec.size())
    }

    /// Releases `region` back to the free pool and marks all of its pages
    /// no-need.
    ///
    /// # Panics
    ///
    /// Panics if the region still contains live object records; collectors
    /// must evacuate or drop them first. Stale list entries are fine.
    pub fn release_region(&mut self, region: RegionId) {
        let live = self.live_objects_in_region(region);
        assert!(
            live.is_empty(),
            "released region {region} still holds {} live objects",
            live.len()
        );
        let r = &mut self.regions[region.index()];
        if let Some(space) = r.space() {
            self.spaces[space.index()].remove_region(region);
        }
        r.release();
        let first = self.regions[region.index()].first_page().raw();
        for p in first..first + self.config.pages_per_region() {
            self.page_table.set_no_need(p, true);
        }
        self.free_regions.push(region);
    }

    /// Detaches every region of `space` for evacuation.
    ///
    /// The regions stay assigned (their objects remain addressable) but the
    /// space's region list empties, so subsequent allocation into the space
    /// starts on fresh regions — the to-space of a copying collection. The
    /// collector must then [`relocate`](Heap::relocate) survivors and
    /// [`drop_object`](Heap::drop_object) the dead, after which
    /// [`finish_evacuation`](Heap::finish_evacuation) releases the sources.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    ///
    /// # Panics
    ///
    /// Panics if an evacuation is already in progress.
    pub fn begin_evacuation(&mut self, space: SpaceId) -> Result<Vec<RegionId>, HeapError> {
        assert!(self.evacuating.is_empty(), "evacuation already in progress");
        if space.index() >= self.spaces.len() {
            return Err(HeapError::NoSuchSpace { space });
        }
        let regions = self.spaces[space.index()].take_regions();
        self.evacuating = regions.clone();
        Ok(regions)
    }

    /// Detaches specific regions of `space` for evacuation (incremental
    /// compaction picks its victims; see [`begin_evacuation`] for the
    /// whole-space variant and the protocol).
    ///
    /// [`begin_evacuation`]: Heap::begin_evacuation
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    ///
    /// # Panics
    ///
    /// Panics if an evacuation is already in progress or a region does not
    /// belong to `space`.
    pub fn begin_evacuation_of(
        &mut self,
        space: SpaceId,
        regions: &[RegionId],
    ) -> Result<(), HeapError> {
        assert!(self.evacuating.is_empty(), "evacuation already in progress");
        if space.index() >= self.spaces.len() {
            return Err(HeapError::NoSuchSpace { space });
        }
        for &r in regions {
            assert_eq!(
                self.regions[r.index()].space(),
                Some(space),
                "evacuation victim {r} does not belong to {space}"
            );
            self.spaces[space.index()].remove_region(r);
        }
        self.evacuating = regions.to_vec();
        Ok(())
    }

    /// Releases all evacuated regions back to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if any evacuated region still holds object records — the
    /// collector failed to relocate or drop something.
    pub fn finish_evacuation(&mut self) {
        let regions = std::mem::take(&mut self.evacuating);
        for region in regions {
            self.release_region(region);
        }
    }

    /// The regions currently detached for evacuation.
    pub fn evacuating_regions(&self) -> &[RegionId] {
        &self.evacuating
    }

    /// Objects currently residing in `space`, region by region in allocation
    /// order. Stale list entries (dead or relocated-away objects) are
    /// filtered out.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    pub fn objects_in_space(&self, space: SpaceId) -> Result<Vec<ObjectId>, HeapError> {
        let s = self.space(space)?;
        let mut out = Vec::new();
        for &region in s.regions() {
            for &obj in self.regions[region.index()].objects() {
                if self.objects.get(&obj).map(|r| r.addr().region) == Some(region) {
                    out.push(obj);
                }
            }
        }
        Ok(out)
    }

    /// Live objects currently residing in `region` (stale entries filtered).
    pub fn live_objects_in_region(&self, region: RegionId) -> Vec<ObjectId> {
        self.regions[region.index()]
            .objects()
            .iter()
            .copied()
            .filter(|&obj| self.objects.get(&obj).map(|r| r.addr().region) == Some(region))
            .collect()
    }

    /// Rebuilds `region`'s object list, dropping stale entries — O(list
    /// length), done once per region per sweep.
    pub fn purge_region_objects(&mut self, region: RegionId) {
        let objects = &self.objects;
        self.regions[region.index()]
            .retain_objects(|obj| objects.get(&obj).map(|r| r.addr().region) == Some(region));
    }

    // ------------------------------------------------------------------
    // Occupancy accounting
    // ------------------------------------------------------------------

    /// Bytes committed to assigned regions (the JVM-process RSS analogue the
    /// paper's Figure 9 tracks).
    pub fn committed_bytes(&self) -> u64 {
        let assigned = self.regions.iter().filter(|r| r.space().is_some()).count() as u64;
        assigned * self.config.region_bytes
    }

    /// Bytes bump-allocated in `space`'s regions (includes dead-but-unswept
    /// objects, like real occupancy).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    pub fn used_bytes(&self, space: SpaceId) -> Result<u64, HeapError> {
        let s = self.space(space)?;
        Ok(s.regions()
            .iter()
            .map(|&r| u64::from(self.regions[r.index()].used_bytes()))
            .sum())
    }

    /// Marks the no-need bit on every page of every assigned region that
    /// contains no live object bytes (the Recorder's pre-snapshot heap walk,
    /// paper §3.2/§4.1). Requires a fresh [`mark_live`] to be meaningful.
    ///
    /// Returns the number of pages newly marked.
    ///
    /// [`mark_live`]: Heap::mark_live
    pub fn mark_no_need_pages(&mut self, live: &LiveSet) -> u32 {
        // Compute, per page, whether any live object overlaps it.
        let mut live_pages: std::collections::HashSet<u32, crate::BuildIdHasher> =
            Default::default();
        for id in live.iter() {
            if let Some(rec) = self.objects.get(&id) {
                let (first, last) = self.page_table.pages_of(rec.addr(), rec.size());
                for p in first..=last {
                    live_pages.insert(p);
                }
            }
        }
        let mut marked = 0;
        for region in &self.regions {
            if region.space().is_none() {
                continue; // free-pool pages are already no-need
            }
            let first = region.first_page().raw();
            for p in first..first + self.config.pages_per_region() {
                let flag = self.page_table.flags_of(p);
                let should = !live_pages.contains(&p);
                if should && !flag.no_need {
                    marked += 1;
                }
                self.page_table.set_no_need(p, should);
            }
        }
        marked
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        // Every object's region must belong to the object's space and list it.
        let mut ids: Vec<&ObjectId> = self.objects.keys().collect();
        ids.sort_unstable();
        for &id in ids {
            let rec = &self.objects[&id];
            let region = &self.regions[rec.addr().region.index()];
            assert_eq!(
                region.space(),
                Some(rec.space()),
                "object {id} resides in a region owned by a different space"
            );
            assert!(
                region.objects().contains(&rec.id()),
                "object {id} missing from its region's object list"
            );
            // (Stale entries — dead or moved-away ids — are permitted.)
        }
        // Free regions must be unassigned and empty.
        for &r in &self.free_regions {
            let region = &self.regions[r.index()];
            assert!(region.space().is_none(), "free region {r} is assigned");
            assert!(
                region.objects().is_empty(),
                "free region {r} holds stale objects"
            );
        }
        // Region partition: every region is free, owned by exactly one
        // space, or detached for evacuation.
        let owned: usize = self.spaces.iter().map(|s| s.regions().len()).sum();
        assert_eq!(
            owned + self.free_regions.len() + self.evacuating.len(),
            self.regions.len(),
            "regions lost or double-owned"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(HeapConfig::small())
    }

    fn alloc(h: &mut Heap, size: u32) -> ObjectId {
        let class = h.classes_mut().intern("T");
        h.allocate(class, size, SiteId::new(0), Heap::YOUNG_SPACE)
            .expect("alloc")
    }

    #[test]
    fn allocation_assigns_addresses_and_dirties_pages() {
        let mut h = heap();
        let a = alloc(&mut h, 100);
        let b = alloc(&mut h, 100);
        let ra = h.object(a).unwrap().addr();
        let rb = h.object(b).unwrap().addr();
        assert_eq!(ra.region, rb.region);
        assert_eq!(rb.offset, 100);
        assert!(h.page_table().dirty_count() > 0);
        assert_eq!(h.stats().allocated_objects, 2);
        h.check_invariants();
    }

    #[test]
    fn young_budget_signals_space_full() {
        let mut h = heap(); // young budget = 4 regions of 256 KiB
        let class = h.classes_mut().intern("Blob");
        let mut err = None;
        for _ in 0..2048 {
            match h.allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            err,
            Some(HeapError::SpaceFull {
                space: Heap::YOUNG_SPACE
            })
        );
        h.check_invariants();
    }

    #[test]
    fn object_too_large_is_rejected() {
        let mut h = heap();
        let class = h.classes_mut().intern("Huge");
        let err = h.allocate(class, (256 << 10) + 1, SiteId::new(0), Heap::YOUNG_SPACE);
        assert!(matches!(err, Err(HeapError::ObjectTooLarge { .. })));
    }

    #[test]
    fn mark_live_traces_through_edges() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        let c = alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        assert!(live.contains(a));
        assert!(live.contains(b));
        assert!(!live.contains(c));
        assert_eq!(live.live_bytes(), 128);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn extra_roots_keep_objects_alive() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let live = h.mark_live(&[a]);
        assert!(live.contains(a));
        let live = h.mark_live(&[]);
        assert!(!live.contains(a));
    }

    #[test]
    fn cycles_do_not_hang_marking() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        h.add_ref(b, a).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn relocation_moves_object_between_spaces() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let a = alloc(&mut h, 128);
        let hash = h.object(a).unwrap().identity_hash();
        let copied = h.relocate(a, old).unwrap();
        assert_eq!(copied, 128);
        let rec = h.object(a).unwrap();
        assert_eq!(rec.space(), old);
        assert_eq!(rec.identity_hash(), hash);
        assert_eq!(h.stats().relocated_objects, 1);
        h.check_invariants();
    }

    #[test]
    fn drop_object_and_release_region() {
        let mut h = heap();
        let a = alloc(&mut h, 128);
        let region = h.object(a).unwrap().addr().region;
        let freed = h.drop_object(a).unwrap();
        assert_eq!(freed, 128);
        assert!(h.object(a).is_none());
        let before = h.free_region_count();
        h.release_region(region);
        assert_eq!(h.free_region_count(), before + 1);
        h.check_invariants();
    }

    #[test]
    #[should_panic(expected = "still holds")]
    fn releasing_populated_region_panics() {
        let mut h = heap();
        let a = alloc(&mut h, 128);
        let region = h.object(a).unwrap().addr().region;
        h.release_region(region);
    }

    #[test]
    fn committed_and_used_bytes() {
        let mut h = heap();
        assert_eq!(h.committed_bytes(), 0);
        alloc(&mut h, 1000);
        assert_eq!(h.committed_bytes(), 256 << 10);
        assert_eq!(h.used_bytes(Heap::YOUNG_SPACE).unwrap(), 1000);
    }

    #[test]
    fn no_need_walk_marks_dead_pages() {
        let mut h = heap();
        // Fill a few pages, keep only the first object alive.
        let keep = alloc(&mut h, 4096);
        for _ in 0..16 {
            alloc(&mut h, 4096);
        }
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, keep);
        let live = h.mark_live(&[]);
        let marked = h.mark_no_need_pages(&live);
        assert!(
            marked >= 16,
            "dead pages should be marked no-need, got {marked}"
        );
        // The page holding `keep` must not be no-need.
        let rec = h.object(keep).unwrap();
        let (first, _) = h.page_table().pages_of(rec.addr(), rec.size());
        assert!(!h.page_table().flags_of(first).no_need);
    }

    #[test]
    fn objects_in_space_enumerates_in_allocation_order() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        assert_eq!(h.objects_in_space(Heap::YOUNG_SPACE).unwrap(), vec![a, b]);
    }

    #[test]
    fn ref_errors_on_dead_objects() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.drop_object(b).unwrap();
        assert!(h.add_ref(a, b).is_err());
        assert!(h.add_ref(b, a).is_err());
        assert!(h.write_field(b).is_err());
    }

    #[test]
    fn young_marking_uses_remembered_set() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let class = h.classes_mut().intern("T");
        // An old parent referencing a young child: the write barrier must
        // keep the child alive for young-only marking.
        let parent = h.allocate(class, 64, SiteId::new(0), old).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, parent);
        let child = alloc(&mut h, 64);
        h.add_ref(parent, child).unwrap();
        assert_eq!(h.remembered_len(), 1);
        let live = h.mark_live_young(&[]);
        assert!(live.contains(child), "remembered edge keeps the child");
        assert!(
            !live.contains(parent),
            "old objects are outside the young live set"
        );
        // A young object with no remembered edge and no root dies.
        let orphan = alloc(&mut h, 64);
        let live = h.mark_live_young(&[]);
        assert!(!live.contains(orphan));
        // Pruning drops entries for promoted children.
        h.relocate(child, old).unwrap();
        h.prune_remembered();
        assert_eq!(h.remembered_len(), 0);
    }

    #[test]
    fn remember_if_young_filters_by_space() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let class = h.classes_mut().intern("T");
        let old_obj = h.allocate(class, 64, SiteId::new(0), old).unwrap();
        let young_obj = alloc(&mut h, 64);
        h.remember_if_young(old_obj);
        h.remember_if_young(young_obj);
        assert_eq!(h.remembered_len(), 1);
    }

    #[test]
    fn evacuation_protocol() {
        let mut h = heap();
        let keep = alloc(&mut h, 4096);
        let dead = alloc(&mut h, 4096);
        let src = h.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
        assert_eq!(src.len(), 1);
        assert_eq!(h.evacuating_regions(), &src[..]);
        h.check_invariants();
        // Survivor moves to a fresh young region; the dead object is dropped.
        h.relocate(keep, Heap::YOUNG_SPACE).unwrap();
        h.drop_object(dead).unwrap();
        h.finish_evacuation();
        assert!(h.evacuating_regions().is_empty());
        let rec = h.object(keep).unwrap();
        assert_ne!(rec.addr().region, src[0], "survivor left the source region");
        h.check_invariants();
    }

    #[test]
    fn partial_evacuation_of_selected_regions() {
        let mut h = heap();
        // Fill two regions.
        let mut ids = Vec::new();
        for _ in 0..100 {
            ids.push(alloc(&mut h, 4096));
        }
        let regions: Vec<_> = h.space(Heap::YOUNG_SPACE).unwrap().regions().to_vec();
        assert!(regions.len() >= 2);
        let victim = regions[0];
        h.begin_evacuation_of(Heap::YOUNG_SPACE, &[victim]).unwrap();
        let to_move: Vec<_> = h.region(victim).objects().to_vec();
        for obj in to_move {
            h.relocate(obj, Heap::YOUNG_SPACE).unwrap();
        }
        h.finish_evacuation();
        assert_eq!(h.region(victim).space(), None);
        h.check_invariants();
    }

    #[test]
    #[should_panic(expected = "already in progress")]
    fn nested_evacuation_panics() {
        let mut h = heap();
        alloc(&mut h, 64);
        h.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
        let _ = h.begin_evacuation(Heap::YOUNG_SPACE);
    }

    #[test]
    fn remove_ref_round_trip() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        assert!(h.remove_ref(a, b).unwrap());
        assert!(!h.remove_ref(a, b).unwrap());
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        assert!(!live.contains(b));
    }
}
