//! The heap façade: allocation, mutation, marking, relocation, reclamation.
//!
//! # Panic policy (audited for PR 10)
//!
//! Every panic reachable through the public API by *misuse* — releasing a
//! region that still holds live objects, nesting evacuations, naming an
//! evacuation victim from the wrong space — has been converted to a typed
//! [`HeapError`] (`region-empty-on-release`, `no-nested-evacuation`,
//! `victim-in-space`). The `expect`s that remain fall into exactly two
//! classes, both programming errors rather than runtime states:
//!
//! * **internal bookkeeping invariants** the heap itself maintains (a live
//!   slab slot always has a record, page occupancy counts never underflow,
//!   a fresh region fits a size validated against `region_bytes`) — the
//!   integrity verifier ([`Heap::verify_integrity`]) checks the same facts
//!   non-fatally, so a corrupted process reports a typed
//!   `IntegrityViolation` at the next safepoint instead of relying on these;
//! * **constructor contracts**: [`Heap::new`] panics on a config that fails
//!   [`HeapConfig::validate`], which is documented and unreachable from the
//!   CLI (flag parsing enforces `--heap-mb ≥ 1` MiB ≥ `region_bytes`).

use std::sync::atomic::AtomicU32;
use std::time::Instant;

use polm2_metrics::RememberedSetChurn;

use crate::backend::{BackendKind, BackendStats, HeapBackend, RealBackend, SimBackend};
use crate::evac::{self, DropEntry, EvacDecision, MoveEntry};
use crate::fasthash::IdHashSet;
use crate::mark;

use crate::{
    Addr, ClassId, ClassRegistry, GenId, HeapConfig, HeapError, HeapStats, ObjectId, ObjectRecord,
    PageTable, Region, RegionId, RootTable, SiteId, Space, SpaceId,
};

/// Integrity verification and corruption planting (child module so it can
/// re-derive invariants straight from the private bookkeeping fields).
#[path = "verify.rs"]
mod verify;
pub use verify::{CorruptionKind, PlantedCorruption};

/// Default break-even: below this many live records a sharded mark is not
/// worth the thread scaffolding, and `mark_live*` falls back to the serial
/// tracer (whose output is bit-identical by construction). Measured on the
/// perfgate GC workloads: the small workload (~5.5k records) loses wall-clock
/// to spawn/join overhead at any worker count, while marks past ~16k records
/// start amortizing it.
const MIN_PARALLEL_MARK_RECORDS: usize = 16384;

/// Default break-even: below this many batched evacuation ops the fix-up
/// phase applies serially (same measurement basis as the mark threshold;
/// fix-up does less work per op than marking, so the bar is lower).
const MIN_PARALLEL_EVAC_OPS: usize = 8192;

/// Default break-even: below this many payload bytes in one batch the
/// evacuation copy phase runs on one thread — memcpying less than ~1 MiB
/// finishes faster than the workers can be spawned.
const MIN_PARALLEL_COPY_BYTES: u64 = 1 << 20;

/// When the GC safepoint phases actually fan out across worker threads.
///
/// `gc_workers` is a *configuration* — output is bit-identical at any value —
/// but spawning scoped threads below the break-even, or beyond the machine's
/// cores, makes the pause *slower* (the regression `BENCH_gc.json` recorded
/// before PR 8). The tuning separates the two: thresholds gate small work
/// onto the serial path, and `respect_cpu_budget` caps the fan-out at
/// `available_parallelism`. Tests and equality gates that must exercise the
/// parallel code paths regardless of host size use [`ParallelTuning::force`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelTuning {
    /// Minimum live records before a mark shards across workers.
    pub min_mark_records: usize,
    /// Minimum batched ops before the evacuation fix-up fans out.
    pub min_evac_ops: usize,
    /// Minimum payload bytes in one batch before the evacuation copy phase
    /// fans out across workers (real backend only; the partition itself is
    /// always computed, only the thread spawn is gated).
    pub min_copy_bytes: u64,
    /// Cap the effective worker count at the host's available parallelism.
    pub respect_cpu_budget: bool,
}

impl ParallelTuning {
    /// Forces the parallel paths on: zero thresholds, no CPU cap. For tests
    /// and determinism/equality gates; never faster in production.
    pub fn force() -> Self {
        ParallelTuning {
            min_mark_records: 0,
            min_evac_ops: 0,
            min_copy_bytes: 0,
            respect_cpu_budget: false,
        }
    }
}

impl Default for ParallelTuning {
    fn default() -> Self {
        ParallelTuning {
            min_mark_records: MIN_PARALLEL_MARK_RECORDS,
            min_evac_ops: MIN_PARALLEL_EVAC_OPS,
            min_copy_bytes: MIN_PARALLEL_COPY_BYTES,
            respect_cpu_budget: true,
        }
    }
}

/// Retired `(bits, order)` buffer pairs kept for reuse by later marks.
const MAX_RETIRED_LIVE_BUFFERS: usize = 4;

/// Slot-table sentinel: the id has no record (dead, or not yet allocated).
pub(crate) const DEAD_SLOT: u32 = u32::MAX;

#[inline]
pub(crate) fn bit_set(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1u64 << (i & 63);
}

#[inline]
pub(crate) fn bit_get(bits: &[u64], i: usize) -> bool {
    bits.get(i >> 6)
        .is_some_and(|w| w & (1u64 << (i & 63)) != 0)
}

/// Rebuilds `order` as the ascending-id enumeration of the set bits — the
/// canonical [`LiveSet::order`]. Sort-free: one pass over the bitmap with
/// zero-word skips, so serial and sharded marks publish identical orders.
pub(crate) fn order_from_bits(bits: &[u64], order: &mut Vec<ObjectId>) {
    order.clear();
    for (w, &word) in bits.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let b = word.trailing_zeros() as usize;
            order.push(ObjectId::new(((w << 6) + b) as u64));
            word &= word - 1;
        }
    }
}

/// Two-level slab lookup shared by `Heap::object` and the retain closures
/// (free function so callers can hold disjoint field borrows).
#[inline]
fn slab_get<'a>(
    slots: &[u32],
    records: &'a [Option<ObjectRecord>],
    id: ObjectId,
) -> Option<&'a ObjectRecord> {
    match slots.get(id.index()).copied() {
        Some(slot) if slot != DEAD_SLOT => records[slot as usize].as_ref(),
        _ => None,
    }
}

/// The result of a marking pass: which objects are reachable and how much
/// they weigh.
///
/// Produced by [`Heap::mark_live`]; consumed by collectors (to decide what to
/// copy or sweep), by the Dumper's no-need walk, and by the Analyzer's
/// snapshot contents. Membership is a dense bitmap over the ids allocated
/// when the mark ran — ids issued later test not-live, exactly as they would
/// have against the seed's hash set.
#[derive(Debug, Clone)]
pub struct LiveSet {
    /// Membership bitmap indexed by `ObjectId::index()`.
    bits: Vec<u64>,
    /// Live objects in canonical ascending object-id order. The canonical
    /// order (rather than BFS discovery order) makes the published set
    /// independent of how the mark was sharded across workers.
    order: Vec<ObjectId>,
    live_bytes: u64,
    /// Objects traced (== `order.len()`), kept separate for cost accounting.
    traced_objects: u64,
    /// The mark epoch that produced this set.
    epoch: u32,
    /// True for whole-heap marks; false for young-only marks, which are
    /// never valid inputs to snapshot reuse.
    full: bool,
    /// Heap mutation counter at the time the set was traced (restamped by
    /// [`Heap::publish_live`], which asserts the set is still exact).
    mutation_seq: u64,
    /// Root-table membership version, same provenance as `mutation_seq`.
    roots_version: u64,
}

impl LiveSet {
    /// True if `obj` was reachable at mark time.
    pub fn contains(&self, obj: ObjectId) -> bool {
        bit_get(&self.bits, obj.index())
    }

    /// The mark epoch that produced this set.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// True if this set came from a whole-heap mark ([`Heap::mark_live`]);
    /// young-only sets ([`Heap::mark_live_young`]) report false.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Live objects in canonical ascending object-id order (identical at any
    /// `gc_workers` count).
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.order.iter().copied()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing was reachable.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total bytes of live objects.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of objects traced during the mark (equal to [`len`]).
    ///
    /// [`len`]: LiveSet::len
    pub fn traced_objects(&self) -> u64 {
        self.traced_objects
    }
}

/// Shared marking machinery over the slab table.
///
/// Holds disjoint borrows of the heap fields a trace mutates so root
/// iteration can proceed from the (unborrowed) root table. Discovery order
/// doubles as the BFS queue: `trace` scans `order` by index, which visits
/// nodes in exactly the order the seed's explicit `VecDeque` did.
struct MarkCtx<'a> {
    epoch: u32,
    slots: &'a [u32],
    records: &'a mut [Option<ObjectRecord>],
    page_table: &'a PageTable,
    /// Live-page bitmap rebuilt during the trace (whole-heap marks only).
    live_pages: Option<&'a mut [u64]>,
    bits: Vec<u64>,
    order: Vec<ObjectId>,
    region_live: Vec<u32>,
    live_bytes: u64,
    young_only: bool,
}

impl MarkCtx<'_> {
    fn visit(&mut self, id: ObjectId) {
        let Some(&slot) = self.slots.get(id.index()) else {
            return;
        };
        if slot == DEAD_SLOT {
            return;
        }
        let rec = self.records[slot as usize]
            .as_mut()
            .expect("live slot has a record");
        if rec.mark_epoch() == self.epoch {
            return;
        }
        if self.young_only && rec.space() != Heap::YOUNG_SPACE {
            return;
        }
        rec.set_mark_epoch(self.epoch);
        bit_set(&mut self.bits, id.index());
        self.order.push(id);
        self.live_bytes += u64::from(rec.size());
        self.region_live[rec.addr().region.index()] += rec.size();
        if let Some(pages) = self.live_pages.as_deref_mut() {
            let (first, last) = self.page_table.pages_of(rec.addr(), rec.size());
            for p in first..=last {
                bit_set(pages, p as usize);
            }
        }
    }

    fn trace(&mut self) {
        let mut scratch: Vec<ObjectId> = Vec::new();
        let mut i = 0;
        while i < self.order.len() {
            let id = self.order[i];
            i += 1;
            let slot = self.slots[id.index()] as usize;
            // One reusable scratch buffer instead of a fresh clone per node.
            scratch.clear();
            scratch.extend_from_slice(self.records[slot].as_ref().expect("marked record").refs());
            for &child in scratch.iter() {
                self.visit(child);
            }
        }
    }
}

/// The simulated managed heap.
///
/// See the [crate documentation](crate) for the layout model and an example.
#[derive(Debug)]
pub struct Heap {
    config: HeapConfig,
    classes: ClassRegistry,
    roots: RootTable,
    /// Two-level slab object table. `slots[id.index()]` holds the record's
    /// slot in `records` (or [`DEAD_SLOT`]). Object ids are never reused, so
    /// `slots` grows one entry per allocation; record slots are recycled
    /// through `free_slots`, keeping `records` proportional to the live
    /// population. Lookups are two array loads — no hashing per edge.
    slots: Vec<u32>,
    records: Vec<Option<ObjectRecord>>,
    free_slots: Vec<u32>,
    live_records: usize,
    next_object: u64,
    regions: Vec<Region>,
    /// Free pool; regions are handed out lowest-id first.
    free_regions: Vec<RegionId>,
    spaces: Vec<Space>,
    /// Regions detached from their space for evacuation (still assigned, not
    /// allocatable). See [`Heap::begin_evacuation`].
    evacuating: Vec<RegionId>,
    page_table: PageTable,
    mark_epoch: u32,
    /// Incremental page occupancy: how many object records overlap each
    /// page, adjusted at allocate/drop/relocate time. `> 0` means the page
    /// holds object bytes (reachable or not-yet-swept).
    page_object_counts: Vec<u32>,
    /// Live-page bitmap: pages overlapped by an object of the most recent
    /// whole-heap mark, rebuilt during the trace itself (and by
    /// [`Heap::refresh_live_accounting`]). Valid for the no-need fast path
    /// only while `live_pages_epoch`/`live_pages_seq` still match.
    live_pages: Vec<u64>,
    live_pages_epoch: u32,
    live_pages_seq: u64,
    /// Bumped by every mutation that can move object bytes or change
    /// reachability: allocate, drop, relocate, region release, add_ref,
    /// remove_ref. Plain field writes only dirty pages and do not count.
    mutation_seq: u64,
    /// Collector-published LiveSet awaiting reuse by the next snapshot; see
    /// [`Heap::publish_live`].
    published: Option<LiveSet>,
    /// Remembered set: young objects referenced from non-young objects
    /// (appended by the `add_ref` write barrier, pruned after each young
    /// collection). Lets minor collections avoid tracing the old spaces.
    remembered: Vec<ObjectId>,
    /// Retained dedup scratch for [`Heap::prune_remembered`] — cleared in
    /// place each prune instead of rebuilding the table.
    remembered_scratch: IdHashSet<ObjectId>,
    /// Remembered-set traffic counters (bench- and CLI-visible).
    remembered_churn: RememberedSetChurn,
    /// Worker threads used inside GC safepoints (mark + evacuate fix-up).
    /// `1` keeps every path serial; any value yields bit-identical output.
    gc_workers: usize,
    /// When the safepoint phases actually fan out (see [`ParallelTuning`]).
    tuning: ParallelTuning,
    /// `available_parallelism()` cached at construction; caps the effective
    /// worker count when `tuning.respect_cpu_budget` is set.
    cpu_budget: usize,
    /// Memory behavior behind the logical address layout (see
    /// [`crate::backend`]). Never influences placement.
    backend: Box<dyn HeapBackend>,
    /// Per-record claim stamps for the sharded mark, indexed by record slot.
    /// A slot is claimed for the current epoch by an atomic swap; stale
    /// stamps never equal a fresh epoch because epochs strictly increase.
    mark_stamps: Vec<AtomicU32>,
    /// Retained per-mark region live-byte accumulator (cleared in place).
    region_live_scratch: Vec<u32>,
    /// Bounded pool of retired `(bits, order)` buffers from consumed
    /// [`LiveSet`]s, reused by later marks (see [`Heap::retire_live_set`]).
    retired_live_buffers: Vec<(Vec<u64>, Vec<ObjectId>)>,
    /// Completed integrity-verifier passes (see `verify.rs`). Deliberately
    /// outside [`HeapStats`]: verification must never change any state a
    /// trajectory fingerprint could see.
    verify_passes: u64,
    stats: HeapStats,
}

impl Heap {
    /// The space id of the always-present young generation.
    pub const YOUNG_SPACE: SpaceId = SpaceId::new(0);

    /// Creates a heap with the given geometry. The young generation (space 0)
    /// exists from the start, budgeted to `config.young_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`HeapConfig::validate`].
    pub fn new(config: HeapConfig) -> Self {
        config.validate().expect("invalid heap configuration");
        let region_count = config.region_count();
        let pages_per_region = config.pages_per_region();
        let regions: Vec<Region> = (0..region_count)
            .map(|i| Region::new(RegionId::new(i), crate::PageId::new(i * pages_per_region)))
            .collect();
        let free_regions: Vec<RegionId> = (0..region_count).rev().map(RegionId::new).collect();
        let mut page_table = PageTable::new(
            config.page_count(),
            pages_per_region,
            config.page_bytes as u32,
        );
        // Unassigned regions hold no live data.
        for p in 0..config.page_count() {
            page_table.set_no_need(p, true);
        }
        let young = Space::new(
            Heap::YOUNG_SPACE,
            GenId::YOUNG,
            Some(config.young_region_budget()),
        );
        let page_count = config.page_count() as usize;
        let backend: Box<dyn HeapBackend> = match config.backend {
            BackendKind::Sim => Box::new(SimBackend),
            BackendKind::Real => Box::new(RealBackend::new(&config)),
        };
        let cpu_budget = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Heap {
            config,
            classes: ClassRegistry::new(),
            roots: RootTable::new(),
            slots: Vec::new(),
            records: Vec::new(),
            free_slots: Vec::new(),
            live_records: 0,
            next_object: 0,
            regions,
            free_regions,
            spaces: vec![young],
            evacuating: Vec::new(),
            page_table,
            mark_epoch: 0,
            page_object_counts: vec![0; page_count],
            live_pages: vec![0; page_count.div_ceil(64)],
            live_pages_epoch: 0,
            live_pages_seq: 0,
            mutation_seq: 0,
            published: None,
            remembered: Vec::new(),
            remembered_scratch: IdHashSet::default(),
            remembered_churn: RememberedSetChurn::default(),
            gc_workers: 1,
            tuning: ParallelTuning::default(),
            cpu_budget,
            backend,
            mark_stamps: Vec::new(),
            region_live_scratch: Vec::new(),
            retired_live_buffers: Vec::new(),
            verify_passes: 0,
            stats: HeapStats::default(),
        }
    }

    /// Worker threads used inside GC safepoints (see [`set_gc_workers`]).
    ///
    /// [`set_gc_workers`]: Heap::set_gc_workers
    pub fn gc_workers(&self) -> usize {
        self.gc_workers
    }

    /// Sets the number of worker threads the mark and evacuation fix-up
    /// phases may use behind a safepoint. Values below 1 clamp to 1. Output
    /// is bit-identical at any worker count; this only trades wall-clock
    /// time inside the pause.
    pub fn set_gc_workers(&mut self, workers: usize) {
        self.gc_workers = workers.max(1);
    }

    /// The break-even tuning gating the parallel safepoint phases.
    pub fn parallel_tuning(&self) -> ParallelTuning {
        self.tuning
    }

    /// Replaces the break-even tuning (see [`ParallelTuning`]). Output is
    /// bit-identical under any tuning; this only moves the serial/parallel
    /// crossover.
    pub fn set_parallel_tuning(&mut self, tuning: ParallelTuning) {
        self.tuning = tuning;
    }

    /// Worker threads a safepoint phase will actually use: `gc_workers`,
    /// capped at the host's available parallelism when the tuning says to
    /// respect it. Fanning out past the core count can only slow a pause.
    fn effective_gc_workers(&self) -> usize {
        if self.tuning.respect_cpu_budget {
            self.gc_workers.min(self.cpu_budget).max(1)
        } else {
            self.gc_workers
        }
    }

    /// Which memory backend this heap runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The backend's byte counters (real bytes written/copied; all zero for
    /// the sim backend).
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Resets the backend's byte counters (bench instrumentation).
    pub fn reset_backend_stats(&mut self) {
        self.backend.reset_stats();
    }

    /// Tells the backend one GC cycle just completed so it can run deferred
    /// allocator maintenance (tenured free-list coalescing). Collectors call
    /// this once at the end of `collect`; it never touches logical state.
    pub fn note_gc_cycle_finished(&mut self) {
        self.backend.gc_cycle_finished();
    }

    /// The heap geometry.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// The class intern table.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Mutable access to the class intern table.
    pub fn classes_mut(&mut self) -> &mut ClassRegistry {
        &mut self.classes
    }

    /// The root table.
    pub fn roots(&self) -> &RootTable {
        &self.roots
    }

    /// Mutable access to the root table.
    pub fn roots_mut(&mut self) -> &mut RootTable {
        &mut self.roots
    }

    /// Cumulative allocation/reclamation counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// The kernel-style page table (dirty / no-need bits).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable access to the page table (used by the Dumper to clear dirty
    /// bits after a snapshot).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    // ------------------------------------------------------------------
    // Spaces
    // ------------------------------------------------------------------

    /// Creates a new space representing logical generation `gen`.
    ///
    /// `region_budget` bounds the space (young is bounded; older spaces are
    /// usually unbounded, competing for the shared pool).
    pub fn create_space(&mut self, gen: GenId, region_budget: Option<u32>) -> SpaceId {
        let id = SpaceId::new(self.spaces.len() as u32);
        self.spaces.push(Space::new(id, gen, region_budget));
        id
    }

    /// All spaces, creation order.
    pub fn spaces(&self) -> &[Space] {
        &self.spaces
    }

    /// One space.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    pub fn space(&self, id: SpaceId) -> Result<&Space, HeapError> {
        self.spaces
            .get(id.index())
            .ok_or(HeapError::NoSuchSpace { space: id })
    }

    /// One region.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (region ids are created only by this
    /// heap, so an out-of-range id is a logic error).
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// All regions (free and assigned).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions in the free pool.
    pub fn free_region_count(&self) -> u32 {
        self.free_regions.len() as u32
    }

    // ------------------------------------------------------------------
    // Allocation & mutation
    // ------------------------------------------------------------------

    /// Allocates an object of `size` bytes of class `class` from allocation
    /// site `site` into `space`.
    ///
    /// # Errors
    ///
    /// * [`HeapError::ObjectTooLarge`] if `size` exceeds one region.
    /// * [`HeapError::SpaceFull`] if the space is at its region budget —
    ///   the young generation signals a collection this way.
    /// * [`HeapError::OutOfRegions`] if the shared pool is empty.
    /// * [`HeapError::NoSuchSpace`] for an unknown space.
    pub fn allocate(
        &mut self,
        class: ClassId,
        size: u32,
        site: SiteId,
        space: SpaceId,
    ) -> Result<ObjectId, HeapError> {
        let gen = self.space(space)?.gen();
        let addr = self.bump_into(space, size)?;
        let id = ObjectId::new(self.next_object);
        self.next_object += 1;
        let record = ObjectRecord::new(id, class, site, size, space, gen, addr);
        self.backend
            .write_object(addr, size, record.identity_hash());
        self.regions[addr.region.index()].push_object(id);
        // Objects allocated after the last mark are conservatively counted
        // live; marking recomputes the truth.
        let live = self.regions[addr.region.index()].live_bytes();
        self.regions[addr.region.index()].set_live_bytes(live + size);
        self.page_table.mark_dirty_range(addr, size);
        self.page_table.clear_no_need_range(addr, size);
        self.adjust_page_counts(addr, size, 1);
        debug_assert_eq!(self.slots.len(), id.index(), "slot table out of step");
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.records[slot as usize] = Some(record);
                slot
            }
            None => {
                self.records.push(Some(record));
                (self.records.len() - 1) as u32
            }
        };
        self.slots.push(slot);
        self.live_records += 1;
        self.mutation_seq += 1;
        self.stats.allocated_objects += 1;
        self.stats.allocated_bytes += u64::from(size);
        Ok(id)
    }

    /// Adjusts the incremental page-occupancy counters for `size` bytes at
    /// `addr` (+1 on allocate/relocate-in, -1 on drop/relocate-out).
    fn adjust_page_counts(&mut self, addr: Addr, size: u32, delta: i32) {
        let (first, last) = self.page_table.pages_of(addr, size);
        for p in first..=last {
            let c = &mut self.page_object_counts[p as usize];
            *c = c
                .checked_add_signed(delta)
                .expect("page occupancy count underflow");
        }
    }

    fn bump_into(&mut self, space: SpaceId, size: u32) -> Result<Addr, HeapError> {
        let capacity = self.config.region_bytes as u32;
        if size > capacity {
            return Err(HeapError::ObjectTooLarge {
                size: u64::from(size),
                max: u64::from(capacity),
            });
        }
        if space.index() >= self.spaces.len() {
            return Err(HeapError::NoSuchSpace { space });
        }
        // Try the current allocation region.
        if let Some(region) = self.spaces[space.index()].current_region() {
            if let Some(offset) = self.regions[region.index()].try_bump(size, capacity) {
                return Ok(Addr { region, offset });
            }
        }
        // Acquire a fresh region.
        if self.spaces[space.index()].at_budget() {
            return Err(HeapError::SpaceFull { space });
        }
        // Hard commit budget (`--heap-mb`): committing one more region past
        // the limit fails typed instead of drawing from the pool. Committed
        // bytes are purely logical, so the check is bit-identical on either
        // backend. Exempt while an evacuation is in flight — denying the
        // collector a to-space region mid-copy could wedge the emergency
        // collection that is supposed to relieve the pressure.
        if let Some(limit) = self.config.limit_bytes {
            if self.evacuating.is_empty()
                && self.committed_bytes() + self.config.region_bytes > limit
            {
                return Err(HeapError::OutOfMemory {
                    requested: u64::from(size),
                    limit_bytes: limit,
                });
            }
        }
        let region = self
            .free_regions
            .pop()
            .ok_or(HeapError::OutOfRegions { space })?;
        self.regions[region.index()].assign(space);
        self.backend
            .ensure_region(region, space == Heap::YOUNG_SPACE);
        self.spaces[space.index()].push_region(region);
        let offset = self.regions[region.index()]
            .try_bump(size, capacity)
            .expect("fresh region fits a validated size");
        Ok(Addr { region, offset })
    }

    /// The record of a live object.
    pub fn object(&self, id: ObjectId) -> Option<&ObjectRecord> {
        slab_get(&self.slots, &self.records, id)
    }

    fn record_mut(&mut self, id: ObjectId) -> Option<&mut ObjectRecord> {
        match self.slots.get(id.index()).copied() {
            Some(slot) if slot != DEAD_SLOT => self.records[slot as usize].as_mut(),
            _ => None,
        }
    }

    /// Number of live object records.
    pub fn object_count(&self) -> usize {
        self.live_records
    }

    /// Number of object records overlapping `page` (incremental occupancy
    /// accounting; `0` means the page holds no object bytes). Counts every
    /// undropped record, reachable or not.
    pub fn page_object_count(&self, page: u32) -> u32 {
        self.page_object_counts[page as usize]
    }

    /// Adds a reference edge `parent -> child` (a field write: the parent's
    /// memory is dirtied).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if either end is not live.
    pub fn add_ref(&mut self, parent: ObjectId, child: ObjectId) -> Result<(), HeapError> {
        let child_space = self
            .object(child)
            .map(|r| r.space())
            .ok_or(HeapError::NoSuchObject { object: child })?;
        let record = self
            .record_mut(parent)
            .ok_or(HeapError::NoSuchObject { object: parent })?;
        record.refs_mut().push(child);
        let (addr, size, parent_space) = (record.addr(), record.size(), record.space());
        self.page_table.mark_dirty_range(addr, size);
        self.mutation_seq += 1;
        // Generational write barrier: remember old->young edges so minor
        // collections need not trace the old spaces.
        if parent_space != Heap::YOUNG_SPACE && child_space == Heap::YOUNG_SPACE {
            self.remembered.push(child);
            self.remembered_churn.recorded += 1;
        }
        Ok(())
    }

    /// Removes one occurrence of the edge `parent -> child`; returns whether
    /// it was present.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `parent` is not live.
    pub fn remove_ref(&mut self, parent: ObjectId, child: ObjectId) -> Result<bool, HeapError> {
        let record = self
            .record_mut(parent)
            .ok_or(HeapError::NoSuchObject { object: parent })?;
        let refs = record.refs_mut();
        let removed = if let Some(pos) = refs.iter().position(|&o| o == child) {
            refs.swap_remove(pos);
            true
        } else {
            false
        };
        if removed {
            let (addr, size) = (record.addr(), record.size());
            self.page_table.mark_dirty_range(addr, size);
            self.mutation_seq += 1;
        }
        Ok(removed)
    }

    /// Records a plain field write to `obj` (dirties its pages without
    /// changing the reference graph) — e.g. updating a counter inside a
    /// vertex object.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `obj` is not live.
    pub fn write_field(&mut self, obj: ObjectId) -> Result<(), HeapError> {
        let (addr, size) = self
            .object(obj)
            .map(|r| (r.addr(), r.size()))
            .ok_or(HeapError::NoSuchObject { object: obj })?;
        self.page_table.mark_dirty_range(addr, size);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Marking
    // ------------------------------------------------------------------

    /// Marks every object reachable from the root table plus `extra_roots`
    /// (mutator stack roots supplied by the runtime).
    ///
    /// Updates each assigned region's `live_bytes` so collectors and the
    /// no-need walk can reason about occupancy, and rebuilds the live-page
    /// bitmap consumed by the [`mark_no_need_pages`] fast path.
    ///
    /// Visited state is an epoch stamp in each record's header — no per-trace
    /// hash set — and every edge dereference is a slab index.
    ///
    /// [`mark_no_need_pages`]: Heap::mark_no_need_pages
    pub fn mark_live(&mut self, extra_roots: &[ObjectId]) -> LiveSet {
        self.mark_epoch += 1;
        for w in &mut self.live_pages {
            *w = 0;
        }
        let (mut bits, mut order) = self.take_mark_buffers();
        let mut region_live = std::mem::take(&mut self.region_live_scratch);
        region_live.clear();
        region_live.resize(self.regions.len(), 0);

        let eff_workers = self.effective_gc_workers();
        let live_bytes = if self.use_parallel_mark() {
            let roots: Vec<ObjectId> = self
                .roots
                .iter()
                .chain(extra_roots.iter().copied())
                .collect();
            self.mark_stamps
                .resize_with(self.records.len(), || AtomicU32::new(0));
            mark::parallel_mark(
                &mark::MarkShards {
                    workers: eff_workers,
                    epoch: self.mark_epoch,
                    slots: &self.slots,
                    records: &self.records,
                    stamps: &self.mark_stamps,
                    page_table: &self.page_table,
                    young_only: false,
                },
                &roots,
                &mut bits,
                &mut region_live,
                Some(&mut self.live_pages),
            )
        } else {
            let mut ctx = MarkCtx {
                epoch: self.mark_epoch,
                slots: &self.slots,
                records: &mut self.records,
                page_table: &self.page_table,
                live_pages: Some(&mut self.live_pages),
                bits,
                order,
                region_live,
                live_bytes: 0,
                young_only: false,
            };
            for id in self.roots.iter().chain(extra_roots.iter().copied()) {
                ctx.visit(id);
            }
            ctx.trace();
            let MarkCtx {
                bits: b,
                order: o,
                region_live: rl,
                live_bytes,
                ..
            } = ctx;
            bits = b;
            order = o;
            region_live = rl;
            live_bytes
        };
        // Canonicalize the published order (ascending object id) so serial
        // and sharded marks are indistinguishable to every consumer.
        order_from_bits(&bits, &mut order);

        // Refresh per-region live-byte accounting.
        for region in &mut self.regions {
            if region.space().is_some() {
                region.set_live_bytes(region_live[region.id().index()]);
            }
        }
        self.region_live_scratch = region_live;
        self.live_pages_epoch = self.mark_epoch;
        self.live_pages_seq = self.mutation_seq;

        let traced = order.len() as u64;
        LiveSet {
            bits,
            order,
            live_bytes,
            traced_objects: traced,
            epoch: self.mark_epoch,
            full: true,
            mutation_seq: self.mutation_seq,
            roots_version: self.roots.version(),
        }
    }

    /// Marks only the *young* generation: everything outside young is
    /// assumed live (the generational bargain), and old->young edges come
    /// from the remembered set maintained by the `add_ref` write barrier.
    /// The returned [`LiveSet`] covers young objects only — exactly what a
    /// minor collection needs.
    ///
    /// Prune the remembered set with [`prune_remembered`](Heap::prune_remembered)
    /// once the collection has relocated or dropped every young object.
    pub fn mark_live_young(&mut self, extra_roots: &[ObjectId]) -> LiveSet {
        self.mark_epoch += 1;
        let (mut bits, mut order) = self.take_mark_buffers();
        let mut region_live = std::mem::take(&mut self.region_live_scratch);
        region_live.clear();
        region_live.resize(self.regions.len(), 0);

        let eff_workers = self.effective_gc_workers();
        let live_bytes = if self.use_parallel_mark() {
            let roots: Vec<ObjectId> = self
                .roots
                .iter()
                .chain(extra_roots.iter().copied())
                .chain(self.remembered.iter().copied())
                .collect();
            self.mark_stamps
                .resize_with(self.records.len(), || AtomicU32::new(0));
            mark::parallel_mark(
                &mark::MarkShards {
                    workers: eff_workers,
                    epoch: self.mark_epoch,
                    slots: &self.slots,
                    records: &self.records,
                    stamps: &self.mark_stamps,
                    page_table: &self.page_table,
                    young_only: true,
                },
                &roots,
                &mut bits,
                &mut region_live,
                // Young-only marks never feed the no-need walk; the
                // live-page bitmap keeps describing the last whole-heap mark.
                None,
            )
        } else {
            let mut ctx = MarkCtx {
                epoch: self.mark_epoch,
                slots: &self.slots,
                records: &mut self.records,
                page_table: &self.page_table,
                live_pages: None,
                bits,
                order,
                region_live,
                live_bytes: 0,
                young_only: true,
            };
            for id in self
                .roots
                .iter()
                .chain(extra_roots.iter().copied())
                .chain(self.remembered.iter().copied())
            {
                ctx.visit(id);
            }
            ctx.trace();
            let MarkCtx {
                bits: b,
                order: o,
                region_live: rl,
                live_bytes,
                ..
            } = ctx;
            bits = b;
            order = o;
            region_live = rl;
            live_bytes
        };
        order_from_bits(&bits, &mut order);

        for region in &mut self.regions {
            if region.space() == Some(Heap::YOUNG_SPACE) {
                region.set_live_bytes(region_live[region.id().index()]);
            }
        }
        self.region_live_scratch = region_live;

        let traced = order.len() as u64;
        LiveSet {
            bits,
            order,
            live_bytes,
            traced_objects: traced,
            epoch: self.mark_epoch,
            full: false,
            mutation_seq: self.mutation_seq,
            roots_version: self.roots.version(),
        }
    }

    /// True when the next mark should shard across workers: more than one
    /// worker is configured and the live population is large enough to pay
    /// for the thread scaffolding.
    fn use_parallel_mark(&self) -> bool {
        self.effective_gc_workers() > 1 && self.live_records >= self.tuning.min_mark_records
    }

    /// Pops a retired `(bits, order)` buffer pair (or allocates fresh ones)
    /// and prepares them for the next mark: bits zeroed to the current id
    /// range, order emptied.
    fn take_mark_buffers(&mut self) -> (Vec<u64>, Vec<ObjectId>) {
        let words = (self.next_object as usize).div_ceil(64);
        let (mut bits, mut order) = self.retired_live_buffers.pop().unwrap_or_default();
        bits.clear();
        bits.resize(words, 0);
        order.clear();
        (bits, order)
    }

    /// Returns a consumed [`LiveSet`]'s buffers to the retained pool so the
    /// next mark can reuse them instead of allocating. Collectors call this
    /// for young sets once a collection no longer needs them; the heap calls
    /// it for published sets it discards. Dropping a set instead of retiring
    /// it is always correct — just slower.
    pub fn retire_live_set(&mut self, live: LiveSet) {
        if self.retired_live_buffers.len() < MAX_RETIRED_LIVE_BUFFERS {
            self.retired_live_buffers.push((live.bits, live.order));
        }
    }

    /// Prunes the remembered set after a young collection: entries whose
    /// object died or left the young generation are dropped, duplicates
    /// collapse.
    pub fn prune_remembered(&mut self) {
        let before = self.remembered.len();
        let (slots, records) = (&self.slots, &self.records);
        let seen = &mut self.remembered_scratch;
        seen.clear();
        self.remembered.retain(|&id| {
            slab_get(slots, records, id).map(|r| r.space()) == Some(Heap::YOUNG_SPACE)
                && seen.insert(id)
        });
        let after = self.remembered.len();
        self.remembered_churn.note_prune(before, after);
    }

    /// Remembered-set traffic counters accumulated over the heap's life.
    pub fn remembered_churn(&self) -> RememberedSetChurn {
        self.remembered_churn
    }

    /// Current remembered-set length (diagnostics).
    pub fn remembered_len(&self) -> usize {
        self.remembered.len()
    }

    /// Adds `obj` to the remembered set if it is a young object. Collectors
    /// call this for the young children of objects they promote — those
    /// edges become old->young without passing through the `add_ref`
    /// barrier.
    pub fn remember_if_young(&mut self, obj: ObjectId) {
        if self.object(obj).map(|r| r.space()) == Some(Heap::YOUNG_SPACE) {
            self.remembered.push(obj);
            self.remembered_churn.recorded += 1;
        }
    }

    /// The current mark epoch (increments on every [`mark_live`]).
    ///
    /// [`mark_live`]: Heap::mark_live
    pub fn mark_epoch(&self) -> u32 {
        self.mark_epoch
    }

    // ------------------------------------------------------------------
    // Relocation & reclamation (collector back-end)
    // ------------------------------------------------------------------

    /// Relocates `obj` into `dest` (promotion or compaction copy). Returns
    /// the number of bytes copied.
    ///
    /// The object keeps its id and identity hash; its address changes and the
    /// destination pages are dirtied, as a real copying collector would.
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchObject`] if `obj` is not live.
    /// * Any allocation error from the destination space.
    pub fn relocate(&mut self, obj: ObjectId, dest: SpaceId) -> Result<u32, HeapError> {
        let (size, old_addr) = {
            let rec = self
                .object(obj)
                .ok_or(HeapError::NoSuchObject { object: obj })?;
            (rec.size(), rec.addr())
        };
        let new_addr = self.bump_into(dest, size)?;
        self.backend.copy_object(old_addr, new_addr, size);
        self.regions[new_addr.region.index()].push_object(obj);
        // The source region keeps a stale list entry (see `drop_object`);
        // relocation sources are always released or purged by the collector.
        // Keep per-region live accounting fresh: only live objects are
        // relocated, so the bytes move from the source to the destination.
        let src_live = self.regions[old_addr.region.index()].live_bytes();
        self.regions[old_addr.region.index()].set_live_bytes(src_live.saturating_sub(size));
        let dst_live = self.regions[new_addr.region.index()].live_bytes();
        self.regions[new_addr.region.index()].set_live_bytes(dst_live + size);
        self.page_table.mark_dirty_range(new_addr, size);
        self.page_table.clear_no_need_range(new_addr, size);
        self.adjust_page_counts(old_addr, size, -1);
        self.adjust_page_counts(new_addr, size, 1);
        let rec = self.record_mut(obj).expect("checked above");
        rec.relocate(dest, new_addr);
        self.mutation_seq += 1;
        self.stats.relocated_objects += 1;
        self.stats.relocated_bytes += u64::from(size);
        Ok(size)
    }

    /// Applies one batch of evacuation decisions — drops and moves — as a
    /// deterministic serial *planning* phase followed by a *fix-up* phase
    /// that may run on [`gc_workers`](Heap::gc_workers) threads.
    ///
    /// Planning walks `ops` in order and performs every order-dependent
    /// mutation exactly as the equivalent sequence of
    /// [`relocate`](Heap::relocate) / [`drop_object`](Heap::drop_object)
    /// calls would: destination addresses bump-allocate in op order, region
    /// object lists and live-byte accounting update in op order, and
    /// `mutation_seq` advances once per op. The fix-up phase then applies
    /// only commutative effects (record address/age rewrites on disjoint
    /// slots, atomic page count and dirty/no-need flag updates), so the
    /// final heap state is bit-identical at any worker count.
    ///
    /// Each object id must appear at most once per batch.
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchObject`] if an op names a dead object.
    /// * Any allocation error from a move's destination space. On error the
    ///   heap is left mid-evacuation (ops before the failing one applied,
    ///   later fix-ups dropped) — collectors treat such errors as fatal,
    ///   matching the documented out-of-memory contract.
    pub fn evacuate_batch(&mut self, ops: &[(ObjectId, EvacDecision)]) -> Result<(), HeapError> {
        #[cfg(debug_assertions)]
        {
            let mut seen: IdHashSet<ObjectId> = IdHashSet::default();
            for &(obj, _) in ops {
                debug_assert!(seen.insert(obj), "object {obj} appears twice in one batch");
            }
        }
        let mut moves: Vec<MoveEntry> = Vec::with_capacity(ops.len());
        let mut drops: Vec<DropEntry> = Vec::new();
        for &(obj, decision) in ops {
            let slot = match self.slots.get(obj.index()).copied() {
                Some(slot) if slot != DEAD_SLOT => slot,
                _ => return Err(HeapError::NoSuchObject { object: obj }),
            };
            match decision {
                EvacDecision::Drop => {
                    let rec = self.records[slot as usize]
                        .take()
                        .expect("live slot has a record");
                    self.slots[obj.index()] = DEAD_SLOT;
                    self.free_slots.push(slot);
                    self.live_records -= 1;
                    let (first, last) = self.page_table.pages_of(rec.addr(), rec.size());
                    drops.push(DropEntry { first, last });
                    self.mutation_seq += 1;
                    self.stats.freed_objects += 1;
                    self.stats.freed_bytes += u64::from(rec.size());
                }
                EvacDecision::Move { dest, bump_age } => {
                    let (size, old_addr) = {
                        let rec = self.records[slot as usize]
                            .as_ref()
                            .expect("live slot has a record");
                        (rec.size(), rec.addr())
                    };
                    let new_addr = self.bump_into(dest, size)?;
                    self.regions[new_addr.region.index()].push_object(obj);
                    let src_live = self.regions[old_addr.region.index()].live_bytes();
                    self.regions[old_addr.region.index()]
                        .set_live_bytes(src_live.saturating_sub(size));
                    let dst_live = self.regions[new_addr.region.index()].live_bytes();
                    self.regions[new_addr.region.index()].set_live_bytes(dst_live + size);
                    let (old_first, old_last) = self.page_table.pages_of(old_addr, size);
                    let (new_first, new_last) = self.page_table.pages_of(new_addr, size);
                    moves.push(MoveEntry {
                        slot,
                        dest,
                        old_addr,
                        new_addr,
                        size,
                        bump_age,
                        old_first,
                        old_last,
                        new_first,
                        new_last,
                    });
                    self.mutation_seq += 1;
                    self.stats.relocated_objects += 1;
                    self.stats.relocated_bytes += u64::from(size);
                }
            }
        }
        let workers = self.effective_gc_workers();
        // Copy phase (real backend only): memcpy the planned payloads,
        // partitioned by destination region and timed on its own so
        // bandwidth figures measure the copier. Runs before fix-up and
        // cannot influence logical state — it only moves bytes to addresses
        // the planning phase already fixed.
        if !moves.is_empty() {
            if let Some(copier) = self.backend.copier() {
                let total_bytes: u64 = moves.iter().map(|m| u64::from(m.size)).sum();
                let copy_workers = if workers > 1 && total_bytes >= self.tuning.min_copy_bytes {
                    workers
                } else {
                    1
                };
                let shards = evac::plan_copy_shards(&moves, copy_workers);
                let critical = shards.iter().map(|s| s.bytes).max().unwrap_or(0);
                let start = Instant::now();
                evac::run_copy_phase(&copier, &moves, &shards);
                let ns = start.elapsed().as_nanos() as u64;
                drop(copier);
                self.backend.note_copy_phase(ns, critical);
            }
        }
        if workers > 1 && moves.len() + drops.len() >= self.tuning.min_evac_ops {
            evac::apply_parallel(
                workers,
                &mut self.records,
                &mut self.page_object_counts,
                &mut self.page_table,
                &moves,
                &drops,
            );
        } else {
            for m in &moves {
                let rec = self.records[m.slot as usize]
                    .as_mut()
                    .expect("planned move has a record");
                rec.relocate(m.dest, m.new_addr);
                if m.bump_age {
                    rec.bump_age();
                }
                self.page_table.mark_dirty_range(m.new_addr, m.size);
                self.page_table.clear_no_need_range(m.new_addr, m.size);
                for p in m.new_first..=m.new_last {
                    self.page_object_counts[p as usize] += 1;
                }
                for p in m.old_first..=m.old_last {
                    let c = &mut self.page_object_counts[p as usize];
                    *c = c.checked_sub(1).expect("page occupancy count underflow");
                }
            }
            for d in &drops {
                for p in d.first..=d.last {
                    let c = &mut self.page_object_counts[p as usize];
                    *c = c.checked_sub(1).expect("page occupancy count underflow");
                }
            }
        }
        Ok(())
    }

    /// Increments the young-generation age of `obj` and returns the new age.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `obj` is not live.
    pub fn bump_age(&mut self, obj: ObjectId) -> Result<u8, HeapError> {
        self.record_mut(obj)
            .map(|r| r.bump_age())
            .ok_or(HeapError::NoSuchObject { object: obj })
    }

    /// Removes a dead object's record and accounts the reclaimed bytes.
    ///
    /// The caller (a collector's sweep) is responsible for only dropping
    /// objects that the latest mark proved unreachable.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchObject`] if `obj` is not live.
    pub fn drop_object(&mut self, obj: ObjectId) -> Result<u32, HeapError> {
        let slot = match self.slots.get(obj.index()).copied() {
            Some(slot) if slot != DEAD_SLOT => slot,
            _ => return Err(HeapError::NoSuchObject { object: obj }),
        };
        let rec = self.records[slot as usize]
            .take()
            .expect("live slot has a record");
        self.slots[obj.index()] = DEAD_SLOT;
        self.free_slots.push(slot);
        self.live_records -= 1;
        self.adjust_page_counts(rec.addr(), rec.size(), -1);
        self.mutation_seq += 1;
        // The region's object list keeps a stale entry; collectors purge
        // stale entries in bulk ([`purge_region_objects`]) or release the
        // region outright. Per-object list surgery would make sweeps
        // quadratic in region population.
        //
        // [`purge_region_objects`]: Heap::purge_region_objects
        self.stats.freed_objects += 1;
        self.stats.freed_bytes += u64::from(rec.size());
        Ok(rec.size())
    }

    /// Releases `region` back to the free pool and marks all of its pages
    /// no-need.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::IntegrityViolation`] (invariant
    /// `region-empty-on-release`) if the region still contains live object
    /// records; collectors must evacuate or drop them first. Stale list
    /// entries are fine. The region is left untouched on error.
    pub fn release_region(&mut self, region: RegionId) -> Result<(), HeapError> {
        // The incremental page-occupancy counters make the emptiness check
        // O(pages-per-region); the resident list is only materialized for
        // the error detail.
        let first = self.regions[region.index()].first_page().raw();
        let occupied = (first..first + self.config.pages_per_region())
            .any(|p| self.page_object_counts[p as usize] > 0);
        if occupied {
            let live = self.live_objects_in_region(region);
            return Err(HeapError::IntegrityViolation {
                invariant: "region-empty-on-release",
                detail: format!(
                    "released region {region} still holds {} live objects",
                    live.len()
                ),
            });
        }
        let r = &mut self.regions[region.index()];
        if let Some(space) = r.space() {
            self.spaces[space.index()].remove_region(region);
        }
        r.release();
        self.backend.release_region(region);
        for p in first..first + self.config.pages_per_region() {
            self.page_table.set_no_need(p, true);
        }
        self.free_regions.push(region);
        self.mutation_seq += 1;
        Ok(())
    }

    /// Detaches every region of `space` for evacuation.
    ///
    /// The regions stay assigned (their objects remain addressable) but the
    /// space's region list empties, so subsequent allocation into the space
    /// starts on fresh regions — the to-space of a copying collection. The
    /// collector must then [`relocate`](Heap::relocate) survivors and
    /// [`drop_object`](Heap::drop_object) the dead, after which
    /// [`finish_evacuation`](Heap::finish_evacuation) releases the sources.
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchSpace`] for an unknown id.
    /// * [`HeapError::IntegrityViolation`] (invariant
    ///   `no-nested-evacuation`) if an evacuation is already in progress —
    ///   a collector protocol violation, reachable from the public API.
    pub fn begin_evacuation(&mut self, space: SpaceId) -> Result<Vec<RegionId>, HeapError> {
        if !self.evacuating.is_empty() {
            return Err(HeapError::IntegrityViolation {
                invariant: "no-nested-evacuation",
                detail: format!(
                    "evacuation of {} regions already in progress",
                    self.evacuating.len()
                ),
            });
        }
        if space.index() >= self.spaces.len() {
            return Err(HeapError::NoSuchSpace { space });
        }
        let regions = self.spaces[space.index()].take_regions();
        self.evacuating = regions.clone();
        Ok(regions)
    }

    /// Detaches specific regions of `space` for evacuation (incremental
    /// compaction picks its victims; see [`begin_evacuation`] for the
    /// whole-space variant and the protocol).
    ///
    /// [`begin_evacuation`]: Heap::begin_evacuation
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchSpace`] for an unknown id.
    /// * [`HeapError::IntegrityViolation`] if an evacuation is already in
    ///   progress (`no-nested-evacuation`) or a victim region does not
    ///   belong to `space` (`victim-in-space`) — collector protocol
    ///   violations, reachable from the public API. No region is detached
    ///   until every victim is vetted.
    pub fn begin_evacuation_of(
        &mut self,
        space: SpaceId,
        regions: &[RegionId],
    ) -> Result<(), HeapError> {
        if !self.evacuating.is_empty() {
            return Err(HeapError::IntegrityViolation {
                invariant: "no-nested-evacuation",
                detail: format!(
                    "evacuation of {} regions already in progress",
                    self.evacuating.len()
                ),
            });
        }
        if space.index() >= self.spaces.len() {
            return Err(HeapError::NoSuchSpace { space });
        }
        for &r in regions {
            if self.regions[r.index()].space() != Some(space) {
                return Err(HeapError::IntegrityViolation {
                    invariant: "victim-in-space",
                    detail: format!("evacuation victim {r} does not belong to {space}"),
                });
            }
        }
        for &r in regions {
            self.spaces[space.index()].remove_region(r);
        }
        self.evacuating = regions.to_vec();
        Ok(())
    }

    /// Releases all evacuated regions back to the free pool.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::IntegrityViolation`] (invariant
    /// `region-empty-on-release`) if an evacuated region still holds object
    /// records — the collector failed to relocate or drop something.
    /// Regions released before the failing one stay released; the failing
    /// region and any after it remain detached in `evacuating`.
    pub fn finish_evacuation(&mut self) -> Result<(), HeapError> {
        // Release in detach order: the pool's LIFO region-reuse order is
        // part of the deterministic trajectory.
        let regions = std::mem::take(&mut self.evacuating);
        for (i, &region) in regions.iter().enumerate() {
            if let Err(e) = self.release_region(region) {
                self.evacuating = regions[i..].to_vec();
                return Err(e);
            }
        }
        Ok(())
    }

    /// The regions currently detached for evacuation.
    pub fn evacuating_regions(&self) -> &[RegionId] {
        &self.evacuating
    }

    /// Objects currently residing in `space`, region by region in allocation
    /// order. Stale list entries (dead or relocated-away objects) are
    /// filtered out.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    pub fn objects_in_space(&self, space: SpaceId) -> Result<Vec<ObjectId>, HeapError> {
        let s = self.space(space)?;
        let mut out = Vec::new();
        for &region in s.regions() {
            for &obj in self.regions[region.index()].objects() {
                if self.object(obj).map(|r| r.addr().region) == Some(region) {
                    out.push(obj);
                }
            }
        }
        Ok(out)
    }

    /// Live objects currently residing in `region` (stale entries filtered).
    pub fn live_objects_in_region(&self, region: RegionId) -> Vec<ObjectId> {
        self.regions[region.index()]
            .objects()
            .iter()
            .copied()
            .filter(|&obj| self.object(obj).map(|r| r.addr().region) == Some(region))
            .collect()
    }

    /// Rebuilds `region`'s object list, dropping stale entries — O(list
    /// length), done once per region per sweep.
    pub fn purge_region_objects(&mut self, region: RegionId) {
        let (slots, records) = (&self.slots, &self.records);
        self.regions[region.index()].retain_objects(|obj| {
            slab_get(slots, records, obj).map(|r| r.addr().region) == Some(region)
        });
    }

    // ------------------------------------------------------------------
    // Occupancy accounting
    // ------------------------------------------------------------------

    /// Bytes committed to assigned regions (the JVM-process RSS analogue the
    /// paper's Figure 9 tracks).
    pub fn committed_bytes(&self) -> u64 {
        let assigned = self.regions.iter().filter(|r| r.space().is_some()).count() as u64;
        assigned * self.config.region_bytes
    }

    /// Bytes bump-allocated in `space`'s regions (includes dead-but-unswept
    /// objects, like real occupancy).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchSpace`] for an unknown id.
    pub fn used_bytes(&self, space: SpaceId) -> Result<u64, HeapError> {
        let s = self.space(space)?;
        Ok(s.regions()
            .iter()
            .map(|&r| u64::from(self.regions[r.index()].used_bytes()))
            .sum())
    }

    /// Marks the no-need bit on every page of every assigned region that
    /// contains no live object bytes (the Recorder's pre-snapshot heap walk,
    /// paper §3.2/§4.1). Requires a fresh [`mark_live`] to be meaningful.
    ///
    /// Returns the number of pages newly marked.
    ///
    /// [`mark_live`]: Heap::mark_live
    pub fn mark_no_need_pages(&mut self, live: &LiveSet) -> u32 {
        if live.full
            && live.epoch == self.live_pages_epoch
            && live.mutation_seq == self.mutation_seq
        {
            // Fast path: the heap's live-page bitmap was rebuilt when `live`
            // was traced (or adopted) and nothing has moved since — a pure
            // O(pages) sweep, no per-object page-set rebuild.
            let pages = std::mem::take(&mut self.live_pages);
            let marked = self.sweep_no_need(&pages);
            self.live_pages = pages;
            marked
        } else {
            // Exact fallback for stale or partial sets: recompute the page
            // set from `live` against current object addresses, bit for bit
            // what the seed recomputed on every call.
            let words = (self.page_table.page_count() as usize).div_ceil(64);
            let mut pages = vec![0u64; words];
            for id in live.iter() {
                if let Some(rec) = slab_get(&self.slots, &self.records, id) {
                    let (first, last) = self.page_table.pages_of(rec.addr(), rec.size());
                    for p in first..=last {
                        bit_set(&mut pages, p as usize);
                    }
                }
            }
            self.sweep_no_need(&pages)
        }
    }

    /// Applies a live-page bitmap to the no-need bits of every assigned
    /// region's pages; returns how many pages were newly marked.
    fn sweep_no_need(&mut self, live_pages: &[u64]) -> u32 {
        let mut marked = 0;
        for region in &self.regions {
            if region.space().is_none() {
                continue; // free-pool pages are already no-need
            }
            let first = region.first_page().raw();
            for p in first..first + self.config.pages_per_region() {
                let should = !bit_get(live_pages, p as usize);
                if should && !self.page_table.flags_of(p).no_need {
                    marked += 1;
                }
                self.page_table.set_no_need(p, should);
            }
        }
        marked
    }

    // ------------------------------------------------------------------
    // Snapshot reuse (the zero-retrace contract)
    // ------------------------------------------------------------------

    /// Publishes a whole-heap [`LiveSet`] for reuse by the next snapshot.
    ///
    /// Contract: at call time, `live` must describe *exactly* the objects
    /// reachable from the root table with no extra roots. Collectors uphold
    /// this at the end of a full collection — the cycle's mark is still
    /// exact there, because the collection only dropped unreachable objects
    /// and relocated live ones, and no mutator ran in between — provided the
    /// mark itself used no stack roots. Young-only sets are ignored.
    ///
    /// The set is handed back by [`take_published_live`] only while no
    /// mutation has intervened; any allocation, drop, relocation, region
    /// release, reference edit, or root-table change invalidates it.
    ///
    /// [`take_published_live`]: Heap::take_published_live
    pub fn publish_live(&mut self, mut live: LiveSet) {
        if !live.full {
            self.retire_live_set(live);
            return;
        }
        live.mutation_seq = self.mutation_seq;
        live.roots_version = self.roots.version();
        if let Some(old) = self.published.replace(live) {
            self.retire_live_set(old);
        }
    }

    /// Takes the published LiveSet if it is still current (see
    /// [`publish_live`]); a stale set is discarded and `None` returned.
    ///
    /// [`publish_live`]: Heap::publish_live
    pub fn take_published_live(&mut self) -> Option<LiveSet> {
        if self.has_current_published_live() {
            self.published.take()
        } else {
            if let Some(stale) = self.published.take() {
                self.retire_live_set(stale);
            }
            None
        }
    }

    /// True if a published LiveSet is available and still current.
    pub fn has_current_published_live(&self) -> bool {
        self.published.as_ref().is_some_and(|l| {
            l.mutation_seq == self.mutation_seq && l.roots_version == self.roots.version()
        })
    }

    /// Replays the accounting side effects of a fresh [`mark_live`] from an
    /// already-current `live` set: refreshes every assigned region's
    /// `live_bytes` and rebuilds the live-page bitmap in one O(live) pass,
    /// without re-tracing the graph or touching mark state. The Dumper calls
    /// this when it reuses a published set, so collectors observe exactly
    /// the accounting a retrace would have produced.
    ///
    /// [`mark_live`]: Heap::mark_live
    pub fn refresh_live_accounting(&mut self, live: &LiveSet) {
        debug_assert!(live.full, "only whole-heap sets refresh accounting");
        // The common reuse flow hands back the set the most recent mark
        // produced, with no mutation in between: that mark already left
        // exactly this accounting, so there is nothing to replay.
        if self.live_pages_epoch == live.epoch() && self.live_pages_seq == live.mutation_seq {
            return;
        }
        let mut region_live = vec![0u32; self.regions.len()];
        for w in &mut self.live_pages {
            *w = 0;
        }
        for id in live.iter() {
            if let Some(rec) = slab_get(&self.slots, &self.records, id) {
                region_live[rec.addr().region.index()] += rec.size();
                let (first, last) = self.page_table.pages_of(rec.addr(), rec.size());
                for p in first..=last {
                    bit_set(&mut self.live_pages, p as usize);
                }
            }
        }
        for region in &mut self.regions {
            if region.space().is_some() {
                region.set_live_bytes(region_live[region.id().index()]);
            }
        }
        self.live_pages_epoch = live.epoch;
        self.live_pages_seq = live.mutation_seq;
    }

    /// Streams the identity hashes of `live` into `out` as the sorted,
    /// duplicate-free u64 column a [`SnapshotSeries`] ingests — reading each
    /// hash back out of the backend's object headers where real memory
    /// exists (falling back to the object table for sim heaps and tiny
    /// objects). This is the Dumper's capture path: no per-snapshot hash set
    /// is ever materialized.
    ///
    /// `SnapshotSeries` lives in `polm2-snapshot`; the column contract
    /// (ascending, deduplicated, widened raw hashes) is shared between the
    /// two crates.
    pub fn live_hash_column(&self, live: &LiveSet, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(live.len());
        for id in live.iter() {
            if let Some(rec) = slab_get(&self.slots, &self.records, id) {
                let hash = self
                    .backend
                    .read_header_hash(rec.addr(), rec.size())
                    .unwrap_or_else(|| rec.identity_hash());
                debug_assert_eq!(
                    hash,
                    rec.identity_hash(),
                    "backend object header drifted from the object table"
                );
                out.push(u64::from(hash.raw()));
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        // Slab consistency: the slot table and record slab are a bijection
        // on live ids. Scanning `slots` visits ids in index order — no sort.
        let mut live = 0usize;
        for (index, &slot) in self.slots.iter().enumerate() {
            if slot == DEAD_SLOT {
                continue;
            }
            let rec = self
                .records
                .get(slot as usize)
                .and_then(|r| r.as_ref())
                .unwrap_or_else(|| panic!("slot table points id #{index} at an empty slot"));
            assert_eq!(
                rec.id().index(),
                index,
                "record id does not match its slot-table index"
            );
            live += 1;
        }
        assert_eq!(live, self.live_records, "live-record count drifted");
        assert_eq!(
            self.records.len(),
            live + self.free_slots.len(),
            "record slab leaked slots"
        );
        // Every object's region must belong to the object's space and list it.
        for rec in self.records.iter().flatten() {
            let id = rec.id();
            let region = &self.regions[rec.addr().region.index()];
            assert_eq!(
                region.space(),
                Some(rec.space()),
                "object {id} resides in a region owned by a different space"
            );
            assert!(
                region.objects().contains(&id),
                "object {id} missing from its region's object list"
            );
            // (Stale entries — dead or moved-away ids — are permitted.)
        }
        // Incremental page-occupancy counters must equal a from-scratch
        // recomputation over the record slab.
        let mut counts = vec![0u32; self.page_object_counts.len()];
        for rec in self.records.iter().flatten() {
            let (first, last) = self.page_table.pages_of(rec.addr(), rec.size());
            for p in first..=last {
                counts[p as usize] += 1;
            }
        }
        for (p, (&have, &want)) in self
            .page_object_counts
            .iter()
            .zip(counts.iter())
            .enumerate()
        {
            assert_eq!(have, want, "page {p} occupancy count drifted");
        }
        // Free regions must be unassigned and empty.
        for &r in &self.free_regions {
            let region = &self.regions[r.index()];
            assert!(region.space().is_none(), "free region {r} is assigned");
            assert!(
                region.objects().is_empty(),
                "free region {r} holds stale objects"
            );
        }
        // Region partition: every region is free, owned by exactly one
        // space, or detached for evacuation.
        let owned: usize = self.spaces.iter().map(|s| s.regions().len()).sum();
        assert_eq!(
            owned + self.free_regions.len() + self.evacuating.len(),
            self.regions.len(),
            "regions lost or double-owned"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(HeapConfig::small())
    }

    fn alloc(h: &mut Heap, size: u32) -> ObjectId {
        let class = h.classes_mut().intern("T");
        h.allocate(class, size, SiteId::new(0), Heap::YOUNG_SPACE)
            .expect("alloc")
    }

    #[test]
    fn allocation_assigns_addresses_and_dirties_pages() {
        let mut h = heap();
        let a = alloc(&mut h, 100);
        let b = alloc(&mut h, 100);
        let ra = h.object(a).unwrap().addr();
        let rb = h.object(b).unwrap().addr();
        assert_eq!(ra.region, rb.region);
        assert_eq!(rb.offset, 100);
        assert!(h.page_table().dirty_count() > 0);
        assert_eq!(h.stats().allocated_objects, 2);
        h.check_invariants();
    }

    #[test]
    fn young_budget_signals_space_full() {
        let mut h = heap(); // young budget = 4 regions of 256 KiB
        let class = h.classes_mut().intern("Blob");
        let mut err = None;
        for _ in 0..2048 {
            match h.allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            err,
            Some(HeapError::SpaceFull {
                space: Heap::YOUNG_SPACE
            })
        );
        h.check_invariants();
    }

    #[test]
    fn object_too_large_is_rejected() {
        let mut h = heap();
        let class = h.classes_mut().intern("Huge");
        let err = h.allocate(class, (256 << 10) + 1, SiteId::new(0), Heap::YOUNG_SPACE);
        assert!(matches!(err, Err(HeapError::ObjectTooLarge { .. })));
    }

    #[test]
    fn mark_live_traces_through_edges() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        let c = alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        assert!(live.contains(a));
        assert!(live.contains(b));
        assert!(!live.contains(c));
        assert_eq!(live.live_bytes(), 128);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn extra_roots_keep_objects_alive() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let live = h.mark_live(&[a]);
        assert!(live.contains(a));
        let live = h.mark_live(&[]);
        assert!(!live.contains(a));
    }

    #[test]
    fn cycles_do_not_hang_marking() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        h.add_ref(b, a).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn relocation_moves_object_between_spaces() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let a = alloc(&mut h, 128);
        let hash = h.object(a).unwrap().identity_hash();
        let copied = h.relocate(a, old).unwrap();
        assert_eq!(copied, 128);
        let rec = h.object(a).unwrap();
        assert_eq!(rec.space(), old);
        assert_eq!(rec.identity_hash(), hash);
        assert_eq!(h.stats().relocated_objects, 1);
        h.check_invariants();
    }

    #[test]
    fn drop_object_and_release_region() {
        let mut h = heap();
        let a = alloc(&mut h, 128);
        let region = h.object(a).unwrap().addr().region;
        let freed = h.drop_object(a).unwrap();
        assert_eq!(freed, 128);
        assert!(h.object(a).is_none());
        let before = h.free_region_count();
        h.release_region(region).unwrap();
        assert_eq!(h.free_region_count(), before + 1);
        h.check_invariants();
    }

    #[test]
    fn releasing_populated_region_is_a_typed_violation() {
        let mut h = heap();
        let a = alloc(&mut h, 128);
        let region = h.object(a).unwrap().addr().region;
        let err = h.release_region(region).unwrap_err();
        match err {
            HeapError::IntegrityViolation { invariant, .. } => {
                assert_eq!(invariant, "region-empty-on-release");
            }
            other => panic!("expected integrity violation, got {other}"),
        }
        // The failed release must leave the region untouched.
        assert!(h.object(a).is_some());
        h.check_invariants();
    }

    #[test]
    fn committed_and_used_bytes() {
        let mut h = heap();
        assert_eq!(h.committed_bytes(), 0);
        alloc(&mut h, 1000);
        assert_eq!(h.committed_bytes(), 256 << 10);
        assert_eq!(h.used_bytes(Heap::YOUNG_SPACE).unwrap(), 1000);
    }

    #[test]
    fn no_need_walk_marks_dead_pages() {
        let mut h = heap();
        // Fill a few pages, keep only the first object alive.
        let keep = alloc(&mut h, 4096);
        for _ in 0..16 {
            alloc(&mut h, 4096);
        }
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, keep);
        let live = h.mark_live(&[]);
        let marked = h.mark_no_need_pages(&live);
        assert!(
            marked >= 16,
            "dead pages should be marked no-need, got {marked}"
        );
        // The page holding `keep` must not be no-need.
        let rec = h.object(keep).unwrap();
        let (first, _) = h.page_table().pages_of(rec.addr(), rec.size());
        assert!(!h.page_table().flags_of(first).no_need);
    }

    #[test]
    fn objects_in_space_enumerates_in_allocation_order() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        assert_eq!(h.objects_in_space(Heap::YOUNG_SPACE).unwrap(), vec![a, b]);
    }

    #[test]
    fn ref_errors_on_dead_objects() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.drop_object(b).unwrap();
        assert!(h.add_ref(a, b).is_err());
        assert!(h.add_ref(b, a).is_err());
        assert!(h.write_field(b).is_err());
    }

    #[test]
    fn young_marking_uses_remembered_set() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let class = h.classes_mut().intern("T");
        // An old parent referencing a young child: the write barrier must
        // keep the child alive for young-only marking.
        let parent = h.allocate(class, 64, SiteId::new(0), old).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, parent);
        let child = alloc(&mut h, 64);
        h.add_ref(parent, child).unwrap();
        assert_eq!(h.remembered_len(), 1);
        let live = h.mark_live_young(&[]);
        assert!(live.contains(child), "remembered edge keeps the child");
        assert!(
            !live.contains(parent),
            "old objects are outside the young live set"
        );
        // A young object with no remembered edge and no root dies.
        let orphan = alloc(&mut h, 64);
        let live = h.mark_live_young(&[]);
        assert!(!live.contains(orphan));
        // Pruning drops entries for promoted children.
        h.relocate(child, old).unwrap();
        h.prune_remembered();
        assert_eq!(h.remembered_len(), 0);
    }

    #[test]
    fn remember_if_young_filters_by_space() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let class = h.classes_mut().intern("T");
        let old_obj = h.allocate(class, 64, SiteId::new(0), old).unwrap();
        let young_obj = alloc(&mut h, 64);
        h.remember_if_young(old_obj);
        h.remember_if_young(young_obj);
        assert_eq!(h.remembered_len(), 1);
    }

    #[test]
    fn evacuation_protocol() {
        let mut h = heap();
        let keep = alloc(&mut h, 4096);
        let dead = alloc(&mut h, 4096);
        let src = h.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
        assert_eq!(src.len(), 1);
        assert_eq!(h.evacuating_regions(), &src[..]);
        h.check_invariants();
        // Survivor moves to a fresh young region; the dead object is dropped.
        h.relocate(keep, Heap::YOUNG_SPACE).unwrap();
        h.drop_object(dead).unwrap();
        h.finish_evacuation().unwrap();
        assert!(h.evacuating_regions().is_empty());
        let rec = h.object(keep).unwrap();
        assert_ne!(rec.addr().region, src[0], "survivor left the source region");
        h.check_invariants();
    }

    #[test]
    fn partial_evacuation_of_selected_regions() {
        let mut h = heap();
        // Fill two regions.
        let mut ids = Vec::new();
        for _ in 0..100 {
            ids.push(alloc(&mut h, 4096));
        }
        let regions: Vec<_> = h.space(Heap::YOUNG_SPACE).unwrap().regions().to_vec();
        assert!(regions.len() >= 2);
        let victim = regions[0];
        h.begin_evacuation_of(Heap::YOUNG_SPACE, &[victim]).unwrap();
        let to_move: Vec<_> = h.region(victim).objects().to_vec();
        for obj in to_move {
            h.relocate(obj, Heap::YOUNG_SPACE).unwrap();
        }
        h.finish_evacuation().unwrap();
        assert_eq!(h.region(victim).space(), None);
        h.check_invariants();
    }

    #[test]
    fn nested_evacuation_is_a_typed_violation() {
        let mut h = heap();
        alloc(&mut h, 64);
        h.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
        let err = h.begin_evacuation(Heap::YOUNG_SPACE).unwrap_err();
        match err {
            HeapError::IntegrityViolation { invariant, .. } => {
                assert_eq!(invariant, "no-nested-evacuation");
            }
            other => panic!("expected integrity violation, got {other}"),
        }
    }

    #[test]
    fn slab_reuses_slots_after_drop() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.drop_object(a).unwrap();
        let c = alloc(&mut h, 64);
        // The record slab recycled `a`'s slot for `c`; ids stay unique.
        assert_eq!(h.object_count(), 2);
        assert!(h.object(a).is_none());
        assert!(h.object(b).is_some());
        assert_eq!(h.object(c).unwrap().id(), c);
        assert_ne!(a, c);
        h.check_invariants();
    }

    #[test]
    fn marking_twice_yields_equal_sets() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let first = h.mark_live(&[]);
        let second = h.mark_live(&[]);
        assert_eq!(
            first.iter().collect::<Vec<_>>(),
            second.iter().collect::<Vec<_>>()
        );
        assert_eq!(first.live_bytes(), second.live_bytes());
        assert!(second.epoch() > first.epoch());
        assert!(first.is_full());
    }

    #[test]
    fn published_live_set_round_trip() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        h.publish_live(live);
        assert!(h.has_current_published_live());
        let taken = h.take_published_live().expect("still current");
        assert!(taken.contains(a));
        assert!(h.take_published_live().is_none(), "take consumes the set");
    }

    #[test]
    fn published_live_set_invalidated_by_heap_mutation() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        h.publish_live(live);
        alloc(&mut h, 64); // any allocation invalidates
        assert!(!h.has_current_published_live());
        assert!(h.take_published_live().is_none());
    }

    #[test]
    fn published_live_set_invalidated_by_root_change() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        h.publish_live(live);
        h.roots_mut().push(slot, b); // root change invalidates
        assert!(h.take_published_live().is_none());
    }

    #[test]
    fn young_sets_are_never_published() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live_young(&[]);
        assert!(!live.is_full());
        h.publish_live(live);
        assert!(!h.has_current_published_live());
    }

    #[test]
    fn no_need_fast_path_matches_fallback_recompute() {
        let mut h = heap();
        let keep = alloc(&mut h, 4096);
        for _ in 0..16 {
            alloc(&mut h, 4096);
        }
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, keep);
        let stale = h.mark_live(&[]);
        let fresh = h.mark_live(&[]);
        // `stale` no longer matches the bitmap epoch => exact fallback.
        let marked_fallback = h.mark_no_need_pages(&stale);
        let flags_fallback: Vec<_> = h.page_table().iter().collect();
        // `fresh` matches => O(pages) bitmap sweep. Same object set, so the
        // resulting page flags must be identical and nothing newly marked.
        let marked_fast = h.mark_no_need_pages(&fresh);
        let flags_fast: Vec<_> = h.page_table().iter().collect();
        assert!(marked_fallback >= 16);
        assert_eq!(marked_fast, 0);
        assert_eq!(flags_fallback, flags_fast);
    }

    #[test]
    fn refresh_live_accounting_matches_fresh_mark() {
        let mut h = heap();
        let a = alloc(&mut h, 4096);
        let b = alloc(&mut h, 4096);
        alloc(&mut h, 4096); // garbage
        h.add_ref(a, b).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        h.refresh_live_accounting(&live);
        let after_refresh: Vec<u32> = h.regions().iter().map(|r| r.live_bytes()).collect();
        let _ = h.mark_live(&[]);
        let after_mark: Vec<u32> = h.regions().iter().map(|r| r.live_bytes()).collect();
        assert_eq!(after_refresh, after_mark);
    }

    #[test]
    fn page_object_counts_track_alloc_drop_relocate() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let a = alloc(&mut h, 4096);
        let rec = h.object(a).unwrap();
        let (first, _) = h.page_table().pages_of(rec.addr(), rec.size());
        assert_eq!(h.page_object_count(first), 1);
        h.relocate(a, old).unwrap();
        assert_eq!(h.page_object_count(first), 0, "source page emptied");
        let rec = h.object(a).unwrap();
        let (dst, _) = h.page_table().pages_of(rec.addr(), rec.size());
        assert_eq!(h.page_object_count(dst), 1);
        h.drop_object(a).unwrap();
        assert_eq!(h.page_object_count(dst), 0);
        h.check_invariants();
    }

    /// Deterministic xorshift for test graph construction.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Allocates `n` small objects with seeded random edges and roots the
    /// first `rooted` of them. Big enough to cross the parallel-mark gate.
    fn seeded_graph(h: &mut Heap, n: usize, rooted: usize, seed: u64) -> Vec<ObjectId> {
        let class = h.classes_mut().intern("T");
        let ids: Vec<ObjectId> = (0..n)
            .map(|_| {
                h.allocate(class, 32, SiteId::new(0), Heap::YOUNG_SPACE)
                    .expect("alloc")
            })
            .collect();
        let mut s = seed | 1;
        for &a in &ids {
            for _ in 0..2 {
                let b = ids[(xorshift(&mut s) % n as u64) as usize];
                h.add_ref(a, b).unwrap();
            }
        }
        let slot = h.roots_mut().create_slot("r");
        for &id in &ids[..rooted] {
            h.roots_mut().push(slot, id);
        }
        ids
    }

    fn live_fingerprint(h: &Heap, live: &LiveSet) -> (Vec<ObjectId>, u64, u64, Vec<u32>) {
        (
            live.iter().collect(),
            live.live_bytes(),
            live.traced_objects(),
            h.regions().iter().map(|r| r.live_bytes()).collect(),
        )
    }

    #[test]
    fn parallel_mark_matches_serial_at_any_worker_count() {
        let mut h = heap();
        // Force the parallel paths regardless of host core count or the
        // production break-even thresholds — this test pins equality, not
        // wall-clock.
        h.set_parallel_tuning(ParallelTuning::force());
        seeded_graph(&mut h, 2000, 40, 0xDEADBEEF);
        h.set_gc_workers(1);
        let reference = {
            let live = h.mark_live(&[]);
            let fp = live_fingerprint(&h, &live);
            h.retire_live_set(live);
            fp
        };
        assert!(!reference.0.is_empty());
        for workers in [2usize, 4, 8] {
            h.set_gc_workers(workers);
            let live = h.mark_live(&[]);
            assert!(live.is_full());
            let fp = live_fingerprint(&h, &live);
            h.retire_live_set(live);
            assert_eq!(fp, reference, "{workers}-worker mark diverged");
        }
        h.check_invariants();
    }

    #[test]
    fn parallel_young_mark_matches_serial_with_remembered_set() {
        let mut h = heap();
        h.set_parallel_tuning(ParallelTuning::force());
        let old = h.create_space(GenId::new(1), None);
        let class = h.classes_mut().intern("Old");
        let parent = h.allocate(class, 64, SiteId::new(0), old).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, parent);
        let ids = seeded_graph(&mut h, 1600, 10, 0xFEEDFACE);
        // Old->young edges flow through the write barrier into the
        // remembered set.
        for &child in &ids[1500..1520.min(ids.len())] {
            h.add_ref(parent, child).unwrap();
        }
        h.set_gc_workers(1);
        let reference = {
            let live = h.mark_live_young(&[]);
            let fp = live_fingerprint(&h, &live);
            h.retire_live_set(live);
            fp
        };
        for workers in [2usize, 4, 8] {
            h.set_gc_workers(workers);
            let live = h.mark_live_young(&[]);
            assert!(!live.is_full());
            let fp = live_fingerprint(&h, &live);
            h.retire_live_set(live);
            assert_eq!(fp, reference, "{workers}-worker young mark diverged");
        }
    }

    /// Full observable heap state, for serial-vs-parallel evacuation
    /// equality: object placements, stats, dirty/no-need/free-region
    /// counts, and per-page object counts.
    type HeapFingerprint = (
        Vec<(ObjectId, Addr, SpaceId, u8)>,
        HeapStats,
        u32,
        u32,
        u32,
        Vec<u32>,
    );

    fn heap_fingerprint(h: &Heap) -> HeapFingerprint {
        let mut objects = Vec::new();
        for space in h.spaces() {
            for id in h.objects_in_space(space.id()).unwrap() {
                let rec = h.object(id).unwrap();
                (objects).push((id, rec.addr(), rec.space(), rec.age()));
            }
        }
        let counts = (0..h.page_table().page_count())
            .map(|p| h.page_object_count(p))
            .collect();
        (
            objects,
            h.stats(),
            h.page_table().dirty_count(),
            h.page_table().no_need_count(),
            h.free_region_count(),
            counts,
        )
    }

    fn evacuation_workload(workers: usize) -> Heap {
        evacuation_workload_on(HeapConfig::small(), workers)
    }

    fn evacuation_workload_on(config: HeapConfig, workers: usize) -> Heap {
        let mut h = Heap::new(config);
        h.set_parallel_tuning(ParallelTuning::force());
        h.set_gc_workers(workers);
        let ids = seeded_graph(&mut h, 1500, 30, 0xABCD);
        let old = h.create_space(GenId::new(1), None);
        let sources = h.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
        assert!(!sources.is_empty());
        let mut ops = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let op = match i % 3 {
                0 => EvacDecision::Drop,
                1 => EvacDecision::Move {
                    dest: Heap::YOUNG_SPACE,
                    bump_age: true,
                },
                _ => EvacDecision::Move {
                    dest: old,
                    bump_age: false,
                },
            };
            ops.push((id, op));
        }
        h.evacuate_batch(&ops).unwrap();
        h.finish_evacuation().unwrap();
        h.check_invariants();
        h
    }

    #[test]
    fn evacuate_batch_is_identical_serial_and_parallel() {
        let reference = heap_fingerprint(&evacuation_workload(1));
        for workers in [2usize, 4, 8] {
            let fp = heap_fingerprint(&evacuation_workload(workers));
            assert_eq!(fp, reference, "{workers}-worker evacuation diverged");
        }
    }

    #[test]
    fn real_backend_matches_sim_on_evacuation_workload() {
        let real = HeapConfig::small().with_backend(BackendKind::Real);
        let reference = heap_fingerprint(&evacuation_workload(1));
        for workers in [1usize, 2, 4] {
            let h = evacuation_workload_on(real, workers);
            assert_eq!(h.backend_kind(), BackendKind::Real);
            let fp = heap_fingerprint(&h);
            assert_eq!(fp, reference, "real backend diverged at {workers}w");
            let stats = h.backend_stats();
            assert!(stats.bytes_written > 0, "payloads were written");
            assert!(stats.bytes_copied > 0, "moves were memcpy'd");
        }
    }

    #[test]
    fn real_backend_streams_identical_hash_columns() {
        let mut sim = heap();
        let mut real = Heap::new(HeapConfig::small().with_backend(BackendKind::Real));
        for h in [&mut sim, &mut real] {
            seeded_graph(h, 600, 20, 0x5EED);
        }
        let (mut sim_col, mut real_col) = (Vec::new(), Vec::new());
        let live = sim.mark_live(&[]);
        sim.live_hash_column(&live, &mut sim_col);
        let live_r = real.mark_live(&[]);
        real.live_hash_column(&live_r, &mut real_col);
        assert!(!sim_col.is_empty());
        assert_eq!(sim_col, real_col, "streamed hash columns diverged");
        assert!(sim_col.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    }

    #[test]
    fn cpu_budget_caps_effective_workers_under_default_tuning() {
        let mut h = heap();
        h.set_gc_workers(64);
        assert_eq!(h.gc_workers(), 64, "configured count is preserved");
        let budgeted = h.effective_gc_workers();
        assert!(
            budgeted <= std::thread::available_parallelism().map_or(1, |n| n.get()),
            "default tuning respects the cpu budget"
        );
        h.set_parallel_tuning(ParallelTuning::force());
        assert_eq!(h.effective_gc_workers(), 64, "force() lifts the cap");
    }

    #[test]
    fn evacuate_batch_matches_relocate_and_drop_sequence() {
        let build = || {
            let mut h = heap();
            let ids: Vec<ObjectId> = (0..8).map(|_| alloc(&mut h, 4096)).collect();
            (h, ids)
        };
        let (mut batch, ids) = build();
        let old = batch.create_space(GenId::new(1), None);
        batch.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
        let ops: Vec<(ObjectId, EvacDecision)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let op = if i % 2 == 0 {
                    EvacDecision::Drop
                } else {
                    EvacDecision::Move {
                        dest: old,
                        bump_age: true,
                    }
                };
                (id, op)
            })
            .collect();
        batch.evacuate_batch(&ops).unwrap();
        batch.finish_evacuation().unwrap();

        let (mut serial, ids) = build();
        let old = serial.create_space(GenId::new(1), None);
        serial.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                serial.drop_object(id).unwrap();
            } else {
                serial.bump_age(id).unwrap();
                serial.relocate(id, old).unwrap();
            }
        }
        serial.finish_evacuation().unwrap();

        assert_eq!(heap_fingerprint(&batch), heap_fingerprint(&serial));
        batch.check_invariants();
        serial.check_invariants();
    }

    #[test]
    fn evacuate_batch_errors_on_dead_object() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        h.drop_object(a).unwrap();
        let err = h.evacuate_batch(&[(a, EvacDecision::Drop)]);
        assert!(matches!(err, Err(HeapError::NoSuchObject { .. })));
    }

    #[test]
    fn remembered_churn_counters_track_barrier_and_prune() {
        let mut h = heap();
        let old = h.create_space(GenId::new(1), None);
        let class = h.classes_mut().intern("T");
        let parent = h.allocate(class, 64, SiteId::new(0), old).unwrap();
        let child = alloc(&mut h, 64);
        h.add_ref(parent, child).unwrap();
        h.add_ref(parent, child).unwrap(); // duplicate entry
        assert_eq!(h.remembered_churn().recorded, 2);
        h.prune_remembered();
        let churn = h.remembered_churn();
        assert_eq!(churn.prune_calls, 1);
        assert_eq!(churn.peak_len, 2);
        assert_eq!(churn.pruned, 1, "duplicate collapses");
        assert_eq!(churn.retained(), 1);
        h.remember_if_young(child);
        assert_eq!(h.remembered_churn().recorded, 3);
    }

    #[test]
    fn retired_mark_buffers_are_reused_without_corruption() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let first = h.mark_live(&[]);
        let reference: Vec<ObjectId> = first.iter().collect();
        h.retire_live_set(first);
        // The next marks draw from the retained pool; results must be
        // unaffected by whatever the buffers previously held.
        for _ in 0..3 {
            let live = h.mark_live(&[]);
            assert_eq!(live.iter().collect::<Vec<_>>(), reference);
            assert_eq!(live.live_bytes(), 128);
            h.retire_live_set(live);
        }
    }

    #[test]
    fn live_set_order_is_ascending_object_id() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        let c = alloc(&mut h, 64);
        // Root c first and wire edges so BFS discovery order (c, a, b)
        // differs from id order (a, b, c).
        h.add_ref(c, a).unwrap();
        h.add_ref(a, b).unwrap();
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, c);
        let live = h.mark_live(&[]);
        assert_eq!(live.iter().collect::<Vec<_>>(), vec![a, b, c]);
    }

    #[test]
    fn remove_ref_round_trip() {
        let mut h = heap();
        let a = alloc(&mut h, 64);
        let b = alloc(&mut h, 64);
        h.add_ref(a, b).unwrap();
        assert!(h.remove_ref(a, b).unwrap());
        assert!(!h.remove_ref(a, b).unwrap());
        let slot = h.roots_mut().create_slot("r");
        h.roots_mut().push(slot, a);
        let live = h.mark_live(&[]);
        assert!(!live.contains(b));
    }
}
