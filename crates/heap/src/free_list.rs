//! Size-class segregated free-list allocator backing tenured region memory.
//!
//! A [`FreeList`] owns large page-aligned chunks obtained from the system
//! allocator and serves variable-sized blocks out of them. Every block
//! handed out is **zeroed**, the same handout contract as
//! [`BumpArena`](crate::bump::BumpArena): fresh chunks are zeroed at carve
//! and freed blocks are re-zeroed at [`free`](FreeList::free) time — which
//! the backend only reaches from a region release inside a collection, so
//! the bulk memset is charged to GC wall-clock, never to the allocation
//! path. Splitting and merging preserve the contract for free (zeroed
//! fragments of zeroed blocks), which is what lets tenured allocation
//! store only the 8-byte object header.
//!
//! Free space is **segregated by size class**: class `c` holds free blocks
//! of `granule * 2^c ..= granule * (2^(c+1) - 1)` bytes (the last class is
//! open-ended), each class a LIFO stack, with a nonempty-class bitmap on
//! top. Allocation is O(1): a bounded first-fit scan of the request's own
//! class, then a bitmap scan for the lowest nonempty *strictly higher*
//! class, any block of which is guaranteed to fit. The class of a size is
//! a precomputed table lookup ([`FreeList::class_of`]).
//!
//! `free` does O(1) bookkeeping — push, set a bit — because coalescing is
//! **deferred**: instead of merging neighbors on every free, the whole
//! list is address-sorted and merged in one pass by [`FreeList::coalesce`],
//! which the real backend runs once per GC cycle (and `alloc` runs itself
//! before growing, so a fit fragmented across deferred frees is always
//! found before the footprint grows). The invariants "no overlap, classes
//! consistent, bytes accounted" hold at every step
//! ([`FreeList::assert_invariants`]); "no two adjacent free blocks"
//! additionally holds right after a coalesce
//! ([`FreeList::assert_coalesced`]).
//!
//! Like [`BumpArena`](crate::bump::BumpArena), blocks are identified by
//! handles ([`FreeBlock`]) rather than raw addresses, which keeps pointer
//! provenance clean under Miri and makes `free` order-independent with no
//! address lookup.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

use crate::bump::pretouch;

/// Number of size classes. Class `c` holds free blocks of
/// `granule * 2^c ..= granule * (2^(c+1) - 1)` bytes; the last class is
/// open-ended.
const NUM_CLASSES: usize = 16;

/// Granule counts covered by the precomputed size-class table; larger
/// counts (blocks over 16 MiB at the 4 KiB production granule) fall back
/// to the bit-scan formula.
const CLASS_LUT_GRANULES: usize = 4096;

/// How many blocks of the request's own class the bounded first-fit scan
/// inspects before escalating to a strictly higher class.
const CLASS_SCAN: usize = 8;

/// One system-allocated chunk the free list carves blocks from.
#[derive(Debug)]
struct Chunk {
    ptr: NonNull<u8>,
    layout: Layout,
}

/// Handle to one allocated block. Must be passed back to
/// [`FreeList::free`] exactly once; the memory stays valid until then (or
/// until the list is dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeBlock {
    chunk: u32,
    offset: usize,
    /// The rounded size actually reserved for the block.
    pub(crate) size: usize,
}

impl FreeBlock {
    /// The rounded size actually reserved for the block, in bytes.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// A free block on one of the class lists.
#[derive(Debug, Clone, Copy)]
struct Slot {
    chunk: u32,
    offset: usize,
    size: usize,
}

/// A size-class segregated free-list allocator with deferred address-order
/// coalescing.
#[derive(Debug)]
pub struct FreeList {
    /// Size granule and alignment of every block — the heap page size.
    granule: usize,
    /// Preferred chunk size; oversized requests get a dedicated chunk.
    min_chunk: usize,
    chunks: Vec<Chunk>,
    /// Per size class: LIFO stack of free blocks.
    classes: Vec<Vec<Slot>>,
    /// Bit `c` set iff `classes[c]` is nonempty.
    nonempty: u32,
    /// `granule count -> class`, precomputed so the alloc path does one
    /// indexed load instead of a bit scan.
    class_lut: Box<[u8; CLASS_LUT_GRANULES]>,
    /// Frees since the last coalesce (deferred-merge debt).
    pending_frees: usize,
    /// Retained scratch for [`FreeList::coalesce`].
    scratch: Vec<Slot>,
    /// Bytes currently handed out to callers.
    allocated_bytes: usize,
}

// SAFETY: the list exclusively owns its chunks; the raw pointers are never
// shared, so moving the whole list to another thread is sound.
unsafe impl Send for FreeList {}

impl FreeList {
    /// Creates a free list serving blocks rounded to `granule` (a power of
    /// two, typically the heap page size), growing in `min_chunk`-sized
    /// chunks.
    pub fn new(granule: usize, min_chunk: usize) -> Self {
        assert!(granule.is_power_of_two(), "granule must be a power of two");
        let mut class_lut = Box::new([0u8; CLASS_LUT_GRANULES]);
        for (g, slot) in class_lut.iter_mut().enumerate().skip(1) {
            *slot = Self::class_of_granules(g) as u8;
        }
        FreeList {
            granule,
            min_chunk: min_chunk.max(granule),
            chunks: Vec::new(),
            classes: vec![Vec::new(); NUM_CLASSES],
            nonempty: 0,
            class_lut,
            pending_frees: 0,
            scratch: Vec::new(),
            allocated_bytes: 0,
        }
    }

    fn round_up(&self, size: usize) -> usize {
        size.max(1).div_ceil(self.granule) * self.granule
    }

    /// `floor(log2(g))` clamped to the last class — the bit-scan fallback
    /// behind the lookup table.
    fn class_of_granules(g: usize) -> usize {
        debug_assert!(g >= 1);
        ((usize::BITS - 1 - g.leading_zeros()) as usize).min(NUM_CLASSES - 1)
    }

    /// The size class of a rounded block size: one table load for every
    /// block up to [`CLASS_LUT_GRANULES`] granules, bit scan beyond.
    #[inline]
    fn class_of(&self, size: usize) -> usize {
        debug_assert!(size >= self.granule && size.is_multiple_of(self.granule));
        let g = size / self.granule;
        match self.class_lut.get(g) {
            Some(&c) => c as usize,
            None => Self::class_of_granules(g),
        }
    }

    fn push_slot(&mut self, slot: Slot) {
        let class = self.class_of(slot.size);
        self.classes[class].push(slot);
        self.nonempty |= 1 << class;
    }

    fn take_slot(&mut self, class: usize, index: usize) -> Slot {
        let slot = self.classes[class].swap_remove(index);
        if self.classes[class].is_empty() {
            self.nonempty &= !(1 << class);
        }
        slot
    }

    /// O(1) segregated fit: a bounded first-fit scan of the request's own
    /// class (newest blocks first), then the lowest nonempty strictly
    /// higher class, whose every block is guaranteed large enough.
    fn try_alloc(&mut self, size: usize) -> Option<FreeBlock> {
        let class = self.class_of(size);
        let len = self.classes[class].len();
        for i in (len.saturating_sub(CLASS_SCAN)..len).rev() {
            if self.classes[class][i].size >= size {
                let slot = self.take_slot(class, i);
                return Some(self.carve(slot, size));
            }
        }
        let higher = self.nonempty >> (class + 1);
        if higher != 0 {
            let c = class + 1 + higher.trailing_zeros() as usize;
            let index = self.classes[c].len() - 1;
            let slot = self.take_slot(c, index);
            debug_assert!(slot.size >= size, "higher-class block too small");
            return Some(self.carve(slot, size));
        }
        None
    }

    /// Splits `size` bytes off the low end of `slot`, returning the
    /// remainder (if any) to its class.
    fn carve(&mut self, slot: Slot, size: usize) -> FreeBlock {
        if slot.size > size {
            self.push_slot(Slot {
                chunk: slot.chunk,
                offset: slot.offset + size,
                size: slot.size - size,
            });
        }
        self.allocated_bytes += size;
        FreeBlock {
            chunk: slot.chunk,
            offset: slot.offset,
            size,
        }
    }

    fn grow(&mut self, at_least: usize) {
        let bytes = self.round_up(at_least.max(self.min_chunk));
        let layout = Layout::from_size_align(bytes, self.granule).expect("valid chunk layout");
        // SAFETY: `layout` has non-zero size (bytes >= granule >= 1).
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout)
        };
        // Zero at carve so the handout contract holds; chunks past the
        // prefaulted pool pay this cold, once.
        // SAFETY: the chunk spans `layout.size()` writable bytes.
        unsafe { pretouch(ptr.as_ptr(), layout.size()) };
        self.chunks.push(Chunk { ptr, layout });
        let chunk = (self.chunks.len() - 1) as u32;
        self.push_slot(Slot {
            chunk,
            offset: 0,
            size: bytes,
        });
    }

    /// Grows chunks until the list's footprint covers `bytes`, leaving the
    /// memory on the free list zeroed, page-warm, and ready to serve — the
    /// tenured half of the `-XX:+AlwaysPreTouch` analogue (see
    /// [`BumpArena::prefault`](crate::bump::BumpArena::prefault)). Demand
    /// beyond the pre-faulted pool still grows cold, once.
    pub fn prefault(&mut self, bytes: usize) {
        while self.footprint_bytes() < bytes {
            self.grow(self.min_chunk);
        }
    }

    /// Allocates a block of at least `size` bytes (rounded up to the
    /// granule) with every byte zeroed (see the module docs), splitting the
    /// chosen free block and keeping the remainder on the list.
    pub fn alloc(&mut self, size: usize) -> FreeBlock {
        let size = self.round_up(size);
        if let Some(block) = self.try_alloc(size) {
            return block;
        }
        // The fit may exist but be fragmented across deferred frees;
        // coalesce before paying for fresh memory.
        if self.pending_frees > 0 {
            self.coalesce();
            if let Some(block) = self.try_alloc(size) {
                return block;
            }
        }
        self.grow(size);
        self.try_alloc(size).expect("fresh chunk fits the request")
    }

    /// Returns a block to the list, re-zeroing it in bulk — the GC-side
    /// half of the zeroed-handout contract (the backend frees only from a
    /// region release inside a collection). The list bookkeeping is O(1):
    /// coalescing with neighbors is deferred to the next
    /// [`coalesce`](FreeList::coalesce) pass. The caller must not touch
    /// the block's memory afterwards, and must not free the same block
    /// twice.
    pub fn free(&mut self, block: FreeBlock) {
        // SAFETY: the block is live (not yet freed) and spans `size`
        // writable bytes of its chunk; the caller surrenders it here.
        unsafe { pretouch(self.ptr(block).as_ptr(), block.size) };
        self.push_slot(Slot {
            chunk: block.chunk,
            offset: block.offset,
            size: block.size,
        });
        self.pending_frees += 1;
        self.allocated_bytes -= block.size;
    }

    /// Address-order coalescing pass: sorts every free block and merges
    /// adjacent neighbors in one sweep, rebuilding the class lists. Run
    /// once per GC cycle by the real backend (and by
    /// [`alloc`](FreeList::alloc) before it grows the footprint), instead
    /// of on every `free`.
    pub fn coalesce(&mut self) {
        self.pending_frees = 0;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for class in &mut self.classes {
            scratch.append(class);
        }
        self.nonempty = 0;
        scratch.sort_unstable_by_key(|s| (s.chunk, s.offset));
        let mut merged: Option<Slot> = None;
        for slot in scratch.drain(..) {
            match &mut merged {
                Some(m) if m.chunk == slot.chunk && m.offset + m.size == slot.offset => {
                    m.size += slot.size;
                }
                _ => {
                    if let Some(m) = merged.take() {
                        self.push_slot(m);
                    }
                    merged = Some(slot);
                }
            }
        }
        if let Some(m) = merged {
            self.push_slot(m);
        }
        self.scratch = scratch;
    }

    /// Frees recorded since the last coalescing pass.
    pub fn pending_frees(&self) -> usize {
        self.pending_frees
    }

    /// The base pointer of `block`.
    pub fn ptr(&self, block: FreeBlock) -> NonNull<u8> {
        let chunk = &self.chunks[block.chunk as usize];
        debug_assert!(block.offset + block.size <= chunk.layout.size());
        // SAFETY: the block was carved from this chunk, so
        // `offset + size <= layout.size()` and the result stays in bounds.
        unsafe { NonNull::new_unchecked(chunk.ptr.as_ptr().add(block.offset)) }
    }

    /// Total bytes obtained from the system allocator.
    pub fn footprint_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.layout.size()).sum()
    }

    /// Bytes currently handed out to callers.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Number of free blocks across all chunks. Between coalescing passes
    /// this includes unmerged neighbors; right after
    /// [`coalesce`](FreeList::coalesce) it is the minimum possible for the
    /// current allocation pattern.
    pub fn free_block_count(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Checks the structural invariants that hold at *every* step —
    /// in-bounds, granule-aligned, non-overlapping free blocks, class and
    /// bitmap consistency, byte accounting — returning a description of the
    /// first violation instead of panicking. The integrity verifier's entry
    /// point; [`assert_invariants`](FreeList::assert_invariants) is the
    /// panicking wrapper tests use.
    pub fn validate(&self) -> Result<(), String> {
        let mut all: Vec<Slot> = Vec::new();
        let mut free_bytes = 0usize;
        for (class, list) in self.classes.iter().enumerate() {
            if list.is_empty() != (self.nonempty & (1 << class) == 0) {
                return Err(format!("nonempty bitmap out of sync for class {class}"));
            }
            for slot in list {
                if slot.size == 0 || !slot.size.is_multiple_of(self.granule) {
                    return Err(format!("bad free size {}", slot.size));
                }
                if !slot.offset.is_multiple_of(self.granule) {
                    return Err(format!("misaligned free offset {:#x}", slot.offset));
                }
                if slot.offset + slot.size > self.chunks[slot.chunk as usize].layout.size() {
                    return Err(format!(
                        "free block out of bounds: chunk {} offset {:#x} size {}",
                        slot.chunk, slot.offset, slot.size
                    ));
                }
                if self.class_of(slot.size) != class {
                    return Err(format!(
                        "free block of {} bytes filed under class {class}",
                        slot.size
                    ));
                }
                free_bytes += slot.size;
                all.push(*slot);
            }
        }
        all.sort_unstable_by_key(|s| (s.chunk, s.offset));
        for pair in all.windows(2) {
            if pair[0].chunk == pair[1].chunk && pair[0].offset + pair[0].size > pair[1].offset {
                return Err(format!(
                    "free blocks overlap in chunk {} at offset {:#x}",
                    pair[0].chunk, pair[1].offset
                ));
            }
        }
        if free_bytes + self.allocated_bytes != self.footprint_bytes() {
            return Err(format!(
                "free ({free_bytes}) + allocated ({}) bytes do not equal the footprint ({})",
                self.allocated_bytes,
                self.footprint_bytes()
            ));
        }
        Ok(())
    }

    /// Checks the zeroed-handout contract on every *free* block: freed
    /// memory is re-zeroed at [`free`](FreeList::free) time and nothing may
    /// legitimately write it afterwards, so any non-zero byte is proof of a
    /// stale or wild write. Returns a description of the first dirty byte.
    pub fn check_zeroed(&self) -> Result<(), String> {
        for slot in self.classes.iter().flatten() {
            let chunk = &self.chunks[slot.chunk as usize];
            // SAFETY: the slot lies in-bounds of its chunk (validated at
            // every push) and the list exclusively owns the memory.
            let bytes = unsafe {
                std::slice::from_raw_parts(chunk.ptr.as_ptr().add(slot.offset), slot.size)
            };
            if let Some(pos) = bytes.iter().position(|&b| b != 0) {
                return Err(format!(
                    "free block at chunk {} offset {:#x} holds non-zero byte {:#04x} at +{:#x}",
                    slot.chunk, slot.offset, bytes[pos], pos
                ));
            }
        }
        Ok(())
    }

    /// XORs `mask` into a deterministically chosen byte of one free block —
    /// the chaos arm's "stray write into freed memory" class. Returns
    /// `false` when no free blocks exist or `mask` is zero.
    pub(crate) fn corrupt_free(&mut self, selector: u64, mask: u8) -> bool {
        let total = self.free_block_count();
        if total == 0 || mask == 0 {
            return false;
        }
        let mut k = (selector % total as u64) as usize;
        for list in &self.classes {
            if k >= list.len() {
                k -= list.len();
                continue;
            }
            let slot = list[k];
            let offset = ((selector >> 8) % slot.size as u64) as usize;
            let chunk = &self.chunks[slot.chunk as usize];
            // SAFETY: `slot.offset + offset < slot.offset + slot.size`,
            // in-bounds of the chunk the list owns.
            unsafe {
                let p = chunk.ptr.as_ptr().add(slot.offset + offset);
                p.write(p.read() ^ mask);
            }
            return true;
        }
        false
    }

    /// Panicking wrapper around [`validate`](FreeList::validate), used by
    /// unit and property tests.
    pub fn assert_invariants(&self) {
        if let Err(msg) = self.validate() {
            panic!("{msg}");
        }
    }

    /// [`assert_invariants`](FreeList::assert_invariants) plus the
    /// post-coalesce guarantee: no two adjacent free blocks remain.
    pub fn assert_coalesced(&self) {
        self.assert_invariants();
        let mut all: Vec<Slot> = self.classes.iter().flatten().copied().collect();
        all.sort_unstable_by_key(|s| (s.chunk, s.offset));
        for pair in all.windows(2) {
            if pair[0].chunk == pair[1].chunk {
                assert!(
                    pair[0].offset + pair[0].size < pair[1].offset,
                    "adjacent free blocks not coalesced"
                );
            }
        }
    }
}

impl Drop for FreeList {
    fn drop(&mut self) {
        for chunk in &self.chunks {
            // SAFETY: each chunk was allocated with exactly this layout and
            // is deallocated once, here.
            unsafe { dealloc(chunk.ptr.as_ptr(), chunk.layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_and_aligns() {
        let mut fl = FreeList::new(4096, 1 << 20);
        let a = fl.alloc(1);
        assert_eq!(a.size, 4096);
        assert_eq!(fl.ptr(a).as_ptr() as usize % 4096, 0);
        let b = fl.alloc(4097);
        assert_eq!(b.size, 8192);
        fl.assert_invariants();
        fl.free(a);
        fl.free(b);
        fl.assert_invariants();
    }

    #[test]
    fn class_lut_matches_the_bit_scan() {
        let fl = FreeList::new(4096, 1 << 20);
        for g in 1..CLASS_LUT_GRANULES {
            assert_eq!(
                fl.class_of(g * 4096),
                FreeList::class_of_granules(g),
                "granules {g}"
            );
        }
        // Beyond the table the fallback serves (and clamps to the last
        // class).
        assert_eq!(
            fl.class_of(CLASS_LUT_GRANULES * 2 * 4096),
            FreeList::class_of_granules(CLASS_LUT_GRANULES * 2)
        );
        assert_eq!(fl.class_of(1usize << 40), NUM_CLASSES - 1);
    }

    #[test]
    fn coalescing_round_trips_to_one_block() {
        let mut fl = FreeList::new(4096, 1 << 20);
        let blocks: Vec<FreeBlock> = (0..16).map(|_| fl.alloc(64 << 10)).collect();
        fl.assert_invariants();
        // Free in a shuffled-but-deterministic order; merging is deferred,
        // so the fragments persist until the coalescing pass runs.
        for &i in &[3, 7, 0, 12, 15, 1, 9, 4, 11, 2, 14, 6, 8, 13, 5, 10] {
            fl.free(blocks[i]);
            fl.assert_invariants();
        }
        assert_eq!(fl.allocated_bytes(), 0);
        assert!(fl.pending_frees() > 0, "frees must be recorded as pending");
        fl.coalesce();
        assert_eq!(fl.pending_frees(), 0);
        assert_eq!(fl.free_block_count(), 1, "full coalescing expected");
        fl.assert_coalesced();
    }

    #[test]
    fn split_then_refill_reuses_the_hole() {
        let mut fl = FreeList::new(4096, 1 << 20);
        let a = fl.alloc(256 << 10);
        let _b = fl.alloc(256 << 10);
        fl.free(a);
        // The freed hole must be reused, not fresh footprint grown.
        let footprint = fl.footprint_bytes();
        let c = fl.alloc(128 << 10);
        assert_eq!((c.chunk, c.offset), (a.chunk, a.offset));
        assert_eq!(fl.footprint_bytes(), footprint);
        fl.assert_invariants();
    }

    #[test]
    fn higher_class_serves_when_native_class_is_empty() {
        let mut fl = FreeList::new(4096, 1 << 20);
        // Carve the whole chunk, then free one large block: a small request
        // must split it via the bitmap's higher-class path in O(1).
        let big = fl.alloc(512 << 10);
        let _rest = fl.alloc((1 << 20) - (512 << 10));
        fl.free(big);
        let small = fl.alloc(4096);
        assert_eq!((small.chunk, small.offset), (big.chunk, big.offset));
        fl.assert_invariants();
    }

    #[test]
    fn fragmented_fit_coalesces_before_growing() {
        let mut fl = FreeList::new(4096, 64 << 10);
        // Two adjacent 32 KiB blocks carve the whole 64 KiB chunk; freed
        // un-coalesced, neither alone fits a 64 KiB request.
        let a = fl.alloc(32 << 10);
        let b = fl.alloc(32 << 10);
        let footprint = fl.footprint_bytes();
        fl.free(a);
        fl.free(b);
        assert_eq!(fl.free_block_count(), 2, "coalescing must be deferred");
        let whole = fl.alloc(64 << 10);
        assert_eq!(
            fl.footprint_bytes(),
            footprint,
            "alloc must coalesce the fragments instead of growing"
        );
        assert_eq!(whole.size, 64 << 10);
        fl.assert_invariants();
    }

    #[test]
    fn oversized_requests_get_dedicated_chunks() {
        let mut fl = FreeList::new(4096, 64 << 10);
        let big = fl.alloc(3 << 20);
        assert_eq!(big.size, 3 << 20);
        // SAFETY: `big` spans `size` bytes of the chunk it was carved from.
        unsafe { std::ptr::write_bytes(fl.ptr(big).as_ptr(), 0xCD, big.size) };
        fl.free(big);
        fl.assert_invariants();
    }

    #[test]
    fn blocks_hand_out_zeroed_even_after_dirty_free() {
        let mut fl = FreeList::new(4096, 64 << 10);
        let a = fl.alloc(16 << 10);
        // SAFETY: `a` is live and spans its reserved bytes.
        unsafe { std::ptr::write_bytes(fl.ptr(a).as_ptr(), 0x77, a.size) };
        fl.free(a);
        let b = fl.alloc(16 << 10);
        assert_eq!((b.chunk, b.offset), (a.chunk, a.offset), "hole reused");
        // SAFETY: reading `b`'s live range.
        let dirty = (0..b.size).any(|i| unsafe { fl.ptr(b).as_ptr().add(i).read() } != 0);
        assert!(!dirty, "freed block handed out dirty");
    }
}
