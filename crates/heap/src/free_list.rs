//! Size-class segregated free-list allocator backing tenured region memory.
//!
//! A [`FreeList`] owns large page-aligned chunks obtained from the system
//! allocator (`alloc_zeroed`) and serves variable-sized blocks out of them.
//! Free space is tracked twice, and the two views are kept consistent:
//!
//! - **per chunk**, an address-ordered map `offset -> size` of free blocks,
//!   which is what makes first-fit deterministic and neighbor coalescing
//!   O(log n);
//! - **per size class**, an ordered set of `(chunk, offset)` block keys, so
//!   allocation scans only classes large enough to possibly fit instead of
//!   every free block.
//!
//! Sizes are rounded up to a fixed granule (the heap page size), so every
//! block the list hands out is page-aligned and page-sized — exactly the
//! contract tenured regions need. Splitting on allocation and address-ordered
//! coalescing on free keep fragmentation bounded; the invariant "no two
//! adjacent free blocks" is checked by [`FreeList::assert_invariants`] and
//! the property suite.
//!
//! Like [`BumpArena`](crate::bump::BumpArena), blocks are identified by
//! handles ([`FreeBlock`]) rather than raw addresses, which keeps pointer
//! provenance clean under Miri and makes `free` O(log n) with no address
//! lookup.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::collections::{BTreeMap, BTreeSet};
use std::ptr::NonNull;

/// Number of size classes. Class `c` holds free blocks of
/// `granule * 2^c ..= granule * (2^(c+1) - 1)` bytes; the last class is
/// open-ended.
const NUM_CLASSES: usize = 16;

/// One system-allocated chunk the free list carves blocks from.
#[derive(Debug)]
struct Chunk {
    ptr: NonNull<u8>,
    layout: Layout,
}

/// Handle to one allocated block. Must be passed back to
/// [`FreeList::free`] exactly once; the memory stays valid until then (or
/// until the list is dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeBlock {
    chunk: u32,
    offset: usize,
    /// The rounded size actually reserved for the block.
    pub(crate) size: usize,
}

impl FreeBlock {
    /// The rounded size actually reserved for the block, in bytes.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// A size-class segregated free-list allocator with address-ordered
/// coalescing.
#[derive(Debug)]
pub struct FreeList {
    /// Size granule and alignment of every block — the heap page size.
    granule: usize,
    /// Preferred chunk size; oversized requests get a dedicated chunk.
    min_chunk: usize,
    chunks: Vec<Chunk>,
    /// Per chunk: address-ordered free blocks, `offset -> size`.
    free: Vec<BTreeMap<usize, usize>>,
    /// Per size class: keys of the free blocks currently in that class.
    classes: Vec<BTreeSet<(u32, usize)>>,
    /// Bytes currently handed out to callers.
    allocated_bytes: usize,
}

// SAFETY: the list exclusively owns its chunks; the raw pointers are never
// shared, so moving the whole list to another thread is sound.
unsafe impl Send for FreeList {}

impl FreeList {
    /// Creates a free list serving blocks rounded to `granule` (a power of
    /// two, typically the heap page size), growing in `min_chunk`-sized
    /// chunks.
    pub fn new(granule: usize, min_chunk: usize) -> Self {
        assert!(granule.is_power_of_two(), "granule must be a power of two");
        FreeList {
            granule,
            min_chunk: min_chunk.max(granule),
            chunks: Vec::new(),
            free: Vec::new(),
            classes: vec![BTreeSet::new(); NUM_CLASSES],
            allocated_bytes: 0,
        }
    }

    fn round_up(&self, size: usize) -> usize {
        size.max(1).div_ceil(self.granule) * self.granule
    }

    /// The size class of a rounded block size: floor(log2(size / granule)),
    /// clamped to the last class.
    fn class_of(&self, size: usize) -> usize {
        debug_assert!(size >= self.granule && size.is_multiple_of(self.granule));
        let g = size / self.granule;
        ((usize::BITS - 1 - g.leading_zeros()) as usize).min(NUM_CLASSES - 1)
    }

    fn insert_free(&mut self, chunk: u32, offset: usize, size: usize) {
        let prev = self.free[chunk as usize].insert(offset, size);
        debug_assert!(prev.is_none(), "double insert of free block");
        let class = self.class_of(size);
        self.classes[class].insert((chunk, offset));
    }

    fn remove_free(&mut self, chunk: u32, offset: usize) -> usize {
        let size = self.free[chunk as usize]
            .remove(&offset)
            .expect("free block present");
        let class = self.class_of(size);
        let removed = self.classes[class].remove(&(chunk, offset));
        debug_assert!(removed, "class index out of sync");
        size
    }

    /// First-fit search: lowest `(chunk, offset)` block of at least `size`
    /// bytes, scanning classes from the smallest that can fit upward.
    fn find_fit(&self, size: usize) -> Option<(u32, usize)> {
        for class in self.class_of(size)..NUM_CLASSES {
            for &(chunk, offset) in &self.classes[class] {
                if self.free[chunk as usize][&offset] >= size {
                    return Some((chunk, offset));
                }
            }
        }
        None
    }

    fn grow(&mut self, at_least: usize) {
        let bytes = self.round_up(at_least.max(self.min_chunk));
        let layout = Layout::from_size_align(bytes, self.granule).expect("valid chunk layout");
        // SAFETY: `layout` has non-zero size (bytes >= granule >= 1).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout)
        };
        self.chunks.push(Chunk { ptr, layout });
        self.free.push(BTreeMap::new());
        let chunk = (self.chunks.len() - 1) as u32;
        self.insert_free(chunk, 0, bytes);
    }

    /// Allocates a block of at least `size` bytes (rounded up to the
    /// granule), splitting the chosen free block and keeping the remainder
    /// on the list.
    pub fn alloc(&mut self, size: usize) -> FreeBlock {
        let size = self.round_up(size);
        let (chunk, offset) = match self.find_fit(size) {
            Some(fit) => fit,
            None => {
                self.grow(size);
                self.find_fit(size).expect("fresh chunk fits the request")
            }
        };
        let block_size = self.remove_free(chunk, offset);
        if block_size > size {
            self.insert_free(chunk, offset + size, block_size - size);
        }
        self.allocated_bytes += size;
        FreeBlock {
            chunk,
            offset,
            size,
        }
    }

    /// Returns a block to the list, coalescing with adjacent free blocks.
    /// The caller must not touch the block's memory afterwards, and must not
    /// free the same block twice.
    pub fn free(&mut self, block: FreeBlock) {
        let mut offset = block.offset;
        let mut size = block.size;
        let map = &self.free[block.chunk as usize];
        // Successor: a free block starting exactly at our end.
        if map.contains_key(&(offset + size)) {
            size += self.remove_free(block.chunk, offset + size);
        }
        // Predecessor: the last free block below us, if it ends at our start.
        let pred = self.free[block.chunk as usize]
            .range(..offset)
            .next_back()
            .map(|(&o, &s)| (o, s));
        if let Some((pred_offset, pred_size)) = pred {
            debug_assert!(pred_offset + pred_size <= offset, "freed block overlaps");
            if pred_offset + pred_size == offset {
                self.remove_free(block.chunk, pred_offset);
                offset = pred_offset;
                size += pred_size;
            }
        }
        self.insert_free(block.chunk, offset, size);
        self.allocated_bytes -= block.size;
    }

    /// The base pointer of `block`.
    pub fn ptr(&self, block: FreeBlock) -> NonNull<u8> {
        let chunk = &self.chunks[block.chunk as usize];
        debug_assert!(block.offset + block.size <= chunk.layout.size());
        // SAFETY: the block was carved from this chunk, so
        // `offset + size <= layout.size()` and the result stays in bounds.
        unsafe { NonNull::new_unchecked(chunk.ptr.as_ptr().add(block.offset)) }
    }

    /// Total bytes obtained from the system allocator.
    pub fn footprint_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.layout.size()).sum()
    }

    /// Bytes currently handed out to callers.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Number of free blocks across all chunks (coalescing keeps this the
    /// minimum possible for the current allocation pattern).
    pub fn free_block_count(&self) -> usize {
        self.free.iter().map(BTreeMap::len).sum()
    }

    /// Checks the structural invariants; panics with a description on
    /// violation. Used by unit and property tests.
    pub fn assert_invariants(&self) {
        let mut free_bytes = 0usize;
        let mut class_members = 0usize;
        for (idx, map) in self.free.iter().enumerate() {
            let capacity = self.chunks[idx].layout.size();
            let mut prev_end: Option<usize> = None;
            for (&offset, &size) in map {
                assert!(
                    size > 0 && size.is_multiple_of(self.granule),
                    "bad free size"
                );
                assert!(
                    offset.is_multiple_of(self.granule),
                    "misaligned free offset"
                );
                assert!(offset + size <= capacity, "free block out of bounds");
                if let Some(end) = prev_end {
                    assert!(end <= offset, "free blocks overlap");
                    assert!(end < offset, "adjacent free blocks not coalesced");
                }
                prev_end = Some(offset + size);
                assert!(
                    self.classes[self.class_of(size)].contains(&(idx as u32, offset)),
                    "free block missing from its size class"
                );
                free_bytes += size;
            }
        }
        for class in &self.classes {
            for &(chunk, offset) in class {
                assert!(
                    self.free[chunk as usize].contains_key(&offset),
                    "class index references a non-free block"
                );
                class_members += 1;
            }
        }
        assert_eq!(class_members, self.free_block_count(), "class index drift");
        assert_eq!(
            free_bytes + self.allocated_bytes,
            self.footprint_bytes(),
            "free + allocated bytes must equal the footprint"
        );
    }
}

impl Drop for FreeList {
    fn drop(&mut self) {
        for chunk in &self.chunks {
            // SAFETY: each chunk was allocated with exactly this layout and
            // is deallocated once, here.
            unsafe { dealloc(chunk.ptr.as_ptr(), chunk.layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_and_aligns() {
        let mut fl = FreeList::new(4096, 1 << 20);
        let a = fl.alloc(1);
        assert_eq!(a.size, 4096);
        assert_eq!(fl.ptr(a).as_ptr() as usize % 4096, 0);
        let b = fl.alloc(4097);
        assert_eq!(b.size, 8192);
        fl.assert_invariants();
        fl.free(a);
        fl.free(b);
        fl.assert_invariants();
    }

    #[test]
    fn coalescing_round_trips_to_one_block() {
        let mut fl = FreeList::new(4096, 1 << 20);
        let blocks: Vec<FreeBlock> = (0..16).map(|_| fl.alloc(64 << 10)).collect();
        fl.assert_invariants();
        // Free in a shuffled-but-deterministic order; everything must merge
        // back into a single free block per chunk.
        for &i in &[3, 7, 0, 12, 15, 1, 9, 4, 11, 2, 14, 6, 8, 13, 5, 10] {
            fl.free(blocks[i]);
            fl.assert_invariants();
        }
        assert_eq!(fl.allocated_bytes(), 0);
        assert_eq!(fl.free_block_count(), 1, "full coalescing expected");
    }

    #[test]
    fn split_then_refill_reuses_the_hole() {
        let mut fl = FreeList::new(4096, 1 << 20);
        let a = fl.alloc(256 << 10);
        let _b = fl.alloc(256 << 10);
        fl.free(a);
        // First-fit must land in the hole `a` left, not grow the footprint.
        let footprint = fl.footprint_bytes();
        let c = fl.alloc(128 << 10);
        assert_eq!((c.chunk, c.offset), (a.chunk, a.offset));
        assert_eq!(fl.footprint_bytes(), footprint);
        fl.assert_invariants();
    }

    #[test]
    fn oversized_requests_get_dedicated_chunks() {
        let mut fl = FreeList::new(4096, 64 << 10);
        let big = fl.alloc(3 << 20);
        assert_eq!(big.size, 3 << 20);
        // SAFETY: `big` spans `size` bytes of the chunk it was carved from.
        unsafe { std::ptr::write_bytes(fl.ptr(big).as_ptr(), 0xCD, big.size) };
        fl.free(big);
        fl.assert_invariants();
    }
}
