//! Heap integrity verification and the memory-corruption chaos arm.
//!
//! [`Heap::verify_integrity`] re-derives the heap's full invariant set from
//! scratch and compares it against the incremental state the hot paths
//! maintain — the self-check a production profiler runs at safepoints
//! (`--verify-heap {off,gc,full}`, see
//! [`VerifyMode`](crate::config::VerifyMode)). Violations surface as typed
//! [`HeapError::IntegrityViolation`] values carrying a stable invariant
//! name, never as panics, so a supervisor can quarantine the heap instead
//! of dying with it.
//!
//! The catalogue splits into three layers:
//!
//! **Logical invariants** (both backends): the slot table and record slab
//! are a bijection on live ids (`slab-bijection`, `live-record-count`,
//! `record-slab-slots`); every record's region is owned by the record's
//! space and lists the object (`region-ownership`, `region-membership`,
//! `object-in-bounds`); incremental page-occupancy counters equal a
//! from-scratch recomputation (`page-occupancy`); pool regions are
//! unassigned and empty (`free-region-clean`); and every region is free,
//! owned, or detached for evacuation, exactly once (`region-partition`).
//!
//! **Memory invariants** (real backend): every live object's header reads
//! back as `(hash << 32) | size` (`header-matches-record`, `region-backed`)
//! and its payload past the header is zero (`payload-zero`) — the
//! zeroed-handout discipline means nothing but the header store and the
//! evacuation memcpy ever writes an object's extent, so zeros are the only
//! legitimate payload content; and every backed region's bytes past its
//! bump cursor are zero (`unallocated-zero`).
//!
//! **Allocator invariants** (real backend, via
//! [`HeapBackend::verify_allocator`](crate::backend::HeapBackend::verify_allocator)):
//! free-list structure — disjointness, size-class filing, nonempty-bitmap
//! sync, byte accounting (`free-list-structure`); freed memory stays zero
//! (`free-memory-zero`); and TLAB windows cover only backed regions within
//! bounds (`tlab-window`).
//!
//! Verification is strictly read-only (one counter aside, which no
//! trajectory fingerprint can see): heap trajectories are bit-identical
//! with verification on or off, on either backend, at any worker count.
//!
//! [`Heap::plant_corruption`] is the other half of the contract: it plants
//! one seeded corruption of a chosen [`CorruptionKind`] directly into real
//! heap memory — bypassing every logical bookkeeping path, exactly like a
//! stray write — and returns ground truth so tests and the chaos pipeline
//! can assert the verifier detects every planted class.

use crate::backend::{BackendKind, OBJECT_HEADER_BYTES};
use crate::{Addr, HeapError, ObjectId, RegionId};

use super::{Heap, DEAD_SLOT};

/// The memory-corruption classes the chaos arm can plant (real backend
/// only; the sim backend has no memory to corrupt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip one bit somewhere inside a live object's extent.
    BitFlip,
    /// Clobber a byte of a live object's 8-byte header.
    HeaderClobber,
    /// Write a non-zero byte into memory no live object owns: the
    /// allocators' free blocks when any exist, else a backed region's
    /// space past the bump cursor.
    StrayWrite,
}

impl CorruptionKind {
    /// Every corruption class, in a stable order (test sweeps iterate this).
    pub const ALL: [CorruptionKind; 3] = [
        CorruptionKind::BitFlip,
        CorruptionKind::HeaderClobber,
        CorruptionKind::StrayWrite,
    ];

    /// Short stable label (ledger and log lines).
    pub fn label(self) -> &'static str {
        match self {
            CorruptionKind::BitFlip => "bit-flip",
            CorruptionKind::HeaderClobber => "header-clobber",
            CorruptionKind::StrayWrite => "stray-write",
        }
    }

    /// The verifier invariants that can legitimately flag this class —
    /// tests assert a detection's invariant is in this set.
    pub fn detectable_by(self) -> &'static [&'static str] {
        match self {
            CorruptionKind::BitFlip => &["header-matches-record", "payload-zero"],
            CorruptionKind::HeaderClobber => &["header-matches-record"],
            CorruptionKind::StrayWrite => &["free-memory-zero", "unallocated-zero"],
        }
    }
}

/// Ground truth for one planted corruption: what was corrupted, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedCorruption {
    /// The class planted.
    pub kind: CorruptionKind,
    /// Human-readable description of the exact byte hit.
    pub detail: String,
}

/// Deterministic splitmix64 step for target selection; unrelated to (and
/// isolated from) every PRNG stream the fault injector owns.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn violation(invariant: &'static str, detail: String) -> HeapError {
    HeapError::IntegrityViolation { invariant, detail }
}

impl Heap {
    /// Completed integrity-verifier passes (clean or not). Surfaced through
    /// the metrics fault counters so ledgers can prove verification ran.
    pub fn verify_passes(&self) -> u64 {
        self.verify_passes
    }

    /// Checks the full invariant catalogue (see the [module docs](self)),
    /// returning the first violation found. Strictly read-only: the heap's
    /// trajectory is bit-identical whether and however often this runs.
    ///
    /// # Errors
    ///
    /// [`HeapError::IntegrityViolation`] naming the failed invariant.
    pub fn verify_integrity(&mut self) -> Result<(), HeapError> {
        self.verify_passes += 1;
        self.verify_logical()?;
        self.verify_memory()?;
        self.backend
            .verify_allocator()
            .map_err(|(invariant, detail)| violation(invariant, detail))
    }

    /// The logical layer: slab bijection, region ownership/membership,
    /// page-occupancy agreement, pool cleanliness, region partition.
    fn verify_logical(&self) -> Result<(), HeapError> {
        let mut live = 0usize;
        for (index, &slot) in self.slots.iter().enumerate() {
            if slot == DEAD_SLOT {
                continue;
            }
            let Some(rec) = self.records.get(slot as usize).and_then(|r| r.as_ref()) else {
                return Err(violation(
                    "slab-bijection",
                    format!("slot table points id #{index} at an empty slot {slot}"),
                ));
            };
            if rec.id().index() != index {
                return Err(violation(
                    "slab-bijection",
                    format!("record {} occupies the slot of id #{index}", rec.id()),
                ));
            }
            live += 1;
        }
        if live != self.live_records {
            return Err(violation(
                "live-record-count",
                format!(
                    "slot table holds {live} live ids, counter says {}",
                    self.live_records
                ),
            ));
        }
        if self.records.len() != live + self.free_slots.len() {
            return Err(violation(
                "record-slab-slots",
                format!(
                    "{} record slots != {live} live + {} free",
                    self.records.len(),
                    self.free_slots.len()
                ),
            ));
        }
        let region_bytes = self.config.region_bytes;
        for rec in self.records.iter().flatten() {
            let id = rec.id();
            let region = &self.regions[rec.addr().region.index()];
            if region.space() != Some(rec.space()) {
                return Err(violation(
                    "region-ownership",
                    format!("object {id} resides in a region owned by a different space"),
                ));
            }
            if !region.objects().contains(&id) {
                return Err(violation(
                    "region-membership",
                    format!("object {id} missing from its region's object list"),
                ));
            }
            let end = u64::from(rec.addr().offset) + u64::from(rec.size());
            if end > u64::from(region.used_bytes()) || end > region_bytes {
                return Err(violation(
                    "object-in-bounds",
                    format!("object {id} extends past its region's bump cursor"),
                ));
            }
        }
        let mut counts = vec![0u32; self.page_object_counts.len()];
        for rec in self.records.iter().flatten() {
            let (first, last) = self.page_table.pages_of(rec.addr(), rec.size());
            for p in first..=last {
                counts[p as usize] += 1;
            }
        }
        for (p, (&have, &want)) in self
            .page_object_counts
            .iter()
            .zip(counts.iter())
            .enumerate()
        {
            if have != want {
                return Err(violation(
                    "page-occupancy",
                    format!("page {p} occupancy count is {have}, recomputation says {want}"),
                ));
            }
        }
        for &r in &self.free_regions {
            let region = &self.regions[r.index()];
            if region.space().is_some() || !region.objects().is_empty() {
                return Err(violation(
                    "free-region-clean",
                    format!("pool region {r} is assigned or holds stale objects"),
                ));
            }
        }
        let owned: usize = self.spaces.iter().map(|s| s.regions().len()).sum();
        if owned + self.free_regions.len() + self.evacuating.len() != self.regions.len() {
            return Err(violation(
                "region-partition",
                format!(
                    "{owned} owned + {} free + {} evacuating != {} regions",
                    self.free_regions.len(),
                    self.evacuating.len(),
                    self.regions.len()
                ),
            ));
        }
        Ok(())
    }

    /// The memory layer (real backend only): headers read back from heap
    /// memory match the logical records, payloads and unallocated region
    /// tails hold the zeros the handout discipline guarantees.
    fn verify_memory(&self) -> Result<(), HeapError> {
        if self.backend.kind() != BackendKind::Real {
            return Ok(());
        }
        for rec in self.records.iter().flatten() {
            let id = rec.id();
            let addr = rec.addr();
            let size = rec.size() as usize;
            if size >= OBJECT_HEADER_BYTES {
                let mut buf = [0u8; OBJECT_HEADER_BYTES];
                if !self.backend.read_bytes(addr, &mut buf) {
                    return Err(violation(
                        "region-backed",
                        format!("live object {id} resides in an unbacked region"),
                    ));
                }
                let have = u64::from_le_bytes(buf);
                let want = (u64::from(rec.identity_hash().raw()) << 32) | size as u64;
                if have != want {
                    return Err(violation(
                        "header-matches-record",
                        format!("object {id} header reads {have:#018x}, record says {want:#018x}"),
                    ));
                }
                let payload = Addr {
                    region: addr.region,
                    offset: addr.offset + OBJECT_HEADER_BYTES as u32,
                };
                if self
                    .backend
                    .range_is_zero(payload, size - OBJECT_HEADER_BYTES)
                    == Some(false)
                {
                    return Err(violation(
                        "payload-zero",
                        format!("object {id} payload holds a non-zero byte"),
                    ));
                }
            } else {
                match self.backend.range_is_zero(addr, size) {
                    Some(true) => {}
                    Some(false) => {
                        return Err(violation(
                            "payload-zero",
                            format!("headerless object {id} holds a non-zero byte"),
                        ));
                    }
                    None => {
                        return Err(violation(
                            "region-backed",
                            format!("live object {id} resides in an unbacked region"),
                        ));
                    }
                }
            }
        }
        let region_bytes = self.config.region_bytes as u32;
        for region in &self.regions {
            if region.space().is_none() {
                continue;
            }
            let cursor = region.used_bytes();
            if cursor >= region_bytes {
                continue;
            }
            let tail = Addr {
                region: region.id(),
                offset: cursor,
            };
            if self
                .backend
                .range_is_zero(tail, (region_bytes - cursor) as usize)
                == Some(false)
            {
                return Err(violation(
                    "unallocated-zero",
                    format!(
                        "region {} holds a non-zero byte past its bump cursor {cursor:#x}",
                        region.id()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Plants one seeded corruption of `kind` directly into real heap
    /// memory, bypassing all logical bookkeeping — exactly what a stray or
    /// wild write does. Target selection is a pure function of the current
    /// heap state and `seed`. Returns ground truth for the planted fault,
    /// or `None` when no eligible target exists (sim backend, no live
    /// objects of the required shape, no free/unallocated memory).
    ///
    /// After a successful plant, [`Heap::verify_integrity`] is guaranteed
    /// to fail with an invariant from
    /// [`CorruptionKind::detectable_by`] — the detection contract the
    /// proptest suite pins.
    pub fn plant_corruption(
        &mut self,
        kind: CorruptionKind,
        seed: u64,
    ) -> Option<PlantedCorruption> {
        let mut state = seed;
        match kind {
            CorruptionKind::BitFlip => {
                let candidates: Vec<(ObjectId, Addr, u32)> = self
                    .records
                    .iter()
                    .flatten()
                    .map(|r| (r.id(), r.addr(), r.size()))
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let (id, addr, size) =
                    candidates[(mix(&mut state) % candidates.len() as u64) as usize];
                let offset = addr.offset + (mix(&mut state) % u64::from(size)) as u32;
                let mask = 1u8 << (mix(&mut state) % 8);
                let target = Addr {
                    region: addr.region,
                    offset,
                };
                self.backend
                    .corrupt_byte(target, mask)
                    .then(|| PlantedCorruption {
                        kind,
                        detail: format!(
                            "bit mask {mask:#04x} flipped at {}+{offset:#x} inside {id}",
                            addr.region
                        ),
                    })
            }
            CorruptionKind::HeaderClobber => {
                let candidates: Vec<(ObjectId, Addr)> = self
                    .records
                    .iter()
                    .flatten()
                    .filter(|r| r.size() as usize >= OBJECT_HEADER_BYTES)
                    .map(|r| (r.id(), r.addr()))
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let (id, addr) = candidates[(mix(&mut state) % candidates.len() as u64) as usize];
                let offset = addr.offset + (mix(&mut state) % OBJECT_HEADER_BYTES as u64) as u32;
                let mask = (mix(&mut state) % 255 + 1) as u8;
                let target = Addr {
                    region: addr.region,
                    offset,
                };
                self.backend
                    .corrupt_byte(target, mask)
                    .then(|| PlantedCorruption {
                        kind,
                        detail: format!(
                            "header byte at {}+{offset:#x} of {id} clobbered with {mask:#04x}",
                            addr.region
                        ),
                    })
            }
            CorruptionKind::StrayWrite => {
                let selector = mix(&mut state);
                let mask = (mix(&mut state) % 255 + 1) as u8;
                if self.backend.corrupt_free_byte(selector, mask) {
                    return Some(PlantedCorruption {
                        kind,
                        detail: format!("free-block byte xor'd with {mask:#04x}"),
                    });
                }
                // No free blocks yet (e.g. before the first collection):
                // hit a backed region's space past the bump cursor instead.
                let region_bytes = self.config.region_bytes as u32;
                let candidates: Vec<(RegionId, u32)> = self
                    .regions
                    .iter()
                    .filter(|r| r.space().is_some() && r.used_bytes() < region_bytes)
                    .map(|r| (r.id(), r.used_bytes()))
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let (region, cursor) =
                    candidates[(mix(&mut state) % candidates.len() as u64) as usize];
                let offset = cursor + (mix(&mut state) % u64::from(region_bytes - cursor)) as u32;
                let target = Addr { region, offset };
                self.backend.corrupt_byte(target, mask).then(|| PlantedCorruption {
                    kind,
                    detail: format!(
                        "stray byte {mask:#04x} written at {region}+{offset:#x} past cursor {cursor:#x}"
                    ),
                })
            }
        }
    }
}
