//! The sharded mark: scoped worker threads tracing the object graph behind
//! a safepoint, bit-identical to the serial tracer at any worker count.
//!
//! Discipline:
//!
//! * **Claim at discovery.** A worker owns an object iff it wins the atomic
//!   swap of the record's claim stamp to the current epoch — one `AtomicU32`
//!   RMW per record, the CAS the slab table + epoch bits were built for.
//!   The winner accounts the object (membership bit, bytes, region bytes,
//!   live pages) into its private buffers and queues it for ref expansion;
//!   losers skip. Claims make every accounting effect exactly-once, so the
//!   merged result is independent of which worker got there first.
//! * **Per-worker overflow + stealing.** Each worker drains a private stack;
//!   when it grows past a threshold the worker donates half to a shared
//!   overflow queue, and idle workers steal batches from it. Termination:
//!   queue and active-count live under one mutex, so "queue empty and no
//!   worker active" is checked atomically — no missed-wakeup race.
//! * **Deterministic merge.** Private bitmaps OR together, byte counters
//!   add, and the published [`LiveSet::order`] is re-derived from the merged
//!   bitmap in ascending-id order — sort-free and schedule-independent.
//!
//! [`LiveSet::order`]: crate::LiveSet

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::heap::{bit_set, DEAD_SLOT};
use crate::{Heap, ObjectId, ObjectRecord, PageTable};

/// Donate half the private stack once it grows past this many entries.
const DONATE_THRESHOLD: usize = 512;
/// Re-check the donation condition every this many processed nodes.
const DONATE_CHECK_EVERY: usize = 64;
/// Keep the shared overflow queue below this many entries.
const QUEUE_CAP: usize = 8192;
/// Steal at most this many ids per visit to the shared queue.
const STEAL_BATCH: usize = 256;

/// Immutable inputs shared by every mark worker.
pub(crate) struct MarkShards<'a> {
    pub workers: usize,
    pub epoch: u32,
    pub slots: &'a [u32],
    pub records: &'a [Option<ObjectRecord>],
    /// Per-slot claim stamps; a slot whose stamp already equals `epoch` is
    /// claimed. Stale values are from past epochs and can never collide.
    pub stamps: &'a [AtomicU32],
    pub page_table: &'a PageTable,
    pub young_only: bool,
}

/// One worker's private accounting, merged serially after the join.
struct WorkerState {
    bits: Vec<u64>,
    region_live: Vec<u32>,
    live_pages: Option<Vec<u64>>,
    live_bytes: u64,
    /// Claimed objects awaiting ref expansion.
    local: Vec<ObjectId>,
}

/// Shared overflow queue plus the count of workers still holding work; both
/// under one lock so termination ("empty and nobody active") is atomic.
struct SharedQueue {
    queue: Vec<ObjectId>,
    active: usize,
}

impl MarkShards<'_> {
    /// Attempts to claim `id` for this epoch. Returns the record iff this
    /// caller won the claim *and* the object is in scope (young-only marks
    /// discard non-young objects after claiming — harmless, since stamps
    /// are scratch and the object is simply never accounted).
    fn try_claim(&self, id: ObjectId) -> Option<&ObjectRecord> {
        let slot = self.slots.get(id.index()).copied()?;
        if slot == DEAD_SLOT {
            return None;
        }
        if self.stamps[slot as usize].swap(self.epoch, Ordering::Relaxed) == self.epoch {
            return None;
        }
        let rec = self.records[slot as usize]
            .as_ref()
            .expect("live slot has a record");
        if self.young_only && rec.space() != Heap::YOUNG_SPACE {
            return None;
        }
        Some(rec)
    }
}

/// Accounts a freshly claimed object into the worker's private buffers.
fn account(shards: &MarkShards<'_>, state: &mut WorkerState, id: ObjectId, rec: &ObjectRecord) {
    bit_set(&mut state.bits, id.index());
    state.live_bytes += u64::from(rec.size());
    state.region_live[rec.addr().region.index()] += rec.size();
    if let Some(pages) = state.live_pages.as_deref_mut() {
        let (first, last) = shards.page_table.pages_of(rec.addr(), rec.size());
        for p in first..=last {
            bit_set(pages, p as usize);
        }
    }
}

fn worker_loop(
    shards: &MarkShards<'_>,
    shared: &Mutex<SharedQueue>,
    mut state: WorkerState,
) -> WorkerState {
    let mut since_check = 0usize;
    loop {
        while let Some(id) = state.local.pop() {
            let slot = shards.slots[id.index()] as usize;
            let rec = shards.records[slot].as_ref().expect("claimed record");
            for &child in rec.refs() {
                if let Some(crec) = shards.try_claim(child) {
                    account(shards, &mut state, child, crec);
                    state.local.push(child);
                }
            }
            since_check += 1;
            if since_check >= DONATE_CHECK_EVERY {
                since_check = 0;
                if state.local.len() >= DONATE_THRESHOLD {
                    let mut sq = shared.lock().expect("mark queue poisoned");
                    if sq.queue.len() < QUEUE_CAP {
                        let keep = state.local.len() / 2;
                        sq.queue.extend(state.local.drain(keep..));
                    }
                }
            }
        }
        // Local stack dry: steal or retire. `active` counts workers that may
        // still produce donations; the last one out confirms the queue is
        // empty under the same lock, so no work can be stranded.
        let mut sq = shared.lock().expect("mark queue poisoned");
        if !sq.queue.is_empty() {
            let n = sq.queue.len().saturating_sub(STEAL_BATCH);
            state.local.extend(sq.queue.drain(n..));
            continue;
        }
        sq.active -= 1;
        if sq.active == 0 {
            return state;
        }
        drop(sq);
        loop {
            std::thread::yield_now();
            let mut sq = shared.lock().expect("mark queue poisoned");
            if !sq.queue.is_empty() {
                sq.active += 1;
                let n = sq.queue.len().saturating_sub(STEAL_BATCH);
                state.local.extend(sq.queue.drain(n..));
                break;
            }
            if sq.active == 0 {
                return state;
            }
        }
    }
}

/// Runs a sharded mark from `roots` and merges per-worker results into the
/// caller's buffers (`bits`, `region_live`, and optionally `live_pages`,
/// all pre-zeroed). Returns the total live bytes.
///
/// The caller rebuilds the canonical order from the merged `bits`.
pub(crate) fn parallel_mark(
    shards: &MarkShards<'_>,
    roots: &[ObjectId],
    bits: &mut [u64],
    region_live: &mut [u32],
    mut live_pages: Option<&mut [u64]>,
) -> u64 {
    let workers = shards.workers.max(1);
    let want_pages = live_pages.is_some();
    let page_words = live_pages.as_deref().map(|p| p.len()).unwrap_or_default();
    let bit_words = bits.len();
    let region_count = region_live.len();
    let shared = Mutex::new(SharedQueue {
        queue: Vec::new(),
        active: workers,
    });
    let states = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let shared = &shared;
                s.spawn(move || {
                    let mut state = WorkerState {
                        bits: vec![0u64; bit_words],
                        region_live: vec![0u32; region_count],
                        live_pages: want_pages.then(|| vec![0u64; page_words]),
                        live_bytes: 0,
                        local: Vec::new(),
                    };
                    // Round-robin root partition; claims dedupe overlaps.
                    for id in roots.iter().skip(w).step_by(workers).copied() {
                        if let Some(rec) = shards.try_claim(id) {
                            account(shards, &mut state, id, rec);
                            state.local.push(id);
                        }
                    }
                    worker_loop(shards, shared, state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mark worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut live_bytes = 0u64;
    for state in states {
        for (dst, src) in bits.iter_mut().zip(state.bits.iter()) {
            *dst |= src;
        }
        for (dst, src) in region_live.iter_mut().zip(state.region_live.iter()) {
            *dst += src;
        }
        if let (Some(dst), Some(src)) = (live_pages.as_deref_mut(), state.live_pages.as_deref()) {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d |= s;
            }
        }
        live_bytes += state.live_bytes;
    }
    live_bytes
}
