//! Pointer-bump block allocator backing young/eden region memory.
//!
//! A [`BumpArena`] owns a set of large page-aligned chunks obtained from the
//! system allocator and carves fixed-alignment blocks out of them by
//! bumping a cursor — the allocation discipline of a young generation,
//! where regions are handed out whole and returned whole. Every block the
//! arena hands out is **zeroed**: fresh chunks are zeroed when carved (or
//! up front by [`prefault`](BumpArena::prefault)) and recycled blocks are
//! re-zeroed at [`recycle`](BumpArena::recycle) time — the HotSpot
//! `ZeroTLAB` discipline, where bulk re-zeroing rides along with the GC
//! that releases the memory instead of being paid per object on the
//! allocation fast path. That contract is what lets the backend's young
//! allocation store only the 8-byte object header. Released blocks go on
//! a LIFO recycle stack and are reused before the cursor advances, so
//! steady-state young-generation churn touches the same hot memory over
//! and over instead of growing the footprint.
//!
//! Blocks are identified by handles ([`BumpBlock`]) rather than raw
//! addresses, so the arena never has to re-derive which chunk a pointer came
//! from — and the pointer arithmetic stays provenance-clean under Miri.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// Zeroes the whole allocation with one streaming memset — the
/// `-XX:+AlwaysPreTouch` analogue. This makes the kernel materialize every
/// backing frame now (a first-touch soft fault costs microseconds on the
/// bench host, which a 2 KiB-object allocation loop would otherwise pay
/// every other object) and, because stores allocate cache lines, leaves
/// the chunk's lines LLC-resident, so the first object store into each
/// line pays neither a fault nor a read-for-ownership from DRAM.
///
/// # Safety
///
/// `ptr` must be valid for writes of `bytes` bytes.
pub(crate) unsafe fn pretouch(ptr: *mut u8, bytes: usize) {
    // SAFETY: the caller guarantees `bytes` writable bytes at `ptr`.
    unsafe { std::ptr::write_bytes(ptr, 0, bytes) };
}

/// One system-allocated chunk the arena carves blocks from.
#[derive(Debug)]
struct Chunk {
    ptr: NonNull<u8>,
    layout: Layout,
}

/// Handle to one block carved from a [`BumpArena`].
///
/// Valid until the block is [`recycle`](BumpArena::recycle)d, the arena is
/// [`reset`](BumpArena::reset), or the arena is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumpBlock {
    chunk: u32,
    offset: usize,
    /// The rounded size actually reserved for the block.
    pub(crate) size: usize,
}

impl BumpBlock {
    /// The rounded size actually reserved for the block, in bytes.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// A pointer-bump block allocator over page-aligned chunks.
#[derive(Debug)]
pub struct BumpArena {
    /// Alignment (and size granule) of every block — the heap's page size.
    align: usize,
    /// Preferred chunk size; oversized requests get a dedicated chunk.
    chunk_bytes: usize,
    chunks: Vec<Chunk>,
    /// Chunk currently being carved (always the last one, except right
    /// after [`reset`](BumpArena::reset)).
    current: usize,
    /// Bump cursor within the current chunk.
    cursor: usize,
    /// LIFO recycle stack of released blocks, reused size-exact.
    recycled: Vec<BumpBlock>,
}

// SAFETY: the arena exclusively owns its chunks; the raw pointers are never
// shared, so moving the whole arena to another thread is sound.
unsafe impl Send for BumpArena {}

impl BumpArena {
    /// Creates an arena carving blocks aligned to `align` (a power of two,
    /// typically the heap page size) out of `chunk_bytes`-sized chunks.
    pub fn new(align: usize, chunk_bytes: usize) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let chunk_bytes = chunk_bytes.max(align);
        BumpArena {
            align,
            chunk_bytes,
            chunks: Vec::new(),
            current: 0,
            cursor: 0,
            recycled: Vec::new(),
        }
    }

    fn round_up(&self, size: usize) -> usize {
        size.max(1).div_ceil(self.align) * self.align
    }

    /// Allocates a block of at least `size` bytes, aligned to the arena
    /// alignment, with every byte zeroed (see the module docs). Recycled
    /// blocks of the exact rounded size are reused
    /// (most-recently-released first) before fresh memory is carved.
    pub fn alloc(&mut self, size: usize) -> BumpBlock {
        let size = self.round_up(size);
        if let Some(pos) = self.recycled.iter().rposition(|b| b.size == size) {
            return self.recycled.remove(pos);
        }
        // Advance through (or grow) the chunk list until the block fits.
        loop {
            if self.current < self.chunks.len() {
                let capacity = self.chunks[self.current].layout.size();
                if self.cursor + size <= capacity {
                    let block = BumpBlock {
                        chunk: self.current as u32,
                        offset: self.cursor,
                        size,
                    };
                    self.cursor += size;
                    return block;
                }
                // Tail waste: the remainder of this chunk is skipped, as a
                // real bump allocator retires a region it cannot fit into.
                self.current += 1;
                self.cursor = 0;
                continue;
            }
            let bytes = self.chunk_bytes.max(size);
            let layout = Layout::from_size_align(bytes, self.align).expect("valid chunk layout");
            // SAFETY: `layout` has non-zero size (bytes >= align >= 1).
            let raw = unsafe { alloc(layout) };
            let Some(ptr) = NonNull::new(raw) else {
                handle_alloc_error(layout)
            };
            // Demand growth past the prefaulted pool: zero the chunk now so
            // the handout contract holds. Cold, once per chunk.
            // SAFETY: the chunk spans `layout.size()` writable bytes.
            unsafe { pretouch(ptr.as_ptr(), layout.size()) };
            self.chunks.push(Chunk { ptr, layout });
        }
    }

    /// Pre-allocates and [`pretouch`]es chunks until the arena's footprint
    /// covers `bytes`, so demand carving ([`alloc`](BumpArena::alloc))
    /// serves page-warm memory instead of paying first-touch faults inside
    /// the allocation hot path. Requests beyond the pre-faulted pool still
    /// grow on demand (cold, once).
    pub fn prefault(&mut self, bytes: usize) {
        while self.footprint_bytes() < bytes {
            let layout =
                Layout::from_size_align(self.chunk_bytes, self.align).expect("valid chunk layout");
            // SAFETY: `layout` has non-zero size (chunk_bytes >= align >= 1).
            let raw = unsafe { alloc(layout) };
            let Some(ptr) = NonNull::new(raw) else {
                handle_alloc_error(layout)
            };
            // SAFETY: the chunk spans `layout.size()` writable bytes.
            unsafe { pretouch(ptr.as_ptr(), layout.size()) };
            self.chunks.push(Chunk { ptr, layout });
        }
    }

    /// Returns a block for reuse, re-zeroing it in bulk — the GC-side half
    /// of the zeroed-handout contract (the caller is a region release
    /// inside a collection, so the memset is charged to GC wall-clock, not
    /// to the allocation path). The caller must not touch the block's
    /// memory afterwards; the next [`alloc`](BumpArena::alloc) of the same
    /// size may hand it out again.
    pub fn recycle(&mut self, block: BumpBlock) {
        debug_assert!((block.chunk as usize) < self.chunks.len());
        // SAFETY: the block was carved from this chunk and is being
        // surrendered by its sole owner; its `size` bytes are writable.
        unsafe { pretouch(self.ptr(block).as_ptr(), block.size) };
        self.recycled.push(block);
    }

    /// Forgets every outstanding block and rewinds the cursor to the start
    /// of the first chunk. Chunks are kept for reuse and re-zeroed whole so
    /// the handout contract holds for the re-carve. All previously issued
    /// blocks and pointers are invalidated.
    pub fn reset(&mut self) {
        self.recycled.clear();
        self.current = 0;
        self.cursor = 0;
        for chunk in &self.chunks {
            // SAFETY: each chunk spans `layout.size()` writable bytes and
            // no outstanding block references remain after a reset.
            unsafe { pretouch(chunk.ptr.as_ptr(), chunk.layout.size()) };
        }
    }

    /// The base pointer of `block`.
    pub fn ptr(&self, block: BumpBlock) -> NonNull<u8> {
        let chunk = &self.chunks[block.chunk as usize];
        debug_assert!(block.offset + block.size <= chunk.layout.size());
        // SAFETY: the block was carved from this chunk, so
        // `offset + size <= layout.size()` and the result stays in bounds.
        unsafe { NonNull::new_unchecked(chunk.ptr.as_ptr().add(block.offset)) }
    }

    /// Total bytes obtained from the system allocator.
    pub fn footprint_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.layout.size()).sum()
    }

    /// Number of blocks currently on the recycle stack.
    pub fn recycled_len(&self) -> usize {
        self.recycled.len()
    }

    /// XORs `mask` into a deterministically chosen byte of one recycled
    /// block — the chaos arm's "stray write into freed memory" class.
    /// Returns `false` when no recycled blocks exist or `mask` is zero.
    pub(crate) fn corrupt_recycled(&mut self, selector: u64, mask: u8) -> bool {
        if self.recycled.is_empty() || mask == 0 {
            return false;
        }
        let block = self.recycled[(selector % self.recycled.len() as u64) as usize];
        let offset = ((selector >> 8) % block.size as u64) as usize;
        // SAFETY: `offset < size` of a live recycled block the arena owns.
        unsafe {
            let p = self.ptr(block).as_ptr().add(offset);
            p.write(p.read() ^ mask);
        }
        true
    }

    /// Checks the zeroed-handout contract on every recycled block: the
    /// memory was re-zeroed at [`recycle`](BumpArena::recycle) time and
    /// nothing may legitimately write it while it waits for reuse, so any
    /// non-zero byte is proof of a stale or wild write. Returns a
    /// description of the first dirty byte.
    pub fn check_recycled_zeroed(&self) -> Result<(), String> {
        for block in &self.recycled {
            // SAFETY: recycled blocks stay in-bounds of their chunks and
            // the arena exclusively owns the memory.
            let bytes =
                unsafe { std::slice::from_raw_parts(self.ptr(*block).as_ptr(), block.size) };
            if let Some(pos) = bytes.iter().position(|&b| b != 0) {
                return Err(format!(
                    "recycled block at chunk {} offset {:#x} holds non-zero byte {:#04x} at +{:#x}",
                    block.chunk, block.offset, bytes[pos], pos
                ));
            }
        }
        Ok(())
    }
}

impl Drop for BumpArena {
    fn drop(&mut self) {
        for chunk in &self.chunks {
            // SAFETY: each chunk was allocated with exactly this layout and
            // is deallocated once, here.
            unsafe { dealloc(chunk.ptr.as_ptr(), chunk.layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_aligned_and_disjoint() {
        let mut arena = BumpArena::new(4096, 64 << 10);
        let blocks: Vec<BumpBlock> = (0..8).map(|_| arena.alloc(10_000)).collect();
        let mut ranges: Vec<(usize, usize)> = blocks
            .iter()
            .map(|&b| {
                let p = arena.ptr(b).as_ptr() as usize;
                assert_eq!(p % 4096, 0, "block not page aligned");
                (p, p + b.size)
            })
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "blocks overlap: {w:?}");
        }
    }

    #[test]
    fn recycle_reuses_lifo() {
        let mut arena = BumpArena::new(4096, 64 << 10);
        let a = arena.alloc(4096);
        let b = arena.alloc(4096);
        arena.recycle(a);
        arena.recycle(b);
        assert_eq!(arena.recycled_len(), 2);
        let c = arena.alloc(4096);
        assert_eq!(c, b, "most recently released block is reused first");
        let d = arena.alloc(4096);
        assert_eq!(d, a);
        assert_eq!(arena.recycled_len(), 0);
    }

    #[test]
    fn oversized_requests_get_dedicated_chunks() {
        let mut arena = BumpArena::new(4096, 16 << 10);
        let big = arena.alloc(1 << 20);
        assert_eq!(big.size, 1 << 20);
        assert!(arena.footprint_bytes() >= 1 << 20);
        // Writing the whole block must be in bounds.
        // SAFETY: `big` spans `size` bytes of the chunk it was carved from.
        unsafe { std::ptr::write_bytes(arena.ptr(big).as_ptr(), 0xAB, big.size) };
    }

    #[test]
    fn blocks_hand_out_zeroed_even_after_dirty_recycle() {
        let mut arena = BumpArena::new(4096, 64 << 10);
        let a = arena.alloc(8192);
        // SAFETY: `a` is live and spans 8192 writable bytes.
        unsafe { std::ptr::write_bytes(arena.ptr(a).as_ptr(), 0x5A, a.size) };
        arena.recycle(a);
        let b = arena.alloc(8192);
        assert_eq!(b, a, "recycled block is reused");
        // SAFETY: reading `b`'s live range.
        let dirty = (0..b.size).any(|i| unsafe { arena.ptr(b).as_ptr().add(i).read() } != 0);
        assert!(!dirty, "recycled block handed out dirty");
    }

    #[test]
    fn reset_rewinds_the_cursor() {
        let mut arena = BumpArena::new(4096, 64 << 10);
        let first = arena.alloc(4096);
        for _ in 0..31 {
            arena.alloc(4096);
        }
        let footprint = arena.footprint_bytes();
        arena.reset();
        let again = arena.alloc(4096);
        assert_eq!(again, first, "reset rewinds to the first block");
        assert_eq!(
            arena.footprint_bytes(),
            footprint,
            "reset keeps chunks for reuse"
        );
    }
}
