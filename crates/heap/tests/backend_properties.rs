//! Property suite for the real-memory allocators and the sim/real
//! differential contract.
//!
//! The allocator halves check the machine-level guarantees the
//! [`RealBackend`](polm2_heap::RealBackend) leans on: blocks handed out by
//! the [`FreeList`] and [`BumpArena`] are page-aligned, mutually disjoint,
//! and writable; freeing coalesces back to whole chunks; resetting a bump
//! arena rewinds without growing the footprint. The differential half
//! drives the same random mutation trace through a simulated and a
//! real-memory heap and demands bit-identical logical state after every
//! step — the equality invariant everything downstream (profiles,
//! snapshots, GcWork) rests on.

use proptest::prelude::*;

use polm2_heap::{
    BackendKind, BumpArena, EvacDecision, FreeBlock, FreeList, Heap, HeapConfig, ObjectId,
    ParallelTuning, SiteId, TlabWindow, OBJECT_HEADER_BYTES,
};

/// The heap page size the allocators serve in production.
const GRANULE: usize = 4096;

// ---------------------------------------------------------------------------
// Allocator properties
// ---------------------------------------------------------------------------

/// One step of a seeded alloc/free/realloc sequence.
#[derive(Debug, Clone)]
enum AllocOp {
    Alloc { size: usize },
    Free { idx: usize },
    Realloc { idx: usize, size: usize },
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        4 => (1usize..40 * 1024).prop_map(|size| AllocOp::Alloc { size }),
        2 => (0usize..64).prop_map(|idx| AllocOp::Free { idx }),
        1 => (0usize..64, 1usize..40 * 1024)
            .prop_map(|(idx, size)| AllocOp::Realloc { idx, size }),
    ]
}

/// Half-open byte range a live block occupies.
fn range_of(list: &FreeList, block: FreeBlock) -> (usize, usize) {
    let start = list.ptr(block).as_ptr() as usize;
    (start, start + block.size())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any alloc/free/realloc sequence keeps live blocks page-aligned,
    /// large enough, and pairwise disjoint, with the free list's internal
    /// invariants (non-overlap, full coalescing, class-index consistency,
    /// byte accounting) holding after every step.
    #[test]
    fn free_list_sequences_stay_aligned_and_disjoint(
        ops in proptest::collection::vec(alloc_op(), 1..160)
    ) {
        let mut list = FreeList::new(GRANULE, 8 * GRANULE);
        let mut live: Vec<FreeBlock> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc { size } => {
                    let block = list.alloc(size);
                    prop_assert!(block.size() >= size);
                    prop_assert_eq!(block.size() % GRANULE, 0);
                    let (start, end) = range_of(&list, block);
                    prop_assert_eq!(start % GRANULE, 0);
                    for &other in &live {
                        let (os, oe) = range_of(&list, other);
                        prop_assert!(end <= os || oe <= start, "blocks overlap");
                    }
                    live.push(block);
                }
                AllocOp::Free { idx } => {
                    if !live.is_empty() {
                        let block = live.swap_remove(idx % live.len());
                        list.free(block);
                    }
                }
                AllocOp::Realloc { idx, size } => {
                    if !live.is_empty() {
                        let block = live.swap_remove(idx % live.len());
                        list.free(block);
                        let fresh = list.alloc(size);
                        prop_assert!(fresh.size() >= size);
                        live.push(fresh);
                    }
                }
            }
            list.assert_invariants();
            prop_assert_eq!(
                list.allocated_bytes(),
                live.iter().map(|b| b.size()).sum::<usize>()
            );
        }
        for block in live.drain(..) {
            list.free(block);
        }
        list.assert_invariants();
        prop_assert_eq!(list.allocated_bytes(), 0);
    }

    /// Freeing every block of a fully-carved chunk, in any order, coalesces
    /// back to a single free block, and re-allocating the whole chunk reuses
    /// it without growing the footprint.
    #[test]
    fn free_list_coalescing_round_trips(seed in any::<u64>()) {
        const BLOCKS: usize = 16;
        let mut list = FreeList::new(GRANULE, BLOCKS * GRANULE);
        let blocks: Vec<FreeBlock> = (0..BLOCKS).map(|_| list.alloc(GRANULE)).collect();
        let footprint = list.footprint_bytes();

        // Seeded Fisher-Yates: every free order must coalesce fully.
        let mut order: Vec<usize> = (0..BLOCKS).collect();
        let mut state = seed | 1;
        for i in (1..BLOCKS).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state as usize) % (i + 1));
        }
        for &i in &order {
            list.free(blocks[i]);
            list.assert_invariants();
        }
        // Frees are O(1) and deferred; one maintenance pass (what the
        // backend runs per GC cycle) must merge back to a single block.
        list.coalesce();
        list.assert_coalesced();
        prop_assert_eq!(list.free_block_count(), 1, "chunk did not coalesce");

        let whole = list.alloc(BLOCKS * GRANULE);
        prop_assert_eq!(list.footprint_bytes(), footprint, "coalesced chunk not reused");
        list.free(whole);
    }

    /// Bump blocks are page-aligned, pairwise disjoint, and physically
    /// independent (a byte pattern written per block survives every later
    /// allocation); resetting rewinds the cursor so the same sequence
    /// re-carves the same chunks without growing the footprint.
    #[test]
    fn bump_blocks_disjoint_and_reset_safe(
        sizes in proptest::collection::vec(1usize..24 * 1024, 1..48)
    ) {
        let mut arena = BumpArena::new(GRANULE, 8 * GRANULE);
        let blocks: Vec<_> = sizes.iter().map(|&s| arena.alloc(s)).collect();
        for (i, (&size, block)) in sizes.iter().zip(&blocks).enumerate() {
            prop_assert!(block.size() >= size);
            let start = arena.ptr(*block).as_ptr() as usize;
            prop_assert_eq!(start % GRANULE, 0);
            for other in &blocks[..i] {
                let os = arena.ptr(*other).as_ptr() as usize;
                prop_assert!(
                    start + block.size() <= os || os + other.size() <= start,
                    "bump blocks overlap"
                );
            }
            // SAFETY: the block is live and exclusively ours; the write stays
            // inside its reserved range.
            unsafe { arena.ptr(*block).as_ptr().write(i as u8) };
        }
        for (i, block) in blocks.iter().enumerate() {
            // SAFETY: reading the byte written above, still in range.
            let got = unsafe { arena.ptr(*block).as_ptr().read() };
            prop_assert_eq!(got, i as u8, "a later allocation clobbered block {}", i);
        }

        let footprint = arena.footprint_bytes();
        arena.reset();
        for &size in &sizes {
            let block = arena.alloc(size);
            // SAFETY: freshly carved block, exclusively ours.
            unsafe { arena.ptr(block).as_ptr().write(0xAB) };
        }
        prop_assert_eq!(
            arena.footprint_bytes(),
            footprint,
            "reset must rewind, not leak chunks"
        );
    }
}

// ---------------------------------------------------------------------------
// TLAB window properties
// ---------------------------------------------------------------------------

/// Splits `region_bytes` into `lanes` equal sub-ranges and returns each
/// lane's seeded (offset, size) write sequence — bump-style, never crossing
/// the lane boundary.
fn lane_writes(lane: usize, lanes: usize, region_bytes: u32, seed: u64) -> Vec<(u32, u32)> {
    let lane_bytes = region_bytes / lanes as u32;
    let start = lane as u32 * lane_bytes;
    let mut state = seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut cursor = start;
    let mut writes = Vec::new();
    while cursor + 8 <= start + lane_bytes {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let size =
            (OBJECT_HEADER_BYTES as u32 + (state as u32 % 256)).min(start + lane_bytes - cursor);
        if size < OBJECT_HEADER_BYTES as u32 {
            break;
        }
        writes.push((cursor, size));
        cursor += size;
    }
    writes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent windows installed over disjoint lanes of one pre-zeroed
    /// backing never write outside their lane: after all threads finish,
    /// every lane's bytes decode to exactly its own write sequence —
    /// headers intact, payloads still the zeros the backing started with
    /// (the header-only store's contract) — with refill (window exhaustion
    /// mid-lane) exercised by windows much smaller than a lane. Any
    /// overlap or stray payload store corrupts a decoded lane.
    #[test]
    fn tlab_windows_stay_disjoint_across_threads(seed in any::<u64>()) {
        const LANES: usize = 4;
        const REGION_BYTES: u32 = 256 << 10;
        const WINDOW: u32 = 8 << 10; // forces many refills per lane
        let mut backing = vec![0u8; REGION_BYTES as usize];
        let base = backing.as_mut_ptr() as usize;
        let all_writes: Vec<Vec<(u32, u32)>> = (0..LANES)
            .map(|l| lane_writes(l, LANES, REGION_BYTES, seed))
            .collect();
        std::thread::scope(|s| {
            for (lane, writes) in all_writes.iter().enumerate() {
                s.spawn(move || {
                    let base = base as *mut u8;
                    let mut w = TlabWindow::empty();
                    for &(offset, size) in writes {
                        let hash = offset ^ 0x5A5A_0000;
                        if !w.write(7, offset, size, hash) {
                            // Refill: a fresh window from the miss offset,
                            // clamped to the lane the writes stay inside.
                            let limit = (offset + WINDOW.max(size))
                                .min((lane as u32 + 1) * (REGION_BYTES / LANES as u32));
                            // SAFETY: the backing vec outlives the scope and
                            // lanes are disjoint, so no other thread's window
                            // overlaps [offset, limit).
                            unsafe { w.install(base, 7, offset, limit) };
                            assert!(w.write(7, offset, size, hash), "refit window must cover");
                        }
                    }
                });
            }
        });
        // Decode every lane: each write's header must carry its own hash
        // and size, and its payload must still be all-zero — the
        // header-only store never touches payload bytes.
        for writes in &all_writes {
            for &(offset, size) in writes {
                let hash = offset ^ 0x5A5A_0000;
                let at = offset as usize;
                let header =
                    u64::from_le_bytes(backing[at..at + 8].try_into().expect("8 bytes"));
                prop_assert_eq!(header as u32, size, "size clobbered at {}", offset);
                prop_assert_eq!((header >> 32) as u32, hash, "hash clobbered at {}", offset);
                prop_assert!(
                    backing[at + 8..at + size as usize].iter().all(|&b| b == 0),
                    "payload clobbered at {}",
                    offset
                );
            }
        }
    }

    /// Retire-then-reuse: once a window is retired, writes through it miss
    /// (the old backing is never touched again), and a window reinstalled
    /// over a different backing serves the same offsets independently.
    #[test]
    fn tlab_retire_then_reuse_never_touches_old_backing(
        offsets in proptest::collection::vec(0u32..4000, 1..24)
    ) {
        let mut old_backing = vec![0u8; 8 << 10];
        let mut new_backing = vec![0u8; 8 << 10];
        let mut w = TlabWindow::empty();
        // SAFETY: old_backing outlives the window's use of it below.
        unsafe { w.install(old_backing.as_mut_ptr(), 3, 0, old_backing.len() as u32) };
        for &off in &offsets {
            prop_assert!(w.write(3, off.min(4000), 64, 0x11), "covered write must hit");
        }
        let old_snapshot = old_backing.clone();
        w.retire();
        for &off in &offsets {
            prop_assert!(!w.write(3, off, 64, 0x22), "retired window must miss");
        }
        prop_assert_eq!(&old_backing, &old_snapshot, "retired window wrote old backing");
        // Reinstall over fresh backing, same region id (the backing of a
        // recycled region): writes land in the new block only.
        // SAFETY: new_backing outlives the window's use of it below.
        unsafe { w.install(new_backing.as_mut_ptr(), 3, 0, new_backing.len() as u32) };
        for &off in &offsets {
            prop_assert!(w.write(3, off.min(4000), 64, 0x33));
        }
        prop_assert_eq!(&old_backing, &old_snapshot, "reused window wrote old backing");
        prop_assert!(new_backing.contains(&0x33), "new backing untouched");
    }
}

// ---------------------------------------------------------------------------
// Sim-vs-real differential fuzz
// ---------------------------------------------------------------------------

/// One step of a random heap mutation trace.
#[derive(Debug, Clone)]
enum HeapOp {
    Alloc { size: u32, site: u32 },
    Root { idx: usize },
    Unroot { idx: usize },
    CollectYoung,
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        5 => (16u32..2048, 0u32..8).prop_map(|(size, site)| HeapOp::Alloc { size, site }),
        3 => (0usize..96).prop_map(|idx| HeapOp::Root { idx }),
        1 => (0usize..96).prop_map(|idx| HeapOp::Unroot { idx }),
        1 => Just(HeapOp::CollectYoung),
    ]
}

fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Everything logically observable about a heap, folded to one hash.
fn fingerprint(heap: &Heap) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for space in heap.spaces() {
        for id in heap.objects_in_space(space.id()).expect("space exists") {
            let rec = heap.object(id).expect("listed object exists");
            h = fnv_mix(h, id.raw());
            h = fnv_mix(h, u64::from(rec.addr().region.raw()));
            h = fnv_mix(h, u64::from(rec.addr().offset));
            h = fnv_mix(h, u64::from(rec.size()));
            h = fnv_mix(h, u64::from(rec.age()));
        }
    }
    for flags in heap.page_table().iter() {
        h = fnv_mix(h, u64::from(flags.dirty) | u64::from(flags.no_need) << 1);
    }
    fnv_mix(h, u64::from(heap.free_region_count()))
}

/// A young survivor-copy collection: mark, evacuate survivors within young,
/// drop the dead — the path that exercises the backend's memcpy.
fn collect_young(heap: &mut Heap) {
    let live = heap.mark_live(&[]);
    let young = heap
        .objects_in_space(Heap::YOUNG_SPACE)
        .expect("young space");
    let ops: Vec<(ObjectId, EvacDecision)> = young
        .into_iter()
        .map(|obj| {
            let decision = if live.contains(obj) {
                EvacDecision::Move {
                    dest: Heap::YOUNG_SPACE,
                    bump_age: true,
                }
            } else {
                EvacDecision::Drop
            };
            (obj, decision)
        })
        .collect();
    heap.begin_evacuation(Heap::YOUNG_SPACE)
        .expect("begin evacuation");
    heap.evacuate_batch(&ops).expect("evacuate");
    heap.finish_evacuation().expect("finish evacuation");
}

/// Drives one mutation trace through a sim and a real heap in lockstep and
/// asserts bit-identical logical state throughout. With `parallel_4w`, both
/// heaps run every safepoint phase through the forced parallel paths
/// ([`ParallelTuning::force`]) at 4 workers — including the partitioned
/// evacuation copy phase — which must not move a single logical bit.
fn differential_trace(ops: &[HeapOp], parallel_4w: bool) {
    let mut sim = Heap::new(HeapConfig::small());
    // A small TLAB window (one page) forces frequent refills so the
    // window/refill/retire machinery is exercised, not just the hit path.
    let mut real = Heap::new(
        HeapConfig::small()
            .with_backend(BackendKind::Real)
            .with_tlab_bytes(4 << 10),
    );
    {
        let heaps: &mut [&mut Heap] = &mut [&mut sim, &mut real];
        if parallel_4w {
            for h in heaps.iter_mut() {
                h.set_parallel_tuning(ParallelTuning::force());
                h.set_gc_workers(4);
            }
        }
        let mut known: Vec<ObjectId> = Vec::new();
        let (class_a, class_b, slot_a, slot_b);
        {
            let init = |heap: &mut Heap| {
                let c = heap.classes_mut().intern("D");
                let s = heap.roots_mut().create_slot("diff");
                (c, s)
            };
            let (ca, sa) = init(heaps[0]);
            let (cb, sb) = init(heaps[1]);
            class_a = ca;
            class_b = cb;
            slot_a = sa;
            slot_b = sb;
        }
        prop_assert_eq!(class_a, class_b);
        prop_assert_eq!(slot_a, slot_b);

        for op in ops.iter().cloned() {
            match op {
                HeapOp::Alloc { size, site } => {
                    let a = heaps[0].allocate(class_a, size, SiteId::new(site), Heap::YOUNG_SPACE);
                    let b = heaps[1].allocate(class_b, size, SiteId::new(site), Heap::YOUNG_SPACE);
                    match (a, b) {
                        (Ok(ia), Ok(ib)) => {
                            prop_assert_eq!(ia, ib, "allocation ids diverged");
                            known.push(ia);
                        }
                        (Err(_), Err(_)) => {
                            for h in heaps.iter_mut() {
                                collect_young(h);
                            }
                        }
                        _ => prop_assert!(false, "one backend failed to allocate"),
                    }
                }
                HeapOp::Root { idx } => {
                    if let Some(&o) = known.get(idx) {
                        for h in heaps.iter_mut() {
                            if h.object(o).is_some() {
                                let slot = h.roots().find_slot("diff").expect("slot");
                                h.roots_mut().push(slot, o);
                            }
                        }
                    }
                }
                HeapOp::Unroot { idx } => {
                    if let Some(&o) = known.get(idx) {
                        for h in heaps.iter_mut() {
                            let slot = h.roots().find_slot("diff").expect("slot");
                            h.roots_mut().remove(slot, o);
                        }
                    }
                }
                HeapOp::CollectYoung => {
                    for h in heaps.iter_mut() {
                        collect_young(h);
                    }
                    prop_assert_eq!(
                        fingerprint(heaps[0]),
                        fingerprint(heaps[1]),
                        "trajectories diverged after a collection"
                    );
                }
            }
        }
        for h in heaps.iter_mut() {
            h.check_invariants();
        }
        prop_assert_eq!(fingerprint(heaps[0]), fingerprint(heaps[1]));

        // The streamed hash columns agree: real reads back the headers its
        // payload stores wrote, sim falls back to the object table.
        let live_sim = heaps[0].mark_live(&[]);
        let live_real = heaps[1].mark_live(&[]);
        let (mut col_sim, mut col_real) = (Vec::new(), Vec::new());
        heaps[0].live_hash_column(&live_sim, &mut col_sim);
        heaps[1].live_hash_column(&live_real, &mut col_real);
        prop_assert_eq!(col_sim, col_real, "snapshot columns diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same mutation trace drives a simulated and a real-memory heap to
    /// bit-identical logical state: placement fingerprints match after every
    /// collection, and the streamed snapshot columns (read from real object
    /// headers on one side, from the object table on the other) agree.
    #[test]
    fn sim_and_real_heaps_stay_bit_identical(
        ops in proptest::collection::vec(heap_op(), 1..120)
    ) {
        differential_trace(&ops, false);
    }

    /// The same lockstep equality holds with every parallel safepoint path
    /// forced on at 4 workers — sharded mark, the partitioned evacuation
    /// copy phase, and the parallel fix-up must not move one logical bit.
    #[test]
    fn sim_and_real_heaps_stay_bit_identical_at_4_workers(
        ops in proptest::collection::vec(heap_op(), 1..120)
    ) {
        differential_trace(&ops, true);
    }
}
