//! Property suite for the heap-integrity verifier's detection contract.
//!
//! Two halves, mirroring the verifier's promise:
//!
//! * **no false positives** — an uncorrupted heap, whatever alloc/drop
//!   trace produced it, always verifies clean;
//! * **no false negatives** — every corruption class the chaos arm can
//!   plant (bit flip, header clobber, stray write into free memory), in
//!   either the young or a tenured space, is detected by a verify pass, and
//!   the reported invariant is one the planted class is documented to trip
//!   ([`CorruptionKind::detectable_by`]).
//!
//! Detection is always a typed [`HeapError::IntegrityViolation`] — a plant
//! that panicked the verifier would fail these tests just as hard as one it
//! missed.

use proptest::prelude::*;

use polm2_heap::{
    BackendKind, CorruptionKind, GenId, Heap, HeapConfig, HeapError, ObjectId, SiteId,
};

/// One step of a seeded alloc/drop trace.
#[derive(Debug, Clone)]
enum Op {
    AllocYoung { size: u32 },
    AllocTenured { size: u32 },
    Drop { idx: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (16u32..1024).prop_map(|size| Op::AllocYoung { size }),
        2 => (16u32..1024).prop_map(|size| Op::AllocTenured { size }),
        2 => (0usize..64).prop_map(|idx| Op::Drop { idx }),
    ]
}

/// Replays `ops` onto a fresh real-backend heap. Deterministic: the same
/// trace always yields the same heap, so the detection property can rebuild
/// an identical victim for each corruption class.
fn build_heap(ops: &[Op]) -> Heap {
    let mut heap = Heap::new(HeapConfig::small().with_backend(BackendKind::Real));
    let class = heap.classes_mut().intern("C");
    let tenured = heap.create_space(GenId::new(1), None);
    let mut live: Vec<ObjectId> = Vec::new();
    for op in ops {
        match op {
            Op::AllocYoung { size } => {
                if let Ok(id) = heap.allocate(class, *size, SiteId::new(0), Heap::YOUNG_SPACE) {
                    live.push(id);
                }
            }
            Op::AllocTenured { size } => {
                if let Ok(id) = heap.allocate(class, *size, SiteId::new(1), tenured) {
                    live.push(id);
                }
            }
            Op::Drop { idx } => {
                if !live.is_empty() {
                    let id = live.swap_remove(idx % live.len());
                    heap.drop_object(id).unwrap();
                }
            }
        }
    }
    // Anchors: every corruption class needs at least one header-bearing
    // live object, and the partially filled regions they land in give the
    // stray-write class its beyond-cursor target.
    heap.allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)
        .unwrap();
    heap.allocate(class, 64, SiteId::new(1), tenured).unwrap();
    heap
}

/// Plants `kind` with `seed` and asserts the next verify pass reports a
/// typed violation of one of the invariants that class is documented to
/// trip.
fn assert_detected(heap: &mut Heap, kind: CorruptionKind, seed: u64) {
    let planted = heap
        .plant_corruption(kind, seed)
        .unwrap_or_else(|| panic!("no plant target for {}", kind.label()));
    match heap.verify_integrity() {
        Err(HeapError::IntegrityViolation { invariant, detail }) => assert!(
            kind.detectable_by().contains(&invariant),
            "{} ({}) was flagged as {invariant:?} ({detail}), expected one of {:?}",
            kind.label(),
            planted.detail,
            kind.detectable_by()
        ),
        Err(other) => panic!(
            "{} surfaced as a non-integrity error: {other}",
            kind.label()
        ),
        Ok(()) => panic!(
            "verifier passed a corrupted heap: {} ({})",
            kind.label(),
            planted.detail
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An uncorrupted heap never trips the verifier, whatever trace built
    /// it — the zero-false-positive half of the contract.
    #[test]
    fn clean_heaps_always_verify(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut heap = build_heap(&ops);
        let passes_before = heap.verify_passes();
        heap.verify_integrity().expect("clean heap must verify");
        prop_assert_eq!(heap.verify_passes(), passes_before + 1);
    }

    /// Every corruption class is detected on every trace — the
    /// zero-false-negative half. Each class gets its own identically
    /// rebuilt victim so one plant cannot mask another.
    #[test]
    fn every_corruption_class_is_detected(
        ops in proptest::collection::vec(op_strategy(), 0..120),
        seed in any::<u64>(),
    ) {
        for kind in CorruptionKind::ALL {
            let mut heap = build_heap(&ops);
            assert_detected(&mut heap, kind, seed);
        }
    }
}

/// The full class × space matrix, deterministically: heaps populated only
/// in the young (resp. a tenured) space still yield a plant target for
/// every class, and every plant is caught.
#[test]
fn detection_matrix_covers_young_and_tenured_spaces() {
    for tenured_only in [false, true] {
        for kind in CorruptionKind::ALL {
            for seed in 0..16u64 {
                let mut heap = Heap::new(HeapConfig::small().with_backend(BackendKind::Real));
                let class = heap.classes_mut().intern("M");
                let space = if tenured_only {
                    heap.create_space(GenId::new(1), None)
                } else {
                    Heap::YOUNG_SPACE
                };
                for i in 0..24u32 {
                    heap.allocate(class, 32 + i * 8, SiteId::new(0), space)
                        .unwrap();
                }
                let planted = heap.plant_corruption(kind, seed).unwrap_or_else(|| {
                    panic!("no {} target (tenured={tenured_only})", kind.label())
                });
                match heap.verify_integrity() {
                    Err(HeapError::IntegrityViolation { invariant, .. }) => assert!(
                        kind.detectable_by().contains(&invariant),
                        "{} flagged as {invariant:?} (tenured={tenured_only})",
                        kind.label()
                    ),
                    other => panic!(
                        "{} (seed {seed}, tenured={tenured_only}, {}) not detected: {other:?}",
                        kind.label(),
                        planted.detail
                    ),
                }
            }
        }
    }
}

/// A verify pass is read-only: verifying twice in a row (clean heap) gives
/// the same answer, and only the pass counter moves.
#[test]
fn verification_is_read_only() {
    let mut heap = Heap::new(HeapConfig::small().with_backend(BackendKind::Real));
    let class = heap.classes_mut().intern("R");
    for i in 0..16u32 {
        heap.allocate(class, 24 + i, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
    }
    let stats_before = heap.stats();
    heap.verify_integrity().unwrap();
    heap.verify_integrity().unwrap();
    assert_eq!(
        heap.stats(),
        stats_before,
        "stats untouched by verification"
    );
    assert_eq!(heap.verify_passes(), 2);
}
