//! Incremental page-liveness bookkeeping vs from-scratch recomputation.
//!
//! The heap maintains two page-granularity structures incrementally: exact
//! per-page object-overlap counts (updated at allocate/drop/relocate time)
//! and a reachability bitmap refreshed by each full mark. These tests drive
//! allocate/relocate/drop/evacuate/release sequences and compare both
//! against recomputations from the object records.

use polm2_heap::{GenId, Heap, HeapConfig, ObjectId, SiteId, SpaceId};

/// Recomputes per-page object counts from every live record.
fn recount_pages(heap: &Heap) -> Vec<u32> {
    let mut counts = vec![0u32; heap.page_table().page_count() as usize];
    for space in heap.spaces() {
        let space_id = space.id();
        for obj in heap.objects_in_space(space_id).unwrap() {
            let rec = heap.object(obj).unwrap();
            let (first, last) = heap.page_table().pages_of(rec.addr(), rec.size());
            for page in first..=last {
                counts[page as usize] += 1;
            }
        }
    }
    counts
}

fn assert_counts_match(heap: &Heap, context: &str) {
    let expected = recount_pages(heap);
    for (page, &want) in expected.iter().enumerate() {
        assert_eq!(
            heap.page_object_count(page as u32),
            want,
            "page {page} occupancy diverged after {context}"
        );
    }
}

fn seeded_heap() -> (Heap, SpaceId, Vec<ObjectId>) {
    let mut heap = Heap::new(HeapConfig::small());
    let class = heap.classes_mut().intern("T");
    let old = heap.create_space(GenId::new(1), None);
    let slot = heap.roots_mut().create_slot("keep");
    let mut ids = Vec::new();
    // Mixed sizes: sub-page, page-straddling, and multi-page objects.
    for i in 0..48u32 {
        let size = match i % 3 {
            0 => 1_024,
            1 => 4_096,
            _ => 9_000,
        };
        let id = heap
            .allocate(class, size, SiteId::new(i % 5), Heap::YOUNG_SPACE)
            .unwrap();
        if i % 2 == 0 {
            heap.roots_mut().push(slot, id);
        }
        ids.push(id);
    }
    (heap, old, ids)
}

#[test]
fn counts_track_allocate_relocate_drop() {
    let (mut heap, old, ids) = seeded_heap();
    assert_counts_match(&heap, "allocation");

    for &id in ids.iter().step_by(4) {
        heap.relocate(id, old).unwrap();
        assert_counts_match(&heap, "relocate");
    }
    for &id in ids.iter().skip(1).step_by(4) {
        heap.drop_object(id).unwrap();
        assert_counts_match(&heap, "drop");
    }
    heap.check_invariants();
}

#[test]
fn counts_track_evacuation_and_region_release() {
    let (mut heap, old, _ids) = seeded_heap();
    // Evacuate young: drop the dead, move survivors out, then release the
    // emptied regions — the full region lifecycle in one sweep.
    let live = heap.mark_live(&[]);
    let young = heap.objects_in_space(Heap::YOUNG_SPACE).unwrap();
    let sources = heap.begin_evacuation(Heap::YOUNG_SPACE).unwrap();
    for obj in young {
        if live.contains(obj) {
            heap.relocate(obj, old).unwrap();
        } else {
            heap.drop_object(obj).unwrap();
        }
    }
    // finish_evacuation releases the emptied sources via `release_region`,
    // which re-verifies emptiness with the incremental counters.
    heap.finish_evacuation().unwrap();
    assert_counts_match(&heap, "evacuation + release");

    for region in sources {
        assert!(
            heap.live_objects_in_region(region).is_empty(),
            "evacuation must empty its source regions"
        );
        let first = heap.region(region).first_page().raw();
        for page in first..first + heap.config().pages_per_region() {
            assert_eq!(heap.page_object_count(page), 0, "freed page occupied");
            assert!(
                heap.page_table().flags_of(page).no_need,
                "freed pages must be no-need until reallocated"
            );
        }
    }
    heap.check_invariants();
}

/// The no-need sweep must produce identical page flags whether it runs on
/// the incremental live-page bitmap (fresh mark, fast path) or rebuilds
/// page liveness from the LiveSet (stale mark, fallback path).
#[test]
fn no_need_fast_path_equals_fallback_after_identical_mutations() {
    let drive = |stale: bool| -> (Vec<bool>, u32) {
        let (mut heap, old, ids) = seeded_heap();
        for &id in ids.iter().step_by(5) {
            heap.relocate(id, old).unwrap();
        }
        for &id in ids.iter().skip(2).step_by(5) {
            let _ = heap.drop_object(id);
        }
        let live = heap.mark_live(&[]);
        if stale {
            // Any mutation invalidates the incremental bitmap and forces
            // the fallback recomputation; dropping an unreachable object
            // does not change the reachable set, so flags must not change.
            let dead = ids
                .iter()
                .copied()
                .find(|&id| heap.object(id).is_some() && !live.contains(id))
                .expect("some dead object survives to be dropped");
            heap.drop_object(dead).unwrap();
        }
        let marked = heap.mark_no_need_pages(&live);
        let flags = heap
            .page_table()
            .iter()
            .map(|f| f.no_need)
            .collect::<Vec<bool>>();
        (flags, marked)
    };

    let (fast_flags, fast_marked) = drive(false);
    let (fallback_flags, _) = drive(true);
    assert_eq!(
        fast_flags, fallback_flags,
        "fast and fallback no-need sweeps disagree"
    );
    assert!(fast_marked > 0, "garbage-heavy heap must mark some pages");
}

#[test]
fn relocation_moves_page_occupancy_not_liveness_semantics() {
    let mut heap = Heap::new(HeapConfig::small());
    let class = heap.classes_mut().intern("T");
    let old = heap.create_space(GenId::new(1), None);
    let slot = heap.roots_mut().create_slot("keep");
    let obj = heap
        .allocate(class, 4_096, SiteId::new(0), Heap::YOUNG_SPACE)
        .unwrap();
    heap.roots_mut().push(slot, obj);

    let rec = heap.object(obj).unwrap();
    let (src_first, src_last) = heap.page_table().pages_of(rec.addr(), rec.size());
    heap.relocate(obj, old).unwrap();
    let rec = heap.object(obj).unwrap();
    let (dst_first, dst_last) = heap.page_table().pages_of(rec.addr(), rec.size());
    assert_ne!(src_first, dst_first, "relocation must change pages");

    for page in src_first..=src_last {
        assert_eq!(heap.page_object_count(page), 0, "source page not vacated");
    }
    for page in dst_first..=dst_last {
        assert_eq!(heap.page_object_count(page), 1, "dest page not occupied");
    }

    // A fresh mark sweeps the vacated source pages as no-need and keeps
    // the destination pages.
    let live = heap.mark_live(&[]);
    heap.mark_no_need_pages(&live);
    assert!(heap.page_table().flags_of(src_first).no_need);
    assert!(!heap.page_table().flags_of(dst_first).no_need);
}
