//! Property-based tests: random operation sequences preserve heap invariants.

use proptest::prelude::*;

use polm2_heap::{GenId, Heap, HeapConfig, HeapError, ObjectId, SiteId};

/// One randomly generated heap operation.
#[derive(Debug, Clone)]
enum Op {
    Alloc { size: u32, site: u32 },
    AddRef { from: usize, to: usize },
    RemoveRef { from: usize, to: usize },
    Root { idx: usize },
    Unroot { idx: usize },
    MarkAndSweepYoung,
    Promote { idx: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (16u32..2048, 0u32..8).prop_map(|(size, site)| Op::Alloc { size, site }),
        3 => (0usize..64, 0usize..64).prop_map(|(from, to)| Op::AddRef { from, to }),
        1 => (0usize..64, 0usize..64).prop_map(|(from, to)| Op::RemoveRef { from, to }),
        2 => (0usize..64).prop_map(|idx| Op::Root { idx }),
        1 => (0usize..64).prop_map(|idx| Op::Unroot { idx }),
        1 => Just(Op::MarkAndSweepYoung),
        1 => (0usize..64).prop_map(|idx| Op::Promote { idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence of operations runs, the heap's internal invariants
    /// hold and accounting stays consistent.
    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut heap = Heap::new(HeapConfig::small());
        let class = heap.classes_mut().intern("P");
        let old = heap.create_space(GenId::new(1), None);
        let slot = heap.roots_mut().create_slot("prop");
        let mut known: Vec<ObjectId> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { size, site } => {
                    match heap.allocate(class, size, SiteId::new(site), Heap::YOUNG_SPACE) {
                        Ok(id) => known.push(id),
                        Err(HeapError::SpaceFull { .. }) | Err(HeapError::OutOfRegions { .. }) => {
                            // Young full: collect everything unreachable.
                            collect_young(&mut heap, &mut known);
                        }
                        Err(e) => panic!("unexpected allocation error: {e}"),
                    }
                }
                Op::AddRef { from, to } => {
                    if let (Some(&f), Some(&t)) = (known.get(from), known.get(to)) {
                        if heap.object(f).is_some() && heap.object(t).is_some() {
                            heap.add_ref(f, t).unwrap();
                        }
                    }
                }
                Op::RemoveRef { from, to } => {
                    if let (Some(&f), Some(&t)) = (known.get(from), known.get(to)) {
                        if heap.object(f).is_some() {
                            let _ = heap.remove_ref(f, t);
                        }
                    }
                }
                Op::Root { idx } => {
                    if let Some(&o) = known.get(idx) {
                        if heap.object(o).is_some() {
                            heap.roots_mut().push(slot, o);
                        }
                    }
                }
                Op::Unroot { idx } => {
                    if let Some(&o) = known.get(idx) {
                        heap.roots_mut().remove(slot, o);
                    }
                }
                Op::MarkAndSweepYoung => collect_young(&mut heap, &mut known),
                Op::Promote { idx } => {
                    if let Some(&o) = known.get(idx) {
                        if heap.object(o).map(|r| r.space()) == Some(Heap::YOUNG_SPACE) {
                            // Promotion can fail if the pool is exhausted; that
                            // is a legal outcome, not an invariant violation.
                            let _ = heap.relocate(o, old);
                        }
                    }
                }
            }
            heap.check_invariants();

            let stats = heap.stats();
            prop_assert!(stats.freed_objects <= stats.allocated_objects);
            prop_assert!(stats.freed_bytes <= stats.allocated_bytes);
            prop_assert_eq!(stats.live_objects(), heap.object_count() as u64);
            prop_assert!(heap.committed_bytes() <= heap.config().total_bytes);
        }
    }

    /// Marking is idempotent: two consecutive marks see the same live set.
    #[test]
    fn marking_is_idempotent(sizes in proptest::collection::vec(16u32..512, 1..40), root_mask in any::<u64>()) {
        let mut heap = Heap::new(HeapConfig::small());
        let class = heap.classes_mut().intern("P");
        let slot = heap.roots_mut().create_slot("prop");
        let mut ids = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let id = heap.allocate(class, *size, SiteId::new(0), Heap::YOUNG_SPACE).unwrap();
            if root_mask & (1 << (i % 64)) != 0 {
                heap.roots_mut().push(slot, id);
            }
            ids.push(id);
        }
        let first = heap.mark_live(&[]);
        let second = heap.mark_live(&[]);
        prop_assert_eq!(first.len(), second.len());
        prop_assert_eq!(first.live_bytes(), second.live_bytes());
        for id in ids {
            prop_assert_eq!(first.contains(id), second.contains(id));
        }
    }

    /// Relocation preserves identity: id, hash, size, and edges survive a move.
    #[test]
    fn relocation_preserves_identity(size in 16u32..4096, nrefs in 0usize..8) {
        let mut heap = Heap::new(HeapConfig::small());
        let class = heap.classes_mut().intern("P");
        let old = heap.create_space(GenId::new(1), None);
        let obj = heap.allocate(class, size, SiteId::new(1), Heap::YOUNG_SPACE).unwrap();
        let mut children = Vec::new();
        for _ in 0..nrefs {
            let c = heap.allocate(class, 32, SiteId::new(2), Heap::YOUNG_SPACE).unwrap();
            heap.add_ref(obj, c).unwrap();
            children.push(c);
        }
        let before = heap.object(obj).unwrap().clone();
        heap.relocate(obj, old).unwrap();
        let after = heap.object(obj).unwrap();
        prop_assert_eq!(after.id(), before.id());
        prop_assert_eq!(after.identity_hash(), before.identity_hash());
        prop_assert_eq!(after.size(), before.size());
        prop_assert_eq!(after.refs(), before.refs());
        prop_assert_eq!(after.space(), old);
        heap.check_invariants();
    }
}

/// Minimal young collection for the property tests: mark, evacuate nothing,
/// drop dead young objects, release empty young regions.
fn collect_young(heap: &mut Heap, known: &mut Vec<ObjectId>) {
    let live = heap.mark_live(&[]);
    let young = heap.objects_in_space(Heap::YOUNG_SPACE).unwrap();
    for obj in young {
        if !live.contains(obj) {
            heap.drop_object(obj).unwrap();
        }
    }
    let regions: Vec<_> = heap
        .space(Heap::YOUNG_SPACE)
        .unwrap()
        .regions()
        .iter()
        .copied()
        .filter(|&r| heap.region(r).objects().is_empty())
        .collect();
    for r in regions {
        heap.release_region(r).unwrap();
    }
    known.retain(|&o| heap.object(o).is_some());
}
