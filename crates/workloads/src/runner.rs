//! The closed-loop workload driver: runs a workload under a collector setup
//! and gathers every metric the paper's figures need.

use std::path::Path;

use polm2_core::journal::{replay, ReplayedSession, KIND_COMMIT};
use polm2_core::{
    AnalysisOutcome, Analyzer, AnalyzerConfig, FaultConfig, FaultyMedia, JournalRetryPolicy,
    PipelineError, ProductionSetup, ProfilingSession, Recorder, RecoveryPolicy, SessionJournal,
    SessionMeta, SnapshotPolicy,
};
use polm2_gc::{C4Collector, GcError, GcLog, Ng2cCollector};
use polm2_metrics::{
    FaultCounters, MemoryTracker, PauseHistogram, SimDuration, SimTime, ThroughputTracker,
};
use polm2_runtime::{Jvm, RuntimeConfig, RuntimeError};
use polm2_snapshot::journal::{recover, DEFAULT_SEGMENT_BYTES};
use polm2_snapshot::{
    FsMedia, FsckReport, JournalError, JournalMedia, JournalWriter, SnapshotSeries,
};

use crate::workload::{CollectorSetup, Workload};

/// Parameters of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Total simulated run length (paper: 30 minutes).
    pub duration: SimDuration,
    /// Initial span excluded from all metrics (paper: 5 minutes).
    pub warmup: SimDuration,
    /// Workload RNG seed.
    pub seed: u64,
    /// Runtime (heap + GC) configuration.
    pub runtime: RuntimeConfig,
}

impl RunConfig {
    /// The paper's measurement setup: 30 simulated minutes, first 5 ignored.
    pub fn paper() -> Self {
        RunConfig {
            duration: SimDuration::from_secs(30 * 60),
            warmup: SimDuration::from_secs(5 * 60),
            seed: 42,
            runtime: RuntimeConfig::paper_scaled(),
        }
    }

    /// A short configuration for tests (2 simulated minutes, 20 s warm-up).
    pub fn short() -> Self {
        RunConfig {
            duration: SimDuration::from_secs(120),
            warmup: SimDuration::from_secs(20),
            seed: 42,
            runtime: RuntimeConfig::paper_scaled(),
        }
    }
}

/// Everything measured during one run.
#[derive(Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: &'static str,
    /// Collector label ("G1", "NG2C", "POLM2", "C4").
    pub collector: &'static str,
    /// The full GC event log.
    pub gc_log: GcLog,
    /// Completed operations over time.
    pub throughput: ThroughputTracker,
    /// Per-operation latency (simulated time from issue to completion,
    /// stop-the-world pauses included) over the measured window — the
    /// request-latency view behind the paper's SLA motivation (§1).
    pub op_latency: PauseHistogram,
    /// Committed-memory samples (one per simulated second).
    pub memory: MemoryTracker,
    /// Operations completed after warm-up.
    pub measured_ops: u64,
    /// The warm-up cutoff used.
    pub warmup_end: SimTime,
    /// Total simulated run length.
    pub duration: SimDuration,
    /// Faults absorbed while setting up the run (stale profile entries the
    /// Instrumenter skipped); all-zero for profile-free setups.
    pub fault_counters: FaultCounters,
}

impl RunResult {
    /// Pause histogram over the measured window (warm-up excluded), as
    /// Figure 5 plots it.
    pub fn pause_histogram(&self) -> PauseHistogram {
        self.gc_log.pause_histogram(self.warmup_end)
    }

    /// Pause counts per duration interval (Figure 6).
    pub fn interval_histogram(&self) -> polm2_metrics::IntervalHistogram {
        self.gc_log.interval_histogram(self.warmup_end)
    }

    /// Mean throughput over the measured window, operations/second
    /// (Figure 7).
    pub fn mean_throughput(&self) -> f64 {
        self.throughput
            .mean_ops_per_sec(self.warmup_end, SimTime::ZERO + self.duration)
    }

    /// Maximum committed memory over the measured window (Figure 9).
    pub fn max_memory_bytes(&self) -> u64 {
        self.memory.max_used_bytes_since(self.warmup_end)
    }
}

/// Runs `workload` under `setup` for `config`.
///
/// The driver is closed-loop: it issues the next operation as soon as the
/// previous one (plus its think time) completes, so stop-the-world pauses
/// and barrier taxes translate directly into throughput loss, as in the
/// paper's saturated runs.
///
/// # Errors
///
/// Propagates runtime failures (the heap is sized so none occur with the
/// paper configurations). Stale profile entries are *not* errors: the
/// Instrumenter skips them and they are reported via
/// [`RunResult::fault_counters`].
pub fn run_workload(
    workload: &dyn Workload,
    setup: &CollectorSetup,
    config: &RunConfig,
) -> Result<RunResult, PipelineError> {
    let program = workload.program();
    let mut builder = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(config.seed));
    let production: Option<ProductionSetup> = match setup {
        CollectorSetup::G1 => None,
        CollectorSetup::C4 => {
            builder = builder.collector(Box::new(C4Collector::new(config.runtime.gc)));
            None
        }
        CollectorSetup::Ng2cManual => {
            builder = builder.collector(Box::new(Ng2cCollector::new(config.runtime.gc)));
            Some(ProductionSetup::checked(
                &workload.manual_profile(),
                &program,
            ))
        }
        CollectorSetup::Polm2(profile) => {
            builder = builder.collector(Box::new(Ng2cCollector::new(config.runtime.gc)));
            Some(ProductionSetup::checked(profile, &program))
        }
    };
    if let Some(setup) = &production {
        builder = builder.transformer(setup.agent());
    }
    let mut fault_counters = production
        .as_ref()
        .map(ProductionSetup::fault_counters)
        .unwrap_or_default();
    let mut jvm = builder.build(program)?;
    if let Some(setup) = &production {
        setup.prepare_generations(&mut jvm);
    }

    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let op_cost = workload.op_cost();
    let end = SimTime::ZERO + config.duration;
    let warmup_end = SimTime::ZERO + config.warmup;

    let mut throughput = ThroughputTracker::new();
    let mut memory = MemoryTracker::new();
    let mut op_latency = PauseHistogram::new();
    let mut measured_ops: u64 = 0;
    let mut last_sample_sec = u64::MAX;

    while jvm.now() < end {
        let issued = jvm.now();
        jvm.invoke(thread, class, method)?;
        jvm.advance_mutator(op_cost);
        let now = jvm.now();
        throughput.record_ops(now, 1);
        if now >= warmup_end {
            measured_ops += 1;
            op_latency.record(now - issued);
        }
        let sec = now.as_secs();
        if sec != last_sample_sec {
            last_sample_sec = sec;
            memory.sample(now, jvm.reported_committed_bytes());
        }
    }
    fault_counters.heap_verify_passes += jvm.heap().verify_passes();
    fault_counters.emergency_collections += jvm.collector().emergency_collections();

    Ok(RunResult {
        workload: workload.name(),
        collector: setup.label(),
        gc_log: jvm.gc_log().clone(),
        throughput,
        memory,
        op_latency,
        measured_ops,
        warmup_end,
        duration: config.duration,
        fault_counters,
    })
}

/// Parameters of the profiling phase (paper §5.3: five minutes of profiling
/// plus an ignored first minute — six simulated minutes total).
#[derive(Debug, Clone, Copy)]
pub struct ProfilePhaseConfig {
    /// Length of the profiling run.
    pub duration: SimDuration,
    /// Workload RNG seed (distinct from production runs: profiles transfer
    /// across runs of the same workload, paper §3.5).
    pub seed: u64,
    /// Runtime configuration.
    pub runtime: RuntimeConfig,
    /// Snapshot cadence.
    pub policy: SnapshotPolicy,
    /// Analyzer tuning.
    pub analyzer: AnalyzerConfig,
    /// Seeded fault injection (chaos testing); inert by default.
    pub faults: FaultConfig,
    /// Snapshot-failure recovery policy.
    pub recovery: RecoveryPolicy,
}

impl ProfilePhaseConfig {
    /// The paper's profiling setup: six simulated minutes, snapshot every
    /// GC cycle.
    pub fn paper() -> Self {
        ProfilePhaseConfig {
            duration: SimDuration::from_secs(6 * 60),
            seed: 7,
            runtime: RuntimeConfig::paper_scaled(),
            policy: SnapshotPolicy::default(),
            analyzer: AnalyzerConfig::default(),
            faults: FaultConfig::default(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// A short configuration for tests.
    pub fn short() -> Self {
        ProfilePhaseConfig {
            duration: SimDuration::from_secs(90),
            ..ProfilePhaseConfig::paper()
        }
    }
}

/// Output of [`profile_workload`]: the analysis plus profiling-phase
/// bookkeeping for Table 1 and Figures 3–4.
#[derive(Debug)]
pub struct ProfilePhaseResult {
    /// The analysis (profile, lifetimes, conflicts).
    pub outcome: AnalysisOutcome,
    /// Allocation sites the Recorder instrumented at load time.
    pub recorder_sites: u64,
    /// Allocations recorded.
    pub recorded_allocations: u64,
    /// The snapshot series (sizes and capture times for Figures 3–4),
    /// including the end-of-run snapshot.
    pub snapshots: SnapshotSeries,
    /// Faults absorbed and recovery actions taken during profiling;
    /// all-zero for a fault-free run.
    pub counters: FaultCounters,
    /// True when the run hit its hard heap limit (`--heap-mb`) and was cut
    /// short by a typed out-of-memory abort. The unwind is clean — the
    /// journal is committed and the partial profile above is still valid
    /// (under-observation only demotes traces, never corrupts them) — but
    /// callers persisting the profile must mark it partial.
    pub oom: bool,
}

/// Runs the POLM2 profiling phase on `workload` (under G1 — profiling needs
/// no pretenuring support) and returns the analysis.
///
/// When [`ProfilePhaseConfig::faults`] is not inert, the session runs under
/// seeded fault injection and recovers per [`ProfilePhaseConfig::recovery`];
/// absorbed faults appear in [`ProfilePhaseResult::counters`].
///
/// # Errors
///
/// Propagates runtime failures, and snapshot loss when the recovery policy
/// demands aborting on it.
pub fn profile_workload(
    workload: &dyn Workload,
    config: &ProfilePhaseConfig,
) -> Result<ProfilePhaseResult, PipelineError> {
    let session = build_profiling_session(config);
    drive_profiling_session(session, workload, config)
}

pub(crate) fn build_profiling_session(config: &ProfilePhaseConfig) -> ProfilingSession {
    if config.faults.is_inert() {
        ProfilingSession::new(config.policy)
    } else {
        ProfilingSession::with_faults(config.policy, config.faults)
    }
    .with_recovery(config.recovery)
}

fn drive_profiling_session(
    mut session: ProfilingSession,
    workload: &dyn Workload,
    config: &ProfilePhaseConfig,
) -> Result<ProfilePhaseResult, PipelineError> {
    let mut jvm = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(config.seed))
        .transformer(session.recorder_agent())
        .build(workload.program())?;
    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let op_cost = workload.op_cost();
    let end = SimTime::ZERO + config.duration;
    let mut oom = false;
    while jvm.now() < end {
        if let Err(e) = jvm.invoke(thread, class, method) {
            if matches!(e, RuntimeError::Gc(GcError::OutOfMemory { .. })) {
                // The hard heap limit held even through the collector's
                // emergency full collection: stop issuing operations and
                // unwind cleanly. Everything recorded so far is kept — the
                // journal still commits and the partial profile is flushed.
                oom = true;
                break;
            }
            return Err(e.into());
        }
        jvm.advance_mutator(op_cost);
        session.after_op(&mut jvm)?;
    }
    let recorder_sites = session.instrumented_sites();
    let recorded_allocations = session.recorded_allocations();
    session.absorb_runtime_health(&jvm, oom as u64);
    let report = session.finish(&mut jvm, &config.analyzer)?;
    Ok(ProfilePhaseResult {
        outcome: report.outcome,
        recorder_sites,
        recorded_allocations,
        snapshots: report.snapshots,
        counters: report.counters,
        oom,
    })
}

/// Runs the profiling phase like [`profile_workload`], streaming the session
/// into a durable journal in `journal_dir` as it goes: trace definitions,
/// allocation batches, snapshot deltas, and (at clean shutdown) a commit
/// record. A run killed at any point leaves a journal whose valid prefix
/// [`resume_profile`] turns back into the exact profile an uninterrupted run
/// would have produced.
///
/// When [`ProfilePhaseConfig::faults`] carries disk-fault rates, the journal
/// writes go through [`FaultyMedia`] over the same seeded injector, so
/// chaos runs exercise torn writes, bit flips, and transient I/O errors
/// end to end. Journaling is best-effort past creation: I/O faults degrade
/// the journal (retry, then go dead without a commit) but never fail the
/// session.
///
/// # Errors
///
/// Everything [`profile_workload`] returns, plus [`PipelineError::Journal`]
/// when the journal cannot even be created (directory or header write).
pub fn profile_workload_journaled(
    workload: &dyn Workload,
    config: &ProfilePhaseConfig,
    journal_dir: &Path,
) -> Result<ProfilePhaseResult, PipelineError> {
    let mut session = build_profiling_session(config);
    attach_session_journal(&mut session, workload.name(), config, journal_dir)?;
    drive_profiling_session(session, workload, config)
}

/// Creates a clean journal in `journal_dir` (through [`FaultyMedia`] when
/// the session injects disk faults) and attaches it to `session`. Shared by
/// [`profile_workload_journaled`] and the fleet supervisor's per-tenant
/// runs.
pub(crate) fn attach_session_journal(
    session: &mut ProfilingSession,
    workload_name: &str,
    config: &ProfilePhaseConfig,
    journal_dir: &Path,
) -> Result<(), PipelineError> {
    let media: Box<dyn JournalMedia> = match session.fault_injector() {
        Some(injector) => Box::new(FaultyMedia::new(Box::new(FsMedia), injector)),
        None => Box::new(FsMedia),
    };
    let writer = JournalWriter::create_clean(media, journal_dir, DEFAULT_SEGMENT_BYTES)?;
    let meta = SessionMeta {
        workload: workload_name.to_string(),
        seed: config.seed,
        duration: config.duration,
        every_n_cycles: config.policy.every_n_cycles,
    };
    // Nothing to charge the header write to: the simulated clock has not
    // started (the JVM does not exist yet).
    let journal =
        SessionJournal::create(writer, &meta, JournalRetryPolicy::default(), &mut |_| {})?;
    session.attach_journal(journal);
    Ok(())
}

/// How [`resume_profile`] finalized a journaled session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeMode {
    /// The journal ended in a validated commit: the profile was finalized
    /// purely from the replayed records and snapshots — no re-execution.
    Replayed,
    /// The journal was a torn prefix (crash) or inconsistent: the session
    /// was re-executed deterministically from the journaled header's
    /// workload/seed/duration, writing a fresh journal into the same
    /// directory.
    ReExecuted,
}

/// Output of [`resume_profile`]: the profiling result plus how it was
/// obtained and what the crashed journal looked like.
#[derive(Debug)]
pub struct ResumedProfile {
    /// The profiling-phase result — bit-identical to an uninterrupted run's.
    pub result: ProfilePhaseResult,
    /// Replayed from a committed journal, or re-executed.
    pub mode: ResumeMode,
    /// The fsck findings for the journal as found (pre-resume).
    pub report: FsckReport,
}

/// Resumes a journaled profiling run after a crash (or completes one that
/// already committed).
///
/// Recovery reads the journal's valid prefix (every CRC-verified frame up to
/// the first torn tail, checksum mismatch, or segment gap) and replays it:
///
/// * **committed** — the journal is proven complete (totals cross-check), so
///   the profile is finalized from the replayed state alone;
/// * **torn or inconsistent** — the journaled session header names the
///   workload, seed, and duration, so the session is re-executed
///   deterministically; the simulation guarantees the rerun is bit-identical
///   to what the crashed run would have produced.
///
/// Either way the caller gets the same [`ProfilePhaseResult`] an
/// uninterrupted [`profile_workload_journaled`] run yields, with the
/// crash's cost recorded in the `journal-frames-truncated` /
/// `journal-segments-missing` counters.
///
/// # Errors
///
/// [`PipelineError::Journal`] when the journal belongs to a different
/// workload than `workload` (a committed journal is never silently
/// re-executed under the wrong name), plus everything
/// [`profile_workload_journaled`] returns on the re-execution path.
pub fn resume_profile(
    workload: &dyn Workload,
    config: &ProfilePhaseConfig,
    journal_dir: &Path,
) -> Result<ResumedProfile, PipelineError> {
    let mut media = FsMedia;
    let recovered = recover(&mut media, journal_dir, KIND_COMMIT)?;
    let report = recovered.report;
    match replay(&recovered.frames) {
        Ok(replayed) if replayed.committed() => {
            let meta = replayed.meta.clone().ok_or_else(|| {
                PipelineError::Journal(JournalError::Replay {
                    frame: 0,
                    reason: "committed journal lacks a session header".into(),
                })
            })?;
            check_workload(&meta, workload)?;
            finalize_replayed(workload, config, replayed, report)
        }
        Ok(replayed) => {
            // A valid but uncommitted prefix: the run crashed. Re-execute it
            // exactly as the header describes.
            let mut rerun = *config;
            if let Some(meta) = &replayed.meta {
                check_workload(meta, workload)?;
                rerun.seed = meta.seed;
                rerun.duration = meta.duration;
                rerun.policy = SnapshotPolicy {
                    every_n_cycles: meta.every_n_cycles,
                };
            }
            reexecute(workload, &rerun, journal_dir, report)
        }
        // CRC-valid but not a faithful session prefix (foreign or mangled
        // journal): nothing salvageable, re-execute from the caller's config.
        Err(_) => reexecute(workload, config, journal_dir, report),
    }
}

fn check_workload(meta: &SessionMeta, workload: &dyn Workload) -> Result<(), PipelineError> {
    if meta.workload != workload.name() {
        return Err(PipelineError::Journal(JournalError::Replay {
            frame: 0,
            reason: format!(
                "journal belongs to workload {:?}, not {:?}",
                meta.workload,
                workload.name()
            ),
        }));
    }
    Ok(())
}

/// Finalizes a committed journal without re-running the workload: the
/// Analyzer resolves interned frame symbols against the loaded program, so
/// rebuild the same load-time view the profiling JVM had (same program,
/// same Recorder instrumentation pass) and analyze the replayed state.
fn finalize_replayed(
    workload: &dyn Workload,
    config: &ProfilePhaseConfig,
    replayed: ReplayedSession,
    report: FsckReport,
) -> Result<ResumedProfile, PipelineError> {
    let seed = replayed.meta.as_ref().map_or(config.seed, |m| m.seed);
    let recorder = Recorder::new();
    let jvm = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(seed))
        .transformer(recorder.agent())
        .build(workload.program())?;
    let recorder_sites = recorder.instrumented_sites();
    let outcome = Analyzer::new(config.analyzer).analyze(
        &replayed.records,
        &replayed.snapshots,
        jvm.program(),
    );
    let Some(commit) = replayed.commit else {
        return Err(PipelineError::Internal(
            "finalize_replayed called on an uncommitted session".into(),
        ));
    };
    // Mirror `ProfilingSession::finish`: the committed ledger predates the
    // analysis, so the Analyzer's demotions are added here.
    let mut counters = commit.counters;
    counters.traces_demoted += outcome.demoted_traces;
    Ok(ResumedProfile {
        result: ProfilePhaseResult {
            outcome,
            recorder_sites,
            recorded_allocations: replayed.records.total_records(),
            snapshots: replayed.snapshots,
            // The commit ledger carries the OOM verdict (absorbed before the
            // commit frame), so replay reproduces it.
            oom: counters.heap_oom_aborts > 0,
            counters,
        },
        mode: ResumeMode::Replayed,
        report,
    })
}

fn reexecute(
    workload: &dyn Workload,
    config: &ProfilePhaseConfig,
    journal_dir: &Path,
    report: FsckReport,
) -> Result<ResumedProfile, PipelineError> {
    let mut result = profile_workload_journaled(workload, config, journal_dir)?;
    // The crash's cost shows up in the ledger: one truncated frame per
    // defective segment, plus the segments the crash made unreachable.
    result.counters.journal_frames_truncated += report.defective_segments() as u64;
    result.counters.journal_segments_missing += report.missing_segments.len() as u64;
    Ok(ResumedProfile {
        result,
        mode: ResumeMode::ReExecuted,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cassandra::{CassandraConfig, CassandraWorkload};
    use crate::OpMix;

    #[test]
    fn run_result_latency_includes_pauses() {
        let workload = CassandraWorkload::new(
            "cassandra-latency-test",
            CassandraConfig::small(OpMix::WRITE_INTENSIVE),
        );
        let config = RunConfig {
            duration: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(5),
            runtime: polm2_runtime::RuntimeConfig::small(),
            ..RunConfig::paper()
        };
        let result = run_workload(&workload, &CollectorSetup::G1, &config).expect("run");
        assert_eq!(result.op_latency.len() as u64, result.measured_ops);
        // The worst operation latency is at least the worst pause: some
        // operation absorbed it.
        let worst_pause = result.pause_histogram().max().unwrap_or_default();
        let worst_latency = result.op_latency.max().expect("ops ran");
        assert!(
            worst_latency >= worst_pause,
            "an operation must have absorbed the worst pause: {worst_latency} < {worst_pause}"
        );
    }

    #[test]
    fn short_and_paper_configs_are_ordered() {
        assert!(RunConfig::short().duration < RunConfig::paper().duration);
        assert!(ProfilePhaseConfig::short().duration < ProfilePhaseConfig::paper().duration);
    }
}
