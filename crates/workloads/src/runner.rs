//! The closed-loop workload driver: runs a workload under a collector setup
//! and gathers every metric the paper's figures need.

use polm2_core::{
    AnalysisOutcome, AnalyzerConfig, FaultConfig, PipelineError, ProductionSetup, ProfilingSession,
    RecoveryPolicy, SnapshotPolicy,
};
use polm2_gc::{C4Collector, GcLog, Ng2cCollector};
use polm2_metrics::{
    FaultCounters, MemoryTracker, PauseHistogram, SimDuration, SimTime, ThroughputTracker,
};
use polm2_runtime::{Jvm, RuntimeConfig};
use polm2_snapshot::SnapshotSeries;

use crate::workload::{CollectorSetup, Workload};

/// Parameters of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Total simulated run length (paper: 30 minutes).
    pub duration: SimDuration,
    /// Initial span excluded from all metrics (paper: 5 minutes).
    pub warmup: SimDuration,
    /// Workload RNG seed.
    pub seed: u64,
    /// Runtime (heap + GC) configuration.
    pub runtime: RuntimeConfig,
}

impl RunConfig {
    /// The paper's measurement setup: 30 simulated minutes, first 5 ignored.
    pub fn paper() -> Self {
        RunConfig {
            duration: SimDuration::from_secs(30 * 60),
            warmup: SimDuration::from_secs(5 * 60),
            seed: 42,
            runtime: RuntimeConfig::paper_scaled(),
        }
    }

    /// A short configuration for tests (2 simulated minutes, 20 s warm-up).
    pub fn short() -> Self {
        RunConfig {
            duration: SimDuration::from_secs(120),
            warmup: SimDuration::from_secs(20),
            seed: 42,
            runtime: RuntimeConfig::paper_scaled(),
        }
    }
}

/// Everything measured during one run.
#[derive(Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: &'static str,
    /// Collector label ("G1", "NG2C", "POLM2", "C4").
    pub collector: &'static str,
    /// The full GC event log.
    pub gc_log: GcLog,
    /// Completed operations over time.
    pub throughput: ThroughputTracker,
    /// Per-operation latency (simulated time from issue to completion,
    /// stop-the-world pauses included) over the measured window — the
    /// request-latency view behind the paper's SLA motivation (§1).
    pub op_latency: PauseHistogram,
    /// Committed-memory samples (one per simulated second).
    pub memory: MemoryTracker,
    /// Operations completed after warm-up.
    pub measured_ops: u64,
    /// The warm-up cutoff used.
    pub warmup_end: SimTime,
    /// Total simulated run length.
    pub duration: SimDuration,
    /// Faults absorbed while setting up the run (stale profile entries the
    /// Instrumenter skipped); all-zero for profile-free setups.
    pub fault_counters: FaultCounters,
}

impl RunResult {
    /// Pause histogram over the measured window (warm-up excluded), as
    /// Figure 5 plots it.
    pub fn pause_histogram(&self) -> PauseHistogram {
        self.gc_log.pause_histogram(self.warmup_end)
    }

    /// Pause counts per duration interval (Figure 6).
    pub fn interval_histogram(&self) -> polm2_metrics::IntervalHistogram {
        self.gc_log.interval_histogram(self.warmup_end)
    }

    /// Mean throughput over the measured window, operations/second
    /// (Figure 7).
    pub fn mean_throughput(&self) -> f64 {
        self.throughput
            .mean_ops_per_sec(self.warmup_end, SimTime::ZERO + self.duration)
    }

    /// Maximum committed memory over the measured window (Figure 9).
    pub fn max_memory_bytes(&self) -> u64 {
        self.memory.max_used_bytes_since(self.warmup_end)
    }
}

/// Runs `workload` under `setup` for `config`.
///
/// The driver is closed-loop: it issues the next operation as soon as the
/// previous one (plus its think time) completes, so stop-the-world pauses
/// and barrier taxes translate directly into throughput loss, as in the
/// paper's saturated runs.
///
/// # Errors
///
/// Propagates runtime failures (the heap is sized so none occur with the
/// paper configurations). Stale profile entries are *not* errors: the
/// Instrumenter skips them and they are reported via
/// [`RunResult::fault_counters`].
pub fn run_workload(
    workload: &dyn Workload,
    setup: &CollectorSetup,
    config: &RunConfig,
) -> Result<RunResult, PipelineError> {
    let program = workload.program();
    let mut builder = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(config.seed));
    let production: Option<ProductionSetup> = match setup {
        CollectorSetup::G1 => None,
        CollectorSetup::C4 => {
            builder = builder.collector(Box::new(C4Collector::new(config.runtime.gc)));
            None
        }
        CollectorSetup::Ng2cManual => {
            builder = builder.collector(Box::new(Ng2cCollector::new(config.runtime.gc)));
            Some(ProductionSetup::checked(
                &workload.manual_profile(),
                &program,
            ))
        }
        CollectorSetup::Polm2(profile) => {
            builder = builder.collector(Box::new(Ng2cCollector::new(config.runtime.gc)));
            Some(ProductionSetup::checked(profile, &program))
        }
    };
    if let Some(setup) = &production {
        builder = builder.transformer(setup.agent());
    }
    let fault_counters = production
        .as_ref()
        .map(ProductionSetup::fault_counters)
        .unwrap_or_default();
    let mut jvm = builder.build(program)?;
    if let Some(setup) = &production {
        setup.prepare_generations(&mut jvm);
    }

    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let op_cost = workload.op_cost();
    let end = SimTime::ZERO + config.duration;
    let warmup_end = SimTime::ZERO + config.warmup;

    let mut throughput = ThroughputTracker::new();
    let mut memory = MemoryTracker::new();
    let mut op_latency = PauseHistogram::new();
    let mut measured_ops: u64 = 0;
    let mut last_sample_sec = u64::MAX;

    while jvm.now() < end {
        let issued = jvm.now();
        jvm.invoke(thread, class, method)?;
        jvm.advance_mutator(op_cost);
        let now = jvm.now();
        throughput.record_ops(now, 1);
        if now >= warmup_end {
            measured_ops += 1;
            op_latency.record(now - issued);
        }
        let sec = now.as_secs();
        if sec != last_sample_sec {
            last_sample_sec = sec;
            memory.sample(now, jvm.reported_committed_bytes());
        }
    }

    Ok(RunResult {
        workload: workload.name(),
        collector: setup.label(),
        gc_log: jvm.gc_log().clone(),
        throughput,
        memory,
        op_latency,
        measured_ops,
        warmup_end,
        duration: config.duration,
        fault_counters,
    })
}

/// Parameters of the profiling phase (paper §5.3: five minutes of profiling
/// plus an ignored first minute — six simulated minutes total).
#[derive(Debug, Clone, Copy)]
pub struct ProfilePhaseConfig {
    /// Length of the profiling run.
    pub duration: SimDuration,
    /// Workload RNG seed (distinct from production runs: profiles transfer
    /// across runs of the same workload, paper §3.5).
    pub seed: u64,
    /// Runtime configuration.
    pub runtime: RuntimeConfig,
    /// Snapshot cadence.
    pub policy: SnapshotPolicy,
    /// Analyzer tuning.
    pub analyzer: AnalyzerConfig,
    /// Seeded fault injection (chaos testing); inert by default.
    pub faults: FaultConfig,
    /// Snapshot-failure recovery policy.
    pub recovery: RecoveryPolicy,
}

impl ProfilePhaseConfig {
    /// The paper's profiling setup: six simulated minutes, snapshot every
    /// GC cycle.
    pub fn paper() -> Self {
        ProfilePhaseConfig {
            duration: SimDuration::from_secs(6 * 60),
            seed: 7,
            runtime: RuntimeConfig::paper_scaled(),
            policy: SnapshotPolicy::default(),
            analyzer: AnalyzerConfig::default(),
            faults: FaultConfig::default(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// A short configuration for tests.
    pub fn short() -> Self {
        ProfilePhaseConfig {
            duration: SimDuration::from_secs(90),
            ..ProfilePhaseConfig::paper()
        }
    }
}

/// Output of [`profile_workload`]: the analysis plus profiling-phase
/// bookkeeping for Table 1 and Figures 3–4.
#[derive(Debug)]
pub struct ProfilePhaseResult {
    /// The analysis (profile, lifetimes, conflicts).
    pub outcome: AnalysisOutcome,
    /// Allocation sites the Recorder instrumented at load time.
    pub recorder_sites: u64,
    /// Allocations recorded.
    pub recorded_allocations: u64,
    /// The snapshot series (sizes and capture times for Figures 3–4),
    /// including the end-of-run snapshot.
    pub snapshots: SnapshotSeries,
    /// Faults absorbed and recovery actions taken during profiling;
    /// all-zero for a fault-free run.
    pub counters: FaultCounters,
}

/// Runs the POLM2 profiling phase on `workload` (under G1 — profiling needs
/// no pretenuring support) and returns the analysis.
///
/// When [`ProfilePhaseConfig::faults`] is not inert, the session runs under
/// seeded fault injection and recovers per [`ProfilePhaseConfig::recovery`];
/// absorbed faults appear in [`ProfilePhaseResult::counters`].
///
/// # Errors
///
/// Propagates runtime failures, and snapshot loss when the recovery policy
/// demands aborting on it.
pub fn profile_workload(
    workload: &dyn Workload,
    config: &ProfilePhaseConfig,
) -> Result<ProfilePhaseResult, PipelineError> {
    let mut session = if config.faults.is_inert() {
        ProfilingSession::new(config.policy)
    } else {
        ProfilingSession::with_faults(config.policy, config.faults)
    }
    .with_recovery(config.recovery);
    let mut jvm = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(config.seed))
        .transformer(session.recorder_agent())
        .build(workload.program())?;
    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let op_cost = workload.op_cost();
    let end = SimTime::ZERO + config.duration;
    while jvm.now() < end {
        jvm.invoke(thread, class, method)?;
        jvm.advance_mutator(op_cost);
        session.after_op(&mut jvm)?;
    }
    let recorder_sites = session.instrumented_sites();
    let recorded_allocations = session.recorded_allocations();
    let report = session.finish(&mut jvm, &config.analyzer)?;
    Ok(ProfilePhaseResult {
        outcome: report.outcome,
        recorder_sites,
        recorded_allocations,
        snapshots: report.snapshots,
        counters: report.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cassandra::{CassandraConfig, CassandraWorkload};
    use crate::OpMix;

    #[test]
    fn run_result_latency_includes_pauses() {
        let workload = CassandraWorkload::new(
            "cassandra-latency-test",
            CassandraConfig::small(OpMix::WRITE_INTENSIVE),
        );
        let config = RunConfig {
            duration: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(5),
            runtime: polm2_runtime::RuntimeConfig::small(),
            ..RunConfig::paper()
        };
        let result = run_workload(&workload, &CollectorSetup::G1, &config).expect("run");
        assert_eq!(result.op_latency.len() as u64, result.measured_ops);
        // The worst operation latency is at least the worst pause: some
        // operation absorbed it.
        let worst_pause = result.pause_histogram().max().unwrap_or_default();
        let worst_latency = result.op_latency.max().expect("ops ran");
        assert!(
            worst_latency >= worst_pause,
            "an operation must have absorbed the worst pause: {worst_latency} < {worst_pause}"
        );
    }

    #[test]
    fn short_and_paper_configs_are_ordered() {
        assert!(RunConfig::short().duration < RunConfig::paper().duration);
        assert!(ProfilePhaseConfig::short().duration < ProfilePhaseConfig::paper().duration);
    }
}
