//! The [`Workload`] abstraction and collector setups.

use std::any::Any;

use polm2_core::AllocationProfile;
use polm2_metrics::SimDuration;
use polm2_runtime::{HookRegistry, Program};

/// One evaluation workload: a program, its hooks and state, and the paper's
/// comparison metadata.
pub trait Workload {
    /// Workload name as the paper labels it ("cassandra-wi", "lucene", ...).
    fn name(&self) -> &'static str;

    /// The application program (built fresh per run; agents rewrite it at
    /// load time).
    fn program(&self) -> Program;

    /// The native hooks implementing the workload's data-structure
    /// semantics.
    fn hooks(&self) -> HookRegistry;

    /// Fresh workload state for a run.
    fn new_state(&self, seed: u64) -> Box<dyn Any>;

    /// The per-operation entry point `(class, method)` the driver invokes.
    fn entry(&self) -> (&'static str, &'static str);

    /// Mutator think time per operation beyond interpretation — sets the
    /// offered load in the closed-loop driver.
    fn op_cost(&self) -> SimDuration;

    /// The manual NG2C annotations an expert developer wrote (the paper's
    /// comparison baseline). For Cassandra-RI and Lucene this includes the
    /// misplaced annotations §5.4 describes.
    fn manual_profile(&self) -> AllocationProfile;

    /// Allocation sites a developer would consider instrumentation
    /// candidates (Table 1's denominator).
    fn candidate_sites(&self) -> u32;
}

/// Which memory-management setup a run uses (the paper's four systems).
#[derive(Debug, Clone)]
pub enum CollectorSetup {
    /// OpenJDK's default G1, no lifetime information.
    G1,
    /// NG2C with the workload's manual annotations.
    Ng2cManual,
    /// NG2C driven by a POLM2-generated profile.
    Polm2(AllocationProfile),
    /// Azul's C4 (throughput/memory comparisons only).
    C4,
}

impl CollectorSetup {
    /// Label used in tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            CollectorSetup::G1 => "G1",
            CollectorSetup::Ng2cManual => "NG2C",
            CollectorSetup::Polm2(_) => "POLM2",
            CollectorSetup::C4 => "C4",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(CollectorSetup::G1.label(), "G1");
        assert_eq!(CollectorSetup::Ng2cManual.label(), "NG2C");
        assert_eq!(
            CollectorSetup::Polm2(AllocationProfile::new()).label(),
            "POLM2"
        );
        assert_eq!(CollectorSetup::C4.label(), "C4");
    }
}
