//! A Lucene-style in-memory text index (paper §5.2.2).
//!
//! The paper indexes a Wikipedia dump and drives 20 000 document updates
//! plus 5 000 searches per second — a write-intensive worst case. The memory
//! behaviour that matters:
//!
//! * **Postings** — each document update allocates a posting (plus payload
//!   block) per term; the *previous* version's postings die when a document
//!   is re-indexed. With updates spread over the corpus, posting lifetime is
//!   the corpus-turnover period: middle-lived, the bulk of the heap churn.
//! * **Term dictionary** — entries are allocated on first occurrence and
//!   never die (immortal).
//! * **Segment metadata** — sealed every N updates; norms tables and index
//!   blocks attached to segments live until old segments are retired.
//! * **Search scratch** — queries loop over the top terms allocating
//!   short-lived buffers (the paper's top-500-words read loop).
//!
//! `Buffers.grow` (posting payloads / segment index blocks / search scratch)
//! and `Pool.get` (update scratch / segment norms) are shared helpers
//! reached through paths with different lifetimes — Lucene's two Table 1
//! conflicts.

use std::any::Any;
use std::collections::{HashSet, VecDeque};

use polm2_core::{AllocationProfile, PretenuredSite};
use polm2_heap::{GenId, ObjectId};
use polm2_metrics::SimDuration;
use polm2_runtime::{
    ClassDef, CodeLoc, CountSpec, HookAction, HookRegistry, Instr, MethodDef, Program, SizeSpec,
};
use rand::rngs::StdRng;
use rand::Rng;

use crate::workload::Workload;
use crate::ycsb::{seeded_rng, ZipfGenerator};

/// Tunables for the Lucene simulation.
#[derive(Debug, Clone)]
pub struct LuceneConfig {
    /// Document updates per 1000 operations (paper: 20k of 25k ops/s).
    pub update_permille: u16,
    /// Corpus size in documents.
    pub doc_space: u64,
    /// Distinct terms.
    pub term_space: u64,
    /// Terms (re)indexed per document update.
    pub terms_per_doc: u32,
    /// Terms scanned per search (the top-words loop).
    pub terms_per_search: u32,
    /// Hot-term window searched (paper: top 500 words).
    pub search_term_window: u64,
    /// Seal a segment every this many updates.
    pub updates_per_segment: u64,
    /// Segments retained.
    pub segment_cap: usize,
    /// Mutator think time per operation.
    pub op_cost: SimDuration,
}

impl LuceneConfig {
    /// The paper-scaled configuration.
    pub fn paper() -> Self {
        LuceneConfig {
            update_permille: 800,
            doc_space: 25_000,
            term_space: 40_000,
            terms_per_doc: 6,
            terms_per_search: 24,
            search_term_window: 500,
            updates_per_segment: 4_096,
            segment_cap: 48,
            op_cost: SimDuration::from_micros(280),
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        LuceneConfig {
            doc_space: 400,
            term_space: 800,
            updates_per_segment: 128,
            segment_cap: 8,
            ..LuceneConfig::paper()
        }
    }
}

/// Runtime state driving the hooks.
#[derive(Debug)]
pub struct LuceneState {
    config: LuceneConfig,
    rng: StdRng,
    term_zipf: ZipfGenerator,
    current_doc: u64,
    current_term: u64,
    terms_seen: HashSet<u64>,
    /// Holder object of the document currently being indexed.
    current_holder: Option<ObjectId>,
    pending_payload: Option<ObjectId>,
    pending_segment: Option<ObjectId>,
    segments: VecDeque<ObjectId>,
    updates: u64,
    /// Updates since the last segment seal.
    updates_in_segment: u64,
    /// Segments sealed (tests, Table 1 commentary).
    pub segments_sealed: u64,
    /// Searches served (tests).
    pub searches: u64,
}

impl LuceneState {
    /// Creates fresh state.
    pub fn new(config: LuceneConfig, seed: u64) -> Self {
        let term_zipf = ZipfGenerator::new(config.term_space, 0.99);
        LuceneState {
            config,
            rng: seeded_rng(seed),
            term_zipf,
            current_doc: 0,
            current_term: 0,
            terms_seen: HashSet::new(),
            current_holder: None,
            pending_payload: None,
            pending_segment: None,
            segments: VecDeque::new(),
            updates: 0,
            updates_in_segment: 0,
            segments_sealed: 0,
            searches: 0,
        }
    }
}

/// The Lucene workload.
#[derive(Debug, Clone)]
pub struct LuceneWorkload {
    config: LuceneConfig,
}

impl LuceneWorkload {
    /// The paper's Lucene workload.
    pub fn paper() -> Self {
        LuceneWorkload {
            config: LuceneConfig::paper(),
        }
    }

    /// With a custom configuration.
    pub fn new(config: LuceneConfig) -> Self {
        LuceneWorkload { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LuceneConfig {
        &self.config
    }
}

/// Builds the Lucene IR program.
pub fn program() -> Program {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("Lucene").with_method(MethodDef::new("handleOp").push(Instr::Branch {
            cond: "is_update".into(),
            then_block: vec![Instr::call("IndexWriter", "updateDocument", 2)],
            else_block: vec![Instr::call("Searcher", "search", 3)],
            line: 1,
        })),
    );
    p.add_class(
        ClassDef::new("IndexWriter").with_method(
            MethodDef::new("updateDocument")
                .push(Instr::call("Pool", "get", 10))
                .push(Instr::alloc("DocVersion", SizeSpec::Fixed(96), 11))
                .push(Instr::native("install_doc", 12))
                .push(Instr::Repeat {
                    count: CountSpec::Hook("terms_per_doc".into()),
                    body: vec![
                        Instr::call("TermDict", "lookup", 14),
                        Instr::call("Postings", "add", 15),
                    ],
                    line: 13,
                })
                .push(Instr::Branch {
                    cond: "segment_boundary".into(),
                    then_block: vec![Instr::call("Segments", "seal", 17)],
                    else_block: vec![],
                    line: 16,
                })
                .push(Instr::native("finish_update", 18)),
        ),
    );
    p.add_class(
        ClassDef::new("TermDict").with_method(MethodDef::new("lookup").push(Instr::Branch {
            cond: "term_is_new".into(),
            then_block: vec![
                Instr::alloc("TermEntry", SizeSpec::Fixed(96), 21),
                Instr::native("register_term", 22),
            ],
            else_block: vec![],
            line: 20,
        })),
    );
    p.add_class(
        ClassDef::new("Postings").with_method(
            MethodDef::new("add")
                .push(Instr::call("Buffers", "grow", 30))
                .push(Instr::native("stash_payload", 31))
                .push(Instr::alloc("Posting", SizeSpec::Fixed(64), 32))
                .push(Instr::native("link_posting", 33)),
        ),
    );
    p.add_class(
        ClassDef::new("Buffers").with_method(MethodDef::new("grow").push(Instr::alloc(
            "ByteBlock",
            SizeSpec::Hook("block_size".into()),
            40,
        ))),
    );
    p.add_class(
        ClassDef::new("Segments").with_method(
            MethodDef::new("seal")
                .push(Instr::alloc("SegmentMeta", SizeSpec::Fixed(512), 50))
                .push(Instr::native("register_segment", 51))
                .push(Instr::call("Pool", "get", 52))
                .push(Instr::native("attach_norms", 53))
                .push(Instr::call("Buffers", "grow", 54))
                .push(Instr::native("attach_index_block", 55)),
        ),
    );
    p.add_class(
        ClassDef::new("Pool").with_method(MethodDef::new("get").push(Instr::alloc(
            "PooledBuf",
            SizeSpec::Hook("pool_size".into()),
            60,
        ))),
    );
    p.add_class(
        ClassDef::new("Searcher").with_method(
            MethodDef::new("search")
                .push(Instr::alloc("Query", SizeSpec::Fixed(64), 70))
                .push(Instr::Repeat {
                    count: CountSpec::Hook("terms_per_search".into()),
                    body: vec![Instr::call("Buffers", "grow", 72)],
                    line: 71,
                })
                .push(Instr::alloc("TopDocs", SizeSpec::Fixed(256), 74))
                .push(Instr::native("finish_search", 75)),
        ),
    );
    p
}

/// Builds the Lucene hooks.
pub fn hooks() -> HookRegistry {
    let mut h = HookRegistry::new();

    h.register_cond("is_update", |ctx| {
        let s = ctx.state::<LuceneState>();
        let update = s.rng.gen_range(0..1000) < u32::from(s.config.update_permille);
        if update {
            // Updates sweep the corpus round-robin, so posting lifetime is
            // exactly the corpus turnover period and postings die in
            // allocation order — Lucene rewriting documents dump-order.
            s.current_doc = s.updates % s.config.doc_space;
        }
        update
    });
    h.register_cond("term_is_new", |ctx| {
        let s = ctx.state::<LuceneState>();
        s.current_term = s.term_zipf.next(&mut s.rng);
        !s.terms_seen.contains(&s.current_term)
    });
    h.register_cond("segment_boundary", |ctx| {
        let s = ctx.state::<LuceneState>();
        s.updates_in_segment >= s.config.updates_per_segment
    });

    h.register_count("terms_per_doc", |ctx| {
        ctx.state::<LuceneState>().config.terms_per_doc
    });
    h.register_count("terms_per_search", |ctx| {
        ctx.state::<LuceneState>().config.terms_per_search
    });

    h.register_size("block_size", |ctx| {
        let s = ctx.state::<LuceneState>();
        128 + s.rng.gen_range(0..128)
    });
    h.register_size("pool_size", |ctx| {
        let s = ctx.state::<LuceneState>();
        256 + s.rng.gen_range(0..512)
    });

    h.register_action("install_doc", |ctx| {
        let holder = ctx.acc.expect("DocVersion allocated");
        let slot = ctx.heap.roots_mut().create_slot("lucene.docs");
        let doc = ctx.state::<LuceneState>().current_doc;
        // Replacing the keyed root kills the previous version's postings.
        ctx.heap.roots_mut().set_keyed(slot, doc, holder);
        ctx.state::<LuceneState>().current_holder = Some(holder);
        HookAction::default()
    });
    h.register_action("register_term", |ctx| {
        let entry = ctx.acc.expect("TermEntry allocated");
        let slot = ctx.heap.roots_mut().create_slot("lucene.terms");
        ctx.heap.roots_mut().push(slot, entry);
        let s = ctx.state::<LuceneState>();
        let term = s.current_term;
        s.terms_seen.insert(term);
        HookAction::default()
    });
    h.register_action("stash_payload", |ctx| {
        let payload = ctx.acc.expect("ByteBlock allocated");
        ctx.state::<LuceneState>().pending_payload = Some(payload);
        HookAction::default()
    });
    h.register_action("link_posting", |ctx| {
        let posting = ctx.acc.expect("Posting allocated");
        let (holder, payload) = {
            let s = ctx.state::<LuceneState>();
            (
                s.current_holder.expect("install_doc ran"),
                s.pending_payload.take().expect("payload stashed"),
            )
        };
        ctx.heap
            .add_ref(posting, payload)
            .expect("posting and payload are live");
        ctx.heap
            .add_ref(holder, posting)
            .expect("holder and posting are live");
        HookAction::default()
    });
    h.register_action("finish_update", |ctx| {
        let s = ctx.state::<LuceneState>();
        s.updates += 1;
        s.updates_in_segment += 1;
        HookAction {
            cost: Some(SimDuration::from_micros(6)),
        }
    });
    h.register_action("register_segment", |ctx| {
        let segment = ctx.acc.expect("SegmentMeta allocated");
        let slot = ctx.heap.roots_mut().create_slot("lucene.segments");
        ctx.heap.roots_mut().push(slot, segment);
        let retired = {
            let s = ctx.state::<LuceneState>();
            s.pending_segment = Some(segment);
            s.updates_in_segment = 0;
            s.segments_sealed += 1;
            s.segments.push_back(segment);
            if s.segments.len() > s.config.segment_cap {
                s.segments.pop_front()
            } else {
                None
            }
        };
        if let Some(old) = retired {
            ctx.heap.roots_mut().remove(slot, old);
        }
        HookAction::default()
    });
    h.register_action("attach_norms", |ctx| {
        let norms = ctx.acc.expect("PooledBuf allocated");
        let segment = ctx
            .state::<LuceneState>()
            .pending_segment
            .expect("segment stashed");
        ctx.heap
            .add_ref(segment, norms)
            .expect("segment and norms are live");
        HookAction::default()
    });
    h.register_action("attach_index_block", |ctx| {
        let block = ctx.acc.expect("ByteBlock allocated");
        let segment = ctx
            .state::<LuceneState>()
            .pending_segment
            .take()
            .expect("segment stashed");
        ctx.heap
            .add_ref(segment, block)
            .expect("segment and block are live");
        HookAction::default()
    });
    h.register_action("finish_search", |ctx| {
        ctx.state::<LuceneState>().searches += 1;
        HookAction {
            cost: Some(SimDuration::from_micros(10)),
        }
    });

    h
}

/// Candidate allocation sites (Table 1's denominator for Lucene: 8).
pub mod sites {
    use polm2_runtime::CodeLoc;

    /// All candidate allocation sites.
    pub fn candidates() -> Vec<CodeLoc> {
        vec![
            CodeLoc::new("IndexWriter", "updateDocument", 11), // DocVersion
            CodeLoc::new("TermDict", "lookup", 21),            // TermEntry
            CodeLoc::new("Postings", "add", 32),               // Posting
            CodeLoc::new("Buffers", "grow", 40),               // ByteBlock (conflict)
            CodeLoc::new("Segments", "seal", 50),              // SegmentMeta
            CodeLoc::new("Pool", "get", 60),                   // PooledBuf (conflict)
            CodeLoc::new("Searcher", "search", 70),            // Query
            CodeLoc::new("Searcher", "search", 74),            // TopDocs
        ]
    }
}

/// The manual NG2C annotations for Lucene, *with the paper's misplacements*
/// (§5.4): the developer correctly pretenures the term dictionary and
/// segment metadata, but — not realizing the same helpers also serve the
/// search path — annotates the shared `Buffers.grow` and `Pool.get` sites
/// with a site-local old generation. Every search's scratch buffers then
/// land in old space, the "misplaced manual code changes" POLM2 beats.
fn manual_profile() -> AllocationProfile {
    let mut p = AllocationProfile::new();
    let g2 = GenId::new(2);
    for (loc, local) in [
        (CodeLoc::new("TermDict", "lookup", 21), true),
        (CodeLoc::new("Segments", "seal", 50), true),
        (CodeLoc::new("Postings", "add", 32), true),
        // The misplaced annotations: site-local, path-blind.
        (CodeLoc::new("Buffers", "grow", 40), true),
        (CodeLoc::new("Pool", "get", 60), true),
    ] {
        p.add_site(PretenuredSite {
            loc,
            gen: g2,
            local,
        });
    }
    p
}

impl Workload for LuceneWorkload {
    fn name(&self) -> &'static str {
        "lucene"
    }

    fn program(&self) -> Program {
        program()
    }

    fn hooks(&self) -> HookRegistry {
        hooks()
    }

    fn new_state(&self, seed: u64) -> Box<dyn Any> {
        Box::new(LuceneState::new(self.config.clone(), seed))
    }

    fn entry(&self) -> (&'static str, &'static str) {
        ("Lucene", "handleOp")
    }

    fn op_cost(&self) -> SimDuration {
        self.config.op_cost
    }

    fn manual_profile(&self) -> AllocationProfile {
        manual_profile()
    }

    fn candidate_sites(&self) -> u32 {
        sites::candidates().len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_runtime::{Jvm, RuntimeConfig};

    fn boot() -> Jvm {
        let w = LuceneWorkload::new(LuceneConfig::small());
        Jvm::builder(RuntimeConfig::small())
            .hooks(w.hooks())
            .state(w.new_state(3))
            .build(w.program())
            .expect("program loads")
    }

    #[test]
    fn program_has_the_documented_sites() {
        assert_eq!(program().alloc_site_count(), sites::candidates().len());
    }

    #[test]
    fn updates_replace_documents_and_kill_old_postings() {
        let mut jvm = boot();
        let t = jvm.spawn_thread();
        // Drive enough updates to wrap the 400-document corpus ~4 times.
        for _ in 0..2_000 {
            jvm.invoke(t, "Lucene", "handleOp").unwrap();
        }
        jvm.force_collect().unwrap();
        let posting_class = jvm.heap().classes().lookup("Posting").unwrap();
        let live = jvm.heap_mut().mark_live(&[]);
        let live_postings = live
            .iter()
            .filter(|&id| jvm.heap().object(id).map(|o| o.class()) == Some(posting_class))
            .count() as u64;
        let s = jvm.state_mut::<LuceneState>();
        let bound = s.config.doc_space * u64::from(s.config.terms_per_doc);
        assert!(
            live_postings <= bound,
            "only the latest version per document survives: {live_postings} > {bound}"
        );
        assert!(live_postings > 0);
    }

    #[test]
    fn term_dictionary_is_immortal() {
        let mut jvm = boot();
        let t = jvm.spawn_thread();
        for _ in 0..1_000 {
            jvm.invoke(t, "Lucene", "handleOp").unwrap();
        }
        let terms_before = jvm.state_mut::<LuceneState>().terms_seen.len();
        assert!(terms_before > 0);
        jvm.force_collect().unwrap();
        let term_class = jvm.heap().classes().lookup("TermEntry").unwrap();
        let live = jvm.heap_mut().mark_live(&[]);
        let live_terms = live
            .iter()
            .filter(|&id| jvm.heap().object(id).map(|o| o.class()) == Some(term_class))
            .count();
        assert_eq!(live_terms, terms_before, "term entries never die");
    }

    #[test]
    fn segments_seal_and_are_bounded() {
        let mut jvm = boot();
        let t = jvm.spawn_thread();
        for _ in 0..3_000 {
            jvm.invoke(t, "Lucene", "handleOp").unwrap();
        }
        let s = jvm.state_mut::<LuceneState>();
        assert!(
            s.segments_sealed >= 2,
            "segments must seal: {}",
            s.segments_sealed
        );
        assert!(s.segments.len() <= s.config.segment_cap);
        assert!(s.searches > 0, "search path exercised");
        jvm.heap().check_invariants();
    }

    #[test]
    fn manual_profile_is_path_blind() {
        let p = manual_profile();
        // The misplacement: helper sites are local (no call-site wrappers),
        // so search scratch gets pretenured too.
        assert!(
            p.site_at(&CodeLoc::new("Buffers", "grow", 40))
                .unwrap()
                .local
        );
        assert!(p.gen_calls().is_empty());
    }
}
