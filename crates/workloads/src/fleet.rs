//! Supervised multi-tenant profiling fleet with per-tenant fault isolation.
//!
//! [`run_fleet`] runs N tenant profiling sessions concurrently — each tenant
//! a full [`ProfilingSession`](polm2_core::ProfilingSession) with its own
//! Recorder and its own `polm2-journal v1` segment directory — under a
//! supervisor that keeps one tenant's failure from touching any other:
//!
//! * a **watchdog** quarantines a tenant whose runtime stops making
//!   simulated-clock progress ([`WatchdogPolicy`]);
//! * **transient start failures** are retried with exponential backoff
//!   charged to the simulated clock ([`TenantRetryPolicy`]); once the
//!   budget is exhausted the tenant is quarantined, never the run;
//! * a tenant that **dies** (panics) is caught at its thread boundary and
//!   quarantined; its torn journal stays on disk for the degraded merge;
//! * after a clean run the tenant's journal is **fscked**; a corrupt
//!   journal quarantines the tenant even though its runtime finished.
//!
//! Chaos is first-class: a [`ChaosPlan`] injects kills, stalls, journal
//! corruption, and flaky starts per tenant — seeded and deterministic, with
//! each tenant drawing from an independent stream so one tenant's fault
//! never shifts another's. The plan is also the **ground truth** the chaos
//! tests check quarantine decisions against.
//!
//! [`merge_fleet`] then unions the surviving journals into one degraded
//! [`MergedProfile`] (see [`polm2_core::merge`]): quarantined tenants are
//! ledgered, healthy tenants are analyzed — and the merged payload is
//! bit-identical to a fleet that never launched the poisoned tenants.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

use polm2_core::journal::KIND_COMMIT;
use polm2_core::merge::{merge_tenants, recover_tenants, MergedProfile, TenantInput};
use polm2_core::{AnalyzerConfig, PipelineError, Recorder};
use polm2_gc::GcError;
use polm2_heap::{Heap, HeapConfig, HeapError};
use polm2_metrics::{FaultCounters, FleetLedger, SimDuration, SimTime, TenantStats};
use polm2_runtime::{Jvm, Loader, RuntimeError};
use polm2_snapshot::journal::{fsck, SEGMENT_HEADER_LEN};
use polm2_snapshot::FsMedia;

use crate::runner::{attach_session_journal, build_profiling_session, ProfilePhaseConfig};
use crate::workload::Workload;

/// Resolves a workload name to a fresh workload instance. A plain function
/// pointer so tenant threads can call it; tests wrap
/// [`workload_by_name`](crate::registry::workload_by_name) to add their own
/// tiny workloads.
pub type WorkloadResolver = fn(&str) -> Option<Box<dyn Workload>>;

/// One tenant of the fleet: a name, a workload, and its own profiling
/// configuration (duration, seed, snapshot policy, fault injection).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; also the journal subdirectory name.
    pub tenant: String,
    /// Workload name, resolved through the fleet's [`WorkloadResolver`].
    pub workload: String,
    /// The tenant's profiling-phase configuration.
    pub config: ProfilePhaseConfig,
}

/// Sentinel for [`TenantFault::Kill`]: die *after* the journal commit
/// frame is written. The journal looks committed, but the supervisor still
/// quarantines the tenant — a run that did not exit cleanly is never
/// trusted, and the merge must exclude it.
pub const KILL_AFTER_COMMIT: u64 = u64::MAX;

/// A fault the chaos plan injects into one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantFault {
    /// Panic the tenant thread at operation `at_op` (0 = before the first
    /// operation; [`KILL_AFTER_COMMIT`] = after the commit frame).
    Kill {
        /// Operation index at which the tenant dies.
        at_op: u64,
    },
    /// From operation `at_op` on, the tenant's runtime stops advancing the
    /// simulated clock — the watchdog must catch it.
    Stall {
        /// First stalled operation index.
        at_op: u64,
    },
    /// Flip one seeded byte in the tenant's journal after a clean run; the
    /// post-run fsck must detect it.
    CorruptJournal,
    /// The tenant's first `failures` start attempts fail transiently; the
    /// supervisor retries with backoff.
    FlakyStart {
        /// Start attempts that fail before one succeeds.
        failures: u32,
    },
}

/// Per-fleet chaos: what (if anything) to inject into each tenant.
#[derive(Debug, Clone, Default)]
pub enum ChaosPlan {
    /// No injected faults.
    #[default]
    None,
    /// Exactly these faults, by tenant index.
    Scripted(Vec<Option<TenantFault>>),
    /// Seeded faults: tenant *i* draws from its own `splitmix64` stream
    /// derived from `seed` and *i*, suffering a fault with probability
    /// `rate`. Independent streams keep tenants decoupled: rerunning with
    /// the same seed injects the same faults regardless of how the other
    /// tenants behave.
    Seeded {
        /// Chaos seed.
        seed: u64,
        /// Per-tenant fault probability in `[0, 1]`.
        rate: f64,
    },
}

impl ChaosPlan {
    /// The fault (ground truth) injected into tenant `index`.
    pub fn fault_for(&self, index: usize) -> Option<TenantFault> {
        match self {
            ChaosPlan::None => None,
            ChaosPlan::Scripted(faults) => faults.get(index).copied().flatten(),
            ChaosPlan::Seeded { seed, rate } => {
                let mut stream = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let roll = splitmix64(&mut stream) as f64 / u64::MAX as f64;
                if roll >= *rate {
                    return None;
                }
                let kind = splitmix64(&mut stream) % 5;
                let param = splitmix64(&mut stream);
                Some(match kind {
                    0 => TenantFault::Kill { at_op: param % 64 },
                    1 => TenantFault::Kill {
                        at_op: KILL_AFTER_COMMIT,
                    },
                    2 => TenantFault::Stall { at_op: param % 64 },
                    3 => TenantFault::CorruptJournal,
                    _ => TenantFault::FlakyStart {
                        failures: 1 + (param % 3) as u32,
                    },
                })
            }
        }
    }
}

/// Watchdog deadline: how long a tenant may spin without advancing the
/// simulated clock before it is declared stalled.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogPolicy {
    /// Consecutive operations with zero clock progress before quarantine.
    pub max_silent_ops: u64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            max_silent_ops: 4096,
        }
    }
}

/// Retry budget for transient tenant start failures.
#[derive(Debug, Clone, Copy)]
pub struct TenantRetryPolicy {
    /// Retries granted after the first failure (2 ⇒ three attempts total).
    pub max_retries: u32,
    /// Base backoff, doubled per retry and charged to the tenant's
    /// simulated clock.
    pub backoff: SimDuration,
}

impl Default for TenantRetryPolicy {
    fn default() -> Self {
        TenantRetryPolicy {
            max_retries: 2,
            backoff: SimDuration::from_millis(50),
        }
    }
}

/// The supervisor's knobs.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Watchdog deadline per tenant.
    pub watchdog: WatchdogPolicy,
    /// Transient-failure retry budget per tenant.
    pub retry: TenantRetryPolicy,
    /// Fault injection plan.
    pub chaos: ChaosPlan,
}

/// Why the supervisor quarantined a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The tenant thread died (panicked).
    Killed {
        /// Operation index at which it died ([`KILL_AFTER_COMMIT`] when it
        /// died after its commit frame).
        at_op: u64,
    },
    /// The watchdog saw too many operations without clock progress.
    DeadlineExceeded {
        /// Consecutive silent operations observed.
        silent_ops: u64,
    },
    /// The post-run fsck found the journal dirty or uncommitted.
    JournalCorrupt {
        /// Segments whose scan hit a defect.
        defective_segments: usize,
    },
    /// Transient start failures exhausted the retry budget.
    RetryBudgetExhausted {
        /// Total attempts made.
        attempts: u32,
        /// The last transient failure.
        last_error: String,
    },
    /// The heap-integrity verifier found corrupted heap memory in the
    /// tenant's runtime (`--verify-heap`, or the chaos arm's synchronous
    /// post-plant check).
    HeapCorrupt {
        /// The violated invariant's stable name.
        invariant: String,
    },
    /// The tenant hit its hard per-tenant heap quota (`--heap-mb`) and its
    /// run was cut short by a typed out-of-memory abort. The journal is
    /// still committed — the quarantine is a resource-policy verdict, not
    /// data loss.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: u64,
    },
    /// The tenant's pipeline returned a non-transient error.
    Failed {
        /// The error, stringified at the thread boundary.
        error: String,
    },
}

impl QuarantineReason {
    /// Stable one-word label for tables and ledgers.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineReason::Killed { .. } => "killed",
            QuarantineReason::DeadlineExceeded { .. } => "deadline",
            QuarantineReason::JournalCorrupt { .. } => "journal-corrupt",
            QuarantineReason::RetryBudgetExhausted { .. } => "retry-exhausted",
            QuarantineReason::HeapCorrupt { .. } => "heap-corrupt",
            QuarantineReason::OutOfMemory { .. } => "oom",
            QuarantineReason::Failed { .. } => "failed",
        }
    }

    /// Human-readable detail.
    pub fn detail(&self) -> String {
        match self {
            QuarantineReason::Killed { at_op } if *at_op == KILL_AFTER_COMMIT => {
                "died after commit".into()
            }
            QuarantineReason::Killed { at_op } => format!("died at operation {at_op}"),
            QuarantineReason::DeadlineExceeded { silent_ops } => {
                format!("{silent_ops} operations without progress")
            }
            QuarantineReason::JournalCorrupt { defective_segments } => {
                format!("{defective_segments} defective segment(s)")
            }
            QuarantineReason::RetryBudgetExhausted {
                attempts,
                last_error,
            } => format!("{attempts} failed attempts; last: {last_error}"),
            QuarantineReason::HeapCorrupt { invariant } => {
                format!("integrity violation: {invariant}")
            }
            QuarantineReason::OutOfMemory { requested } => {
                format!("heap quota exhausted allocating {requested} bytes")
            }
            QuarantineReason::Failed { error } => error.clone(),
        }
    }
}

/// One tenant's supervised run, as the fleet reports it.
#[derive(Debug)]
pub struct TenantOutcome {
    /// Tenant name.
    pub tenant: String,
    /// Workload name.
    pub workload: String,
    /// The tenant's journal directory.
    pub journal_dir: PathBuf,
    /// `Some` when the supervisor quarantined the tenant.
    pub quarantine: Option<QuarantineReason>,
    /// Retries granted for transient failures.
    pub retries: u32,
    /// The chaos plan's injected fault — ground truth for the tests.
    pub injected: Option<TenantFault>,
    /// Allocations recorded (0 when the tenant never finished an attempt).
    pub records: u64,
    /// Snapshots captured.
    pub snapshots: u64,
    /// Simulated time charged to the tenant: the run itself plus backoff
    /// penalties; quarantined tenants are charged only their penalties
    /// (the partial attempt's clock died with its thread).
    pub sim_duration: SimDuration,
    /// Faults absorbed by the tenant's own pipeline during the run.
    pub counters: FaultCounters,
}

impl TenantOutcome {
    /// True when the tenant finished cleanly.
    pub fn healthy(&self) -> bool {
        self.quarantine.is_none()
    }
}

/// Result of [`run_fleet`]: every tenant, launch order.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-tenant outcomes.
    pub tenants: Vec<TenantOutcome>,
}

impl FleetOutcome {
    /// Tenants that finished cleanly.
    pub fn healthy_count(&self) -> usize {
        self.tenants.iter().filter(|t| t.healthy()).count()
    }

    /// Tenants the supervisor quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.tenants.len() - self.healthy_count()
    }

    /// The fleet's metric ledger.
    pub fn ledger(&self) -> FleetLedger {
        FleetLedger {
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantStats {
                    tenant: t.tenant.clone(),
                    workload: t.workload.clone(),
                    records: t.records,
                    snapshots: t.snapshots,
                    sim_duration: t.sim_duration,
                    retries: t.retries,
                    quarantined: !t.healthy(),
                    counters: t.counters,
                })
                .collect(),
        }
    }

    /// The merge inputs this fleet run leaves behind: one per tenant, with
    /// quarantined tenants marked excluded (their journals are ledger-only
    /// even if they look committed).
    pub fn tenant_inputs(&self) -> Vec<TenantInput> {
        self.tenants
            .iter()
            .map(|t| TenantInput {
                tenant: t.tenant.clone(),
                dir: t.journal_dir.clone(),
                exclude: t
                    .quarantine
                    .as_ref()
                    .map(|q| format!("{} ({})", q.label(), q.detail())),
            })
            .collect()
    }
}

/// Runs the fleet: one supervised thread per tenant, each journaling into
/// `journal_root/<tenant>`. Never fails — every failure mode becomes a
/// quarantine on the affected tenant alone.
pub fn run_fleet(
    specs: &[TenantSpec],
    journal_root: &Path,
    config: &FleetConfig,
    resolver: WorkloadResolver,
) -> FleetOutcome {
    silence_injected_kill_panics();
    let tenants = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                let fault = config.chaos.fault_for(index);
                let dir = journal_root.join(&spec.tenant);
                scope.spawn(move || supervise_tenant(spec, dir, fault, config, resolver))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
            .collect()
    });
    FleetOutcome { tenants }
}

/// Recovers and merges a fleet's journals into one degraded profile. The
/// heavy lifting lives in [`polm2_core::merge`]; this wrapper resolves each
/// committed tenant's workload name (from its journaled session header) to
/// a loaded program — rebuilt under a fresh Recorder agent, exactly the
/// load-time view the tenant's own JVM had.
pub fn merge_fleet(
    inputs: &[TenantInput],
    analyzer: &AnalyzerConfig,
    resolver: WorkloadResolver,
) -> MergedProfile {
    let recovered = recover_tenants(inputs);
    let programs = recovered
        .iter()
        .map(|tenant| {
            if tenant.exclude.is_some() || !tenant.committed() {
                return None;
            }
            let meta = tenant.meta.as_ref()?;
            let workload = resolver(&meta.workload)?;
            let recorder = Recorder::new();
            let mut agent = recorder.agent();
            let mut heap = Heap::new(HeapConfig::small());
            Loader::load(workload.program(), &mut [agent.as_mut()], &mut heap).ok()
        })
        .collect();
    merge_tenants(recovered, programs, analyzer)
}

/// Panic payload for injected kills: lets the supervisor tell a chaos kill
/// from a genuine bug, and the silencing hook keep injected kills off
/// stderr.
struct InjectedKill {
    at_op: u64,
}

/// Installs (once per process) a panic hook that swallows [`InjectedKill`]
/// panics — they are simulated crashes, not errors worth a backtrace — and
/// delegates everything else to the previous hook.
fn silence_injected_kill_panics() {
    static SILENCE: Once = Once::new();
    SILENCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedKill>().is_none() {
                prev(info);
            }
        }));
    });
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one attempt of one tenant produced.
struct AttemptSuccess {
    records: u64,
    snapshots: u64,
    counters: FaultCounters,
}

/// How one attempt of one tenant failed.
enum AttemptError {
    /// Worth retrying (flaky start).
    Transient(String),
    /// Not worth retrying.
    Fatal(PipelineError),
    /// The tenant hit its hard heap quota. Unlike `Fatal`, the attempt
    /// unwound cleanly first — journal committed, ledger absorbed — so the
    /// salvage is kept for the fleet ledger alongside the quarantine.
    Oom {
        /// Bytes the failing allocation requested.
        requested: u64,
        /// Simulated time the truncated run actually consumed.
        elapsed: SimDuration,
        /// What the attempt produced before the quota hit (boxed to keep
        /// the error variant small; clippy `result_large_err`).
        salvage: Box<AttemptSuccess>,
    },
}

/// Supervises one tenant: retry loop around [`run_tenant_attempt`], panic
/// containment at this boundary, post-run journal fsck.
fn supervise_tenant(
    spec: &TenantSpec,
    journal_dir: PathBuf,
    fault: Option<TenantFault>,
    config: &FleetConfig,
    resolver: WorkloadResolver,
) -> TenantOutcome {
    let mut retries = 0u32;
    let mut penalty = SimDuration::ZERO;
    let outcome = |quarantine, retries, penalty, records, snapshots, counters| TenantOutcome {
        tenant: spec.tenant.clone(),
        workload: spec.workload.clone(),
        journal_dir: journal_dir.clone(),
        quarantine,
        retries,
        injected: fault,
        records,
        snapshots,
        sim_duration: penalty,
        counters,
    };
    loop {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            run_tenant_attempt(spec, &journal_dir, fault, retries, config, resolver)
        }));
        match attempt {
            Err(panic) => {
                // A dead thread tells no throughput: records and counters
                // are zero; the torn journal carries the salvage ledger.
                let reason = match panic.downcast_ref::<InjectedKill>() {
                    Some(kill) => QuarantineReason::Killed { at_op: kill.at_op },
                    None => QuarantineReason::Failed {
                        error: panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "tenant panicked".into()),
                    },
                };
                return outcome(Some(reason), retries, penalty, 0, 0, FaultCounters::new());
            }
            Ok(Err(AttemptError::Transient(error))) => {
                if retries < config.retry.max_retries {
                    // Exponential backoff on the simulated clock: the fleet
                    // is deterministic, so the penalty is bookkeeping, not
                    // a real sleep.
                    penalty += config.retry.backoff * (1u64 << retries);
                    retries += 1;
                    continue;
                }
                return outcome(
                    Some(QuarantineReason::RetryBudgetExhausted {
                        attempts: retries + 1,
                        last_error: error,
                    }),
                    retries,
                    penalty,
                    0,
                    0,
                    FaultCounters::new(),
                );
            }
            Ok(Err(AttemptError::Fatal(e))) => {
                let reason = match e {
                    PipelineError::Deadline { silent_ops } => {
                        QuarantineReason::DeadlineExceeded { silent_ops }
                    }
                    PipelineError::Runtime(RuntimeError::Heap(HeapError::IntegrityViolation {
                        invariant,
                        ..
                    })) => QuarantineReason::HeapCorrupt {
                        invariant: invariant.to_string(),
                    },
                    other => QuarantineReason::Failed {
                        error: other.to_string(),
                    },
                };
                return outcome(Some(reason), retries, penalty, 0, 0, FaultCounters::new());
            }
            Ok(Err(AttemptError::Oom {
                requested,
                elapsed,
                salvage,
            })) => {
                return outcome(
                    Some(QuarantineReason::OutOfMemory { requested }),
                    retries,
                    penalty + elapsed,
                    salvage.records,
                    salvage.snapshots,
                    salvage.counters,
                );
            }
            Ok(Ok(success)) => {
                // Chaos arm: rot the journal *after* the clean run, then
                // let the same fsck gate that guards real runs catch it.
                if fault == Some(TenantFault::CorruptJournal) {
                    corrupt_one_byte(&journal_dir, spec.config.seed);
                }
                let mut media = FsMedia;
                let report = fsck(&mut media, &journal_dir, KIND_COMMIT);
                let quarantine = match report {
                    Ok(report) if report.is_clean() && report.committed => None,
                    Ok(report) => Some(QuarantineReason::JournalCorrupt {
                        defective_segments: report.defective_segments().max(1),
                    }),
                    Err(e) => Some(QuarantineReason::Failed {
                        error: e.to_string(),
                    }),
                };
                return outcome(
                    quarantine,
                    retries,
                    penalty + spec.config.duration,
                    success.records,
                    success.snapshots,
                    success.counters,
                );
            }
        }
    }
}

/// One attempt: build the tenant's session + journal + JVM and drive it to
/// the configured duration, with the chaos fault (if any) and the watchdog
/// wired into the loop.
fn run_tenant_attempt(
    spec: &TenantSpec,
    journal_dir: &Path,
    fault: Option<TenantFault>,
    attempt: u32,
    config: &FleetConfig,
    resolver: WorkloadResolver,
) -> Result<AttemptSuccess, AttemptError> {
    if let Some(TenantFault::FlakyStart { failures }) = fault {
        if attempt < failures {
            return Err(AttemptError::Transient(format!(
                "injected start failure {} of {failures}",
                attempt + 1
            )));
        }
    }
    let workload = resolver(&spec.workload).ok_or_else(|| {
        AttemptError::Fatal(PipelineError::Internal(format!(
            "unknown workload {:?}",
            spec.workload
        )))
    })?;
    let workload = workload.as_ref();

    let mut session = build_profiling_session(&spec.config);
    attach_session_journal(&mut session, workload.name(), &spec.config, journal_dir)
        .map_err(AttemptError::Fatal)?;

    let mut jvm = Jvm::builder(spec.config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(spec.config.seed))
        .transformer(session.recorder_agent())
        .build(workload.program())
        .map_err(|e| AttemptError::Fatal(e.into()))?;
    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let op_cost = workload.op_cost();
    let end = SimTime::ZERO + spec.config.duration;

    let mut op = 0u64;
    let mut silent = 0u64;
    let mut oom: Option<u64> = None;
    while jvm.now() < end {
        if let Some(TenantFault::Kill { at_op }) = fault {
            if op == at_op {
                std::panic::panic_any(InjectedKill { at_op });
            }
        }
        let stalled = matches!(fault, Some(TenantFault::Stall { at_op }) if op >= at_op);
        let before = jvm.now();
        if !stalled {
            match jvm.invoke(thread, class, method) {
                Ok(()) => {}
                Err(RuntimeError::Gc(GcError::OutOfMemory { requested })) => {
                    // Per-tenant heap quota hit: stop the run but unwind it
                    // cleanly below, so the journal commits and the salvage
                    // reaches the fleet ledger before the quarantine.
                    oom = Some(requested);
                    break;
                }
                Err(e) => return Err(AttemptError::Fatal(e.into())),
            }
            jvm.advance_mutator(op_cost);
            session.after_op(&mut jvm).map_err(AttemptError::Fatal)?;
        }
        if jvm.now() == before {
            silent += 1;
            if silent > config.watchdog.max_silent_ops {
                return Err(AttemptError::Fatal(PipelineError::Deadline {
                    silent_ops: silent,
                }));
            }
        } else {
            silent = 0;
        }
        op += 1;
    }

    let records = session.recorded_allocations();
    session.absorb_runtime_health(&jvm, oom.is_some() as u64);
    let report = session
        .finish(&mut jvm, &spec.config.analyzer)
        .map_err(AttemptError::Fatal)?;
    if let Some(TenantFault::Kill { at_op }) = fault {
        if at_op == KILL_AFTER_COMMIT {
            std::panic::panic_any(InjectedKill { at_op });
        }
    }
    let success = AttemptSuccess {
        records,
        snapshots: report.snapshots.len() as u64,
        counters: report.counters,
    };
    if let Some(requested) = oom {
        return Err(AttemptError::Oom {
            requested,
            elapsed: jvm.now() - SimTime::ZERO,
            salvage: Box::new(success),
        });
    }
    Ok(success)
}

/// Flips one seeded byte inside the frame region of the tenant's last
/// journal segment — guaranteed to land inside a CRC-protected frame, so
/// fsck must flag the segment.
fn corrupt_one_byte(dir: &Path, seed: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut names: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    names.sort();
    let Some(path) = names.last() else { return };
    let Ok(mut bytes) = std::fs::read(path) else {
        return;
    };
    if bytes.len() <= SEGMENT_HEADER_LEN + 1 {
        return;
    }
    let window = bytes.len() - SEGMENT_HEADER_LEN;
    let mut stream = seed ^ 0xC0FF_EE00_D15E_A5E5;
    let offset = SEGMENT_HEADER_LEN + (splitmix64(&mut stream) as usize % window);
    bytes[offset] ^= 0x40;
    let _ = std::fs::write(path, bytes);
}
