//! The six paper workloads of Table 1.

use crate::cassandra::CassandraWorkload;
use crate::graphchi::GraphchiWorkload;
use crate::lucene::LuceneWorkload;
use crate::workload::Workload;

/// The six workload configurations the paper evaluates, in Table 1 order:
/// Cassandra-WI, Cassandra-RW, Cassandra-RI, Lucene, GraphChi-CC,
/// GraphChi-PR.
pub fn paper_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(CassandraWorkload::write_intensive()),
        Box::new(CassandraWorkload::write_read()),
        Box::new(CassandraWorkload::read_intensive()),
        Box::new(LuceneWorkload::paper()),
        Box::new(GraphchiWorkload::connected_components()),
        Box::new(GraphchiWorkload::pagerank()),
    ]
}

/// Looks up one paper workload by name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    paper_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_one() {
        let names: Vec<&str> = paper_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "cassandra-wi",
                "cassandra-wr",
                "cassandra-ri",
                "lucene",
                "graphchi-cc",
                "graphchi-pr"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("lucene").is_some());
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn every_workload_is_well_formed() {
        for w in paper_workloads() {
            assert!(w.program().alloc_site_count() > 0, "{}", w.name());
            assert!(w.candidate_sites() > 0);
            assert!(!w.op_cost().is_zero());
            let manual = w.manual_profile();
            assert!(!manual.is_empty(), "{} has manual annotations", w.name());
        }
    }
}
