//! A Cassandra-style key-value store (paper §5.2.1).
//!
//! Reproduces the allocation structure that makes Cassandra hard for G1:
//!
//! * **Write path** — every write appends a commit-log entry (dies when its
//!   log segment rotates out) and inserts a cell (name + value + cell
//!   header + partition index entry) into the current *memtable*. Memtables
//!   grow to a quarter of the heap and then flush: the whole cohort dies at
//!   once, after surviving several young collections — exactly the
//!   middle-lived en-masse pattern of the paper.
//! * **Flush path** — each flush produces an SSTable *summary* plus a Bloom
//!   filter, long-lived until compaction retires the oldest tables.
//! * **Read path** — short-lived read commands/response buffers, plus a
//!   segmented row cache whose rows live for the cache-churn period.
//!
//! Two helper classes are deliberately shared between paths of different
//! lifetimes — `Buffers.alloc` (commit-log entries vs. response buffers) and
//! `Arrays.copy` (cell values vs. read scratch) — producing the two
//! allocation-path conflicts Table 1 reports for Cassandra.

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};

use polm2_core::{AllocationProfile, GenCall, PretenuredSite};
use polm2_heap::{GenId, ObjectId};
use polm2_metrics::SimDuration;
use polm2_runtime::{
    ClassDef, CodeLoc, HookAction, HookRegistry, Instr, MethodDef, Program, SizeSpec,
};
use rand::rngs::StdRng;
use rand::Rng;

use crate::workload::Workload;
use crate::ycsb::{seeded_rng, OpMix, ZipfGenerator};

/// Tunables for the Cassandra simulation (defaults follow DESIGN.md's
/// 1:48 scale of the paper's setup).
#[derive(Debug, Clone)]
pub struct CassandraConfig {
    /// Read/write mix (WI / WR / RI).
    pub mix: OpMix,
    /// Key-space size.
    pub keyspace: u64,
    /// Zipfian skew.
    pub theta: f64,
    /// Flush the memtable beyond this many bytes (Cassandra 2.1 defaults to
    /// a quarter of the heap).
    pub memtable_flush_bytes: u64,
    /// Commit-log entries per segment.
    pub log_segment_entries: u64,
    /// Commit-log segments retained.
    pub log_segments: usize,
    /// Rows per cache segment.
    pub cache_segment_rows: u64,
    /// Cache segments retained.
    pub cache_segments: usize,
    /// SSTable summaries retained before compaction drops the oldest.
    pub sstable_cap: usize,
    /// Keys per partition (for partition-header allocation).
    pub keys_per_partition: u64,
    /// Mutator think time per operation.
    pub op_cost: SimDuration,
}

impl CassandraConfig {
    /// The paper's configuration for the given mix.
    pub fn paper(mix: OpMix) -> Self {
        CassandraConfig {
            mix,
            keyspace: 200_000,
            theta: 0.99,
            memtable_flush_bytes: 64 << 20,
            log_segment_entries: 8_192,
            log_segments: 8,
            cache_segment_rows: 8_192,
            cache_segments: 4,
            sstable_cap: 16,
            keys_per_partition: 64,
            op_cost: SimDuration::from_micros(200),
        }
    }

    /// A small configuration for tests (tiny heap, fast flushes).
    pub fn small(mix: OpMix) -> Self {
        CassandraConfig {
            keyspace: 2_000,
            memtable_flush_bytes: 1 << 20,
            log_segment_entries: 512,
            log_segments: 4,
            cache_segment_rows: 256,
            cache_segments: 4,
            sstable_cap: 4,
            ..CassandraConfig::paper(mix)
        }
    }
}

/// Runtime state driving the hooks.
#[derive(Debug)]
pub struct CassandraState {
    config: CassandraConfig,
    rng: StdRng,
    zipf: ZipfGenerator,
    current_key: u64,
    // Memtable.
    memtable_obj: Option<ObjectId>,
    memtable_bytes: u64,
    partitions: HashSet<u64>,
    /// Flush statistics (Table 1 commentary, tests).
    pub flushes: u64,
    // Commit log.
    log_segment: Option<ObjectId>,
    log_segment_entries: u64,
    log_segments: VecDeque<ObjectId>,
    // Row cache.
    cache_segment: Option<ObjectId>,
    cache_segment_rows: u64,
    cache_segments: VecDeque<(u32, ObjectId)>,
    cache_map: HashMap<u64, u32>,
    cache_seg_counter: u32,
    /// Cache hits observed (tests).
    pub cache_hits: u64,
    // SSTables.
    sstables: VecDeque<ObjectId>,
    // Cross-instruction stashes.
    pending_name: Option<ObjectId>,
    pending_value: Option<ObjectId>,
    pending_summary: Option<ObjectId>,
}

impl CassandraState {
    /// Creates fresh state.
    pub fn new(config: CassandraConfig, seed: u64) -> Self {
        let zipf = ZipfGenerator::new(config.keyspace, config.theta);
        CassandraState {
            config,
            rng: seeded_rng(seed),
            zipf,
            current_key: 0,
            memtable_obj: None,
            memtable_bytes: 0,
            partitions: HashSet::new(),
            flushes: 0,
            log_segment: None,
            log_segment_entries: 0,
            log_segments: VecDeque::new(),
            cache_segment: None,
            cache_segment_rows: 0,
            cache_segments: VecDeque::new(),
            cache_map: HashMap::new(),
            cache_seg_counter: 0,
            cache_hits: 0,
            sstables: VecDeque::new(),
            pending_name: None,
            pending_value: None,
            pending_summary: None,
        }
    }

    fn cache_segment_alive(&self, seg: u32) -> bool {
        self.cache_segments.iter().any(|&(id, _)| id == seg)
    }
}

/// The Cassandra workload (one of WI / WR / RI).
#[derive(Debug, Clone)]
pub struct CassandraWorkload {
    name: &'static str,
    config: CassandraConfig,
}

impl CassandraWorkload {
    /// Creates the workload for the given mix name and config.
    pub fn new(name: &'static str, config: CassandraConfig) -> Self {
        CassandraWorkload { name, config }
    }

    /// Write-intensive: 2 500 reads / 7 500 writes per second.
    pub fn write_intensive() -> Self {
        CassandraWorkload::new(
            "cassandra-wi",
            CassandraConfig::paper(OpMix::WRITE_INTENSIVE),
        )
    }

    /// Balanced: 5 000 / 5 000.
    pub fn write_read() -> Self {
        CassandraWorkload::new("cassandra-wr", CassandraConfig::paper(OpMix::WRITE_READ))
    }

    /// Read-intensive: 7 500 reads / 2 500 writes.
    pub fn read_intensive() -> Self {
        CassandraWorkload::new(
            "cassandra-ri",
            CassandraConfig::paper(OpMix::READ_INTENSIVE),
        )
    }

    /// The configuration.
    pub fn config(&self) -> &CassandraConfig {
        &self.config
    }
}

/// Builds the Cassandra IR program. Line numbers are the site identities the
/// profiler sees; keep them stable.
pub fn program() -> Program {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("Cassandra")
            .with_method(MethodDef::new("handleOp").push(Instr::Branch {
                cond: "is_write".into(),
                then_block: vec![Instr::call("Cassandra", "handleWrite", 2)],
                else_block: vec![Instr::call("Cassandra", "handleRead", 3)],
                line: 1,
            }))
            .with_method(
                MethodDef::new("handleWrite")
                    .push(Instr::call("CommitLog", "append", 10))
                    .push(Instr::call("Memtable", "put", 11))
                    .push(Instr::Branch {
                        cond: "needs_flush".into(),
                        then_block: vec![Instr::call("Memtable", "flush", 13)],
                        else_block: vec![],
                        line: 12,
                    })
                    .push(Instr::alloc("WriteResponse", SizeSpec::Fixed(1024), 14)),
            )
            .with_method(
                MethodDef::new("handleRead")
                    .push(Instr::alloc("ReadCommand", SizeSpec::Fixed(768), 20))
                    .push(Instr::Branch {
                        cond: "cache_hit".into(),
                        then_block: vec![Instr::native("cache_touch", 22)],
                        else_block: vec![
                            Instr::Branch {
                                cond: "cache_seg_needed".into(),
                                then_block: vec![
                                    Instr::alloc("CacheSegment", SizeSpec::Fixed(256), 24),
                                    Instr::native("install_cache_seg", 25),
                                ],
                                else_block: vec![],
                                line: 23,
                            },
                            Instr::call("ReadPath", "materialize", 26),
                            Instr::native("cache_insert", 27),
                        ],
                        line: 21,
                    })
                    .push(Instr::call("Buffers", "alloc", 28)),
            ),
    );
    p.add_class(
        ClassDef::new("CommitLog").with_method(
            MethodDef::new("append")
                .push(Instr::Branch {
                    cond: "needs_rotate".into(),
                    then_block: vec![
                        Instr::alloc("LogSegment", SizeSpec::Fixed(256), 51),
                        Instr::native("rotate_log", 52),
                    ],
                    else_block: vec![],
                    line: 50,
                })
                .push(Instr::call("Buffers", "alloc", 53))
                .push(Instr::native("log_append", 54)),
        ),
    );
    p.add_class(
        ClassDef::new("Buffers").with_method(MethodDef::new("alloc").push(Instr::alloc(
            "ByteBuffer",
            SizeSpec::Hook("buf_size".into()),
            60,
        ))),
    );
    p.add_class(
        ClassDef::new("Memtable")
            .with_method(
                MethodDef::new("put")
                    .push(Instr::Branch {
                        cond: "memtable_missing".into(),
                        then_block: vec![
                            Instr::alloc("Memtable", SizeSpec::Fixed(512), 66),
                            Instr::native("install_memtable", 67),
                        ],
                        else_block: vec![],
                        line: 65,
                    })
                    .push(Instr::Branch {
                        cond: "new_partition".into(),
                        then_block: vec![
                            Instr::alloc("PartitionHeader", SizeSpec::Fixed(80), 71),
                            Instr::native("register_partition", 72),
                        ],
                        else_block: vec![],
                        line: 70,
                    })
                    .push(Instr::alloc("CellName", SizeSpec::Fixed(48), 73))
                    .push(Instr::native("stash_name", 74))
                    .push(Instr::call("Cell", "create", 75))
                    .push(Instr::native("memtable_insert", 76)),
            )
            .with_method(
                MethodDef::new("flush")
                    .push(Instr::native("flush_memtable", 30))
                    .push(Instr::call("SSTable", "build", 31)),
            ),
    );
    p.add_class(
        ClassDef::new("Cell").with_method(
            MethodDef::new("create")
                .push(Instr::call("Arrays", "copy", 80))
                .push(Instr::native("stash_value", 81))
                .push(Instr::alloc("Cell", SizeSpec::Fixed(64), 82))
                .push(Instr::native("attach_value", 83)),
        ),
    );
    p.add_class(
        ClassDef::new("Arrays").with_method(MethodDef::new("copy").push(Instr::alloc(
            "ByteArray",
            SizeSpec::Hook("value_size".into()),
            90,
        ))),
    );
    p.add_class(
        ClassDef::new("SSTable").with_method(
            MethodDef::new("build")
                .push(Instr::alloc(
                    "SSTableSummary",
                    SizeSpec::Hook("summary_size".into()),
                    40,
                ))
                .push(Instr::native("register_summary", 41))
                .push(Instr::alloc("BloomFilter", SizeSpec::Fixed(4096), 42))
                .push(Instr::native("attach_bloom", 43)),
        ),
    );
    p.add_class(
        ClassDef::new("ReadPath").with_method(
            MethodDef::new("materialize")
                .push(Instr::call("Arrays", "copy", 100))
                .push(Instr::alloc(
                    "CachedRow",
                    SizeSpec::Hook("row_size".into()),
                    101,
                )),
        ),
    );
    p
}

/// Builds the Cassandra hooks.
pub fn hooks() -> HookRegistry {
    let mut h = HookRegistry::new();

    // ---- conditions ----
    h.register_cond("is_write", |ctx| {
        let s = ctx.state::<CassandraState>();
        s.current_key = s.zipf.next(&mut s.rng);
        !s.config.mix.next_is_read(&mut s.rng)
    });
    h.register_cond("needs_flush", |ctx| {
        let s = ctx.state::<CassandraState>();
        s.memtable_bytes >= s.config.memtable_flush_bytes
    });
    h.register_cond("needs_rotate", |ctx| {
        let s = ctx.state::<CassandraState>();
        s.log_segment.is_none() || s.log_segment_entries >= s.config.log_segment_entries
    });
    h.register_cond("memtable_missing", |ctx| {
        ctx.state::<CassandraState>().memtable_obj.is_none()
    });
    h.register_cond("new_partition", |ctx| {
        let s = ctx.state::<CassandraState>();
        let partition = s.current_key / s.config.keys_per_partition;
        !s.partitions.contains(&partition)
    });
    h.register_cond("cache_hit", |ctx| {
        let s = ctx.state::<CassandraState>();
        let key = s.current_key;
        match s.cache_map.get(&key).copied() {
            Some(seg) if s.cache_segment_alive(seg) => {
                s.cache_hits += 1;
                true
            }
            Some(_) => {
                s.cache_map.remove(&key);
                false
            }
            None => false,
        }
    });
    h.register_cond("cache_seg_needed", |ctx| {
        let s = ctx.state::<CassandraState>();
        s.cache_segment.is_none() || s.cache_segment_rows >= s.config.cache_segment_rows
    });

    // ---- sizes ----
    h.register_size("buf_size", |ctx| {
        let s = ctx.state::<CassandraState>();
        64 + s.rng.gen_range(0..192)
    });
    h.register_size("value_size", |ctx| {
        let s = ctx.state::<CassandraState>();
        128 + s.rng.gen_range(0..512)
    });
    h.register_size("summary_size", |ctx| {
        let s = ctx.state::<CassandraState>();
        // Summaries scale with the flushed memtable (~1/64 of it).
        ((s.config.memtable_flush_bytes / 64) as u32).clamp(4_096, 1 << 20)
    });
    h.register_size("row_size", |ctx| {
        let s = ctx.state::<CassandraState>();
        256 + s.rng.gen_range(0..512)
    });

    // ---- commit log ----
    h.register_action("rotate_log", |ctx| {
        let seg = ctx.acc.expect("LogSegment allocated");
        let slot = ctx.heap.roots_mut().create_slot("cassandra.commitlog");
        ctx.heap.roots_mut().push(slot, seg);
        let s = ctx.state::<CassandraState>();
        s.log_segment = Some(seg);
        s.log_segment_entries = 0;
        s.log_segments.push_back(seg);
        let retired = if s.log_segments.len() > s.config.log_segments {
            s.log_segments.pop_front()
        } else {
            None
        };
        if let Some(old) = retired {
            ctx.heap.roots_mut().remove(slot, old);
        }
        HookAction::default()
    });
    h.register_action("log_append", |ctx| {
        let entry = ctx.acc.expect("log entry buffer allocated");
        let seg = {
            let s = ctx.state::<CassandraState>();
            s.log_segment_entries += 1;
            s.log_segment.expect("rotate_log ran first")
        };
        ctx.heap
            .add_ref(seg, entry)
            .expect("segment and entry are live");
        HookAction {
            cost: Some(SimDuration::from_micros(3)),
        }
    });

    // ---- memtable ----
    h.register_action("install_memtable", |ctx| {
        let obj = ctx.acc.expect("Memtable allocated");
        let slot = ctx.heap.roots_mut().create_slot("cassandra.memtable");
        ctx.heap.roots_mut().push(slot, obj);
        let s = ctx.state::<CassandraState>();
        s.memtable_obj = Some(obj);
        s.memtable_bytes = 512;
        HookAction::default()
    });
    h.register_action("register_partition", |ctx| {
        let header = ctx.acc.expect("PartitionHeader allocated");
        let (memtable, partition) = {
            let s = ctx.state::<CassandraState>();
            let partition = s.current_key / s.config.keys_per_partition;
            s.partitions.insert(partition);
            s.memtable_bytes += 80;
            (s.memtable_obj.expect("memtable installed"), partition)
        };
        let _ = partition;
        ctx.heap
            .add_ref(memtable, header)
            .expect("memtable and header are live");
        HookAction::default()
    });
    h.register_action("stash_name", |ctx| {
        let name = ctx.acc.expect("CellName allocated");
        ctx.state::<CassandraState>().pending_name = Some(name);
        HookAction::default()
    });
    h.register_action("stash_value", |ctx| {
        let value = ctx.acc.expect("ByteArray allocated");
        ctx.state::<CassandraState>().pending_value = Some(value);
        HookAction::default()
    });
    h.register_action("attach_value", |ctx| {
        let cell = ctx.acc.expect("Cell allocated");
        let value = ctx
            .state::<CassandraState>()
            .pending_value
            .take()
            .expect("value stashed");
        ctx.heap
            .add_ref(cell, value)
            .expect("cell and value are live");
        HookAction::default()
    });
    h.register_action("memtable_insert", |ctx| {
        let cell = ctx.acc.expect("cell returned by Cell.create");
        let (memtable, name) = {
            let s = ctx.state::<CassandraState>();
            (
                s.memtable_obj.expect("memtable installed"),
                s.pending_name.take().expect("name stashed"),
            )
        };
        ctx.heap
            .add_ref(cell, name)
            .expect("cell and name are live");
        ctx.heap
            .add_ref(memtable, cell)
            .expect("memtable and cell are live");
        let cell_bytes = 48
            + 64
            + u64::from(
                ctx.heap
                    .object(cell)
                    .expect("live cell")
                    .refs()
                    .iter()
                    .map(|&r| ctx.heap.object(r).map(|o| o.size()).unwrap_or(0))
                    .sum::<u32>(),
            );
        let s = ctx.state::<CassandraState>();
        s.memtable_bytes += cell_bytes;
        HookAction {
            cost: Some(SimDuration::from_micros(4)),
        }
    });
    h.register_action("flush_memtable", |ctx| {
        let slot = ctx.heap.roots_mut().create_slot("cassandra.memtable");
        let retired = {
            let s = ctx.state::<CassandraState>();
            let retired = s.memtable_obj.take();
            s.memtable_bytes = 0;
            s.partitions.clear();
            s.flushes += 1;
            retired
        };
        if let Some(obj) = retired {
            ctx.heap.roots_mut().remove(slot, obj);
        }
        // Flushing writes the cohort out; the I/O cost is charged here.
        HookAction {
            cost: Some(SimDuration::from_millis(2)),
        }
    });

    // ---- sstables ----
    h.register_action("register_summary", |ctx| {
        let summary = ctx.acc.expect("SSTableSummary allocated");
        let slot = ctx.heap.roots_mut().create_slot("cassandra.sstables");
        ctx.heap.roots_mut().push(slot, summary);
        let retired = {
            let s = ctx.state::<CassandraState>();
            s.pending_summary = Some(summary);
            s.sstables.push_back(summary);
            if s.sstables.len() > s.config.sstable_cap {
                s.sstables.pop_front()
            } else {
                None
            }
        };
        if let Some(old) = retired {
            ctx.heap.roots_mut().remove(slot, old);
        }
        HookAction::default()
    });
    h.register_action("attach_bloom", |ctx| {
        let bloom = ctx.acc.expect("BloomFilter allocated");
        let summary = ctx
            .state::<CassandraState>()
            .pending_summary
            .take()
            .expect("summary stashed");
        ctx.heap
            .add_ref(summary, bloom)
            .expect("summary and bloom are live");
        HookAction::default()
    });

    // ---- row cache ----
    h.register_action("cache_touch", |_ctx| HookAction {
        cost: Some(SimDuration::from_micros(1)),
    });
    h.register_action("install_cache_seg", |ctx| {
        let seg_obj = ctx.acc.expect("CacheSegment allocated");
        let slot = ctx.heap.roots_mut().create_slot("cassandra.rowcache");
        ctx.heap.roots_mut().push(slot, seg_obj);
        let retired = {
            let s = ctx.state::<CassandraState>();
            s.cache_seg_counter += 1;
            let id = s.cache_seg_counter;
            s.cache_segment = Some(seg_obj);
            s.cache_segment_rows = 0;
            s.cache_segments.push_back((id, seg_obj));
            if s.cache_segments.len() > s.config.cache_segments {
                s.cache_segments.pop_front()
            } else {
                None
            }
        };
        if let Some((_, old)) = retired {
            ctx.heap.roots_mut().remove(slot, old);
        }
        HookAction::default()
    });
    h.register_action("cache_insert", |ctx| {
        let row = ctx.acc.expect("CachedRow returned by materialize");
        let (seg_obj, key, seg_id) = {
            let s = ctx.state::<CassandraState>();
            let seg_obj = s.cache_segment.expect("cache segment installed");
            s.cache_segment_rows += 1;
            (seg_obj, s.current_key, s.cache_seg_counter)
        };
        ctx.heap
            .add_ref(seg_obj, row)
            .expect("segment and row are live");
        let s = ctx.state::<CassandraState>();
        s.cache_map.insert(key, seg_id);
        HookAction {
            cost: Some(SimDuration::from_micros(5)),
        }
    });

    h
}

/// The code locations of the middle/long-lived sites (used by the manual
/// profiles and the Table 1 accounting).
pub mod sites {
    use polm2_runtime::CodeLoc;

    /// All candidate allocation sites an expert would review.
    pub fn candidates() -> Vec<CodeLoc> {
        vec![
            CodeLoc::new("Cassandra", "handleRead", 20), // ReadCommand (short)
            CodeLoc::new("Cassandra", "handleWrite", 14), // WriteResponse (short)
            CodeLoc::new("Cassandra", "handleRead", 24), // CacheSegment
            CodeLoc::new("CommitLog", "append", 51),     // LogSegment
            CodeLoc::new("Buffers", "alloc", 60),        // ByteBuffer (conflict)
            CodeLoc::new("Memtable", "put", 66),         // Memtable
            CodeLoc::new("Memtable", "put", 71),         // PartitionHeader
            CodeLoc::new("Memtable", "put", 73),         // CellName
            CodeLoc::new("Cell", "create", 82),          // Cell
            CodeLoc::new("Arrays", "copy", 90),          // ByteArray (conflict)
            CodeLoc::new("SSTable", "build", 40),        // SSTableSummary
            CodeLoc::new("SSTable", "build", 42),        // BloomFilter
            CodeLoc::new("ReadPath", "materialize", 101), // CachedRow
        ]
    }
}

/// The manual NG2C annotations for Cassandra (what the NG2C paper's authors
/// wrote by hand): memtable cohort in gen 2, cache in gen 3, sstable
/// metadata in gen 4. The conflicted helper sites are annotated with a
/// single generation set at the *write-path* callers only — correct for
/// WI/WR where writes dominate.
fn manual_profile_base() -> AllocationProfile {
    let mut p = AllocationProfile::new();
    let g2 = GenId::new(2); // memtable-lifetime cohort
    let g3 = GenId::new(3); // cache-lifetime cohort
    let g4 = GenId::new(4); // sstable metadata
    for (loc, gen, local) in [
        (CodeLoc::new("Memtable", "put", 66), g2, true),
        (CodeLoc::new("Memtable", "put", 71), g2, true),
        (CodeLoc::new("Memtable", "put", 73), g2, true),
        (CodeLoc::new("Cell", "create", 82), g2, true),
        (CodeLoc::new("CommitLog", "append", 51), g2, true),
        (CodeLoc::new("Cassandra", "handleRead", 24), g3, true),
        (CodeLoc::new("ReadPath", "materialize", 101), g3, true),
        (CodeLoc::new("SSTable", "build", 40), g4, true),
        (CodeLoc::new("SSTable", "build", 42), g4, true),
        // The shared helpers, annotated (@Gen) with the generation supplied
        // by wrapped call sites below.
        (CodeLoc::new("Buffers", "alloc", 60), g2, false),
        (CodeLoc::new("Arrays", "copy", 90), g2, false),
    ] {
        p.add_site(PretenuredSite { loc, gen, local });
    }
    // Path-aware setGeneration wrappers for the shared helpers: the
    // commit-log append and the cell-value copy are the middle-lived users.
    p.add_gen_call(GenCall {
        at: CodeLoc::new("CommitLog", "append", 53),
        gen: g2,
    });
    p.add_gen_call(GenCall {
        at: CodeLoc::new("Cell", "create", 80),
        gen: g2,
    });
    p
}

/// The *misplaced* manual profile the paper describes for Cassandra-RI
/// (§5.4): the expert tuned for the write path and — with reads dominating —
/// also pinned the read-path helpers into the middle-lived generation,
/// sending short-lived response buffers and read scratch to old space.
fn manual_profile_ri() -> AllocationProfile {
    let mut p = manual_profile_base();
    let g2 = GenId::new(2);
    // Misplacement: the read paths into the shared helpers get the
    // write-path generation.
    p.add_gen_call(GenCall {
        at: CodeLoc::new("Cassandra", "handleRead", 28),
        gen: g2,
    });
    p.add_gen_call(GenCall {
        at: CodeLoc::new("ReadPath", "materialize", 100),
        gen: g2,
    });
    p
}

impl Workload for CassandraWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn program(&self) -> Program {
        program()
    }

    fn hooks(&self) -> HookRegistry {
        hooks()
    }

    fn new_state(&self, seed: u64) -> Box<dyn Any> {
        Box::new(CassandraState::new(self.config.clone(), seed))
    }

    fn entry(&self) -> (&'static str, &'static str) {
        ("Cassandra", "handleOp")
    }

    fn op_cost(&self) -> SimDuration {
        self.config.op_cost
    }

    fn manual_profile(&self) -> AllocationProfile {
        if self.name == "cassandra-ri" {
            manual_profile_ri()
        } else {
            manual_profile_base()
        }
    }

    fn candidate_sites(&self) -> u32 {
        // ReadCommand and WriteResponse are obviously short-lived; an expert
        // would not consider them.
        sites::candidates().len() as u32 - 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_runtime::{Jvm, RuntimeConfig};

    fn boot(mix: OpMix) -> Jvm {
        let w = CassandraWorkload::new("cassandra-test", CassandraConfig::small(mix));
        Jvm::builder(RuntimeConfig::small())
            .hooks(w.hooks())
            .state(w.new_state(7))
            .build(w.program())
            .expect("program loads")
    }

    #[test]
    fn program_has_the_documented_sites() {
        let p = program();
        assert_eq!(p.alloc_site_count(), sites::candidates().len());
    }

    #[test]
    fn writes_accumulate_and_flush() {
        let mut jvm = boot(OpMix { read_permille: 0 });
        let t = jvm.spawn_thread();
        for _ in 0..3_000 {
            jvm.invoke(t, "Cassandra", "handleOp").unwrap();
        }
        let flushes = jvm.state_mut::<CassandraState>().flushes;
        assert!(
            flushes >= 1,
            "1 MiB flush threshold must trigger: {flushes}"
        );
        // SSTable summaries exist and are rooted.
        assert!(jvm.heap().roots().find_slot("cassandra.sstables").is_some());
        jvm.heap().check_invariants();
    }

    #[test]
    fn flush_kills_the_memtable_cohort() {
        let mut jvm = boot(OpMix { read_permille: 0 });
        let t = jvm.spawn_thread();
        // Run until just after a flush.
        let mut last_flushes = 0;
        for _ in 0..5_000 {
            jvm.invoke(t, "Cassandra", "handleOp").unwrap();
            let f = jvm.state_mut::<CassandraState>().flushes;
            if f > last_flushes {
                last_flushes = f;
                break;
            }
        }
        assert!(last_flushes > 0);
        jvm.force_collect().unwrap();
        // After a flush + full GC, live cells are only the post-flush ones.
        let cell_class = jvm.heap().classes().lookup("Cell").unwrap();
        let live = jvm.heap_mut().mark_live(&[]);
        let live_cells = live
            .iter()
            .filter(|&id| jvm.heap().object(id).map(|o| o.class()) == Some(cell_class))
            .count();
        let state = jvm.state_mut::<CassandraState>();
        assert!(
            (live_cells as u64) < 2 * state.config.log_segment_entries,
            "flushed cells must die: {live_cells} live"
        );
    }

    #[test]
    fn reads_hit_the_cache_for_hot_keys() {
        let mut jvm = boot(OpMix {
            read_permille: 1000,
        });
        let t = jvm.spawn_thread();
        for _ in 0..5_000 {
            jvm.invoke(t, "Cassandra", "handleOp").unwrap();
        }
        let hits = jvm.state_mut::<CassandraState>().cache_hits;
        assert!(hits > 500, "Zipfian reads must hit the cache: {hits} hits");
    }

    #[test]
    fn commit_log_is_bounded() {
        let mut jvm = boot(OpMix { read_permille: 0 });
        let t = jvm.spawn_thread();
        for _ in 0..4_000 {
            jvm.invoke(t, "Cassandra", "handleOp").unwrap();
        }
        let s = jvm.state_mut::<CassandraState>();
        assert!(s.log_segments.len() <= s.config.log_segments);
        // Retired segments (and their entries) must be collectable.
        jvm.force_collect().unwrap();
        jvm.heap().check_invariants();
    }

    #[test]
    fn manual_profiles_differ_for_ri() {
        let wi = CassandraWorkload::write_intensive().manual_profile();
        let ri = CassandraWorkload::read_intensive().manual_profile();
        assert!(
            ri.gen_calls().len() > wi.gen_calls().len(),
            "RI adds the misplaced wrappers"
        );
        assert_eq!(wi.sites().len(), 11);
    }

    #[test]
    fn mix_constructors() {
        assert_eq!(CassandraWorkload::write_intensive().name(), "cassandra-wi");
        assert_eq!(CassandraWorkload::write_read().name(), "cassandra-wr");
        assert_eq!(CassandraWorkload::read_intensive().name(), "cassandra-ri");
        assert_eq!(
            CassandraWorkload::write_intensive().entry(),
            ("Cassandra", "handleOp")
        );
    }
}
