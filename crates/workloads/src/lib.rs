//! The paper's evaluation workloads, rebuilt as simulated BGPLATs.
//!
//! Three platforms (paper §5.2), each expressed as an IR program whose
//! allocation structure mirrors the real system's, with workload semantics
//! (memtables, indexes, shards) in native hooks driving object lifetimes:
//!
//! * [`cassandra`] — a Cassandra-style key-value store: commit log,
//!   memtables flushed to SSTable summaries, row cache; driven by a
//!   YCSB-style Zipfian generator in write-intensive (WI), write-read (WR),
//!   and read-intensive (RI) mixes.
//! * [`lucene`] — a Lucene-style in-memory text index: term dictionary,
//!   postings that die when their document is re-indexed, top-word searches;
//!   write-heavy, the paper's worst case.
//! * [`graphchi`] — a GraphChi-style out-of-core graph engine: edge blocks
//!   loaded in batches under a memory budget, PageRank (PR) and Connected
//!   Components (CC) vertex programs.
//!
//! [`registry::paper_workloads`] returns the six configurations of Table 1;
//! [`runner::run_workload`] executes one under a chosen collector setup and
//! collects every metric the figures need; [`runner::profile_workload`] runs
//! the POLM2 profiling phase.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod cassandra;
pub mod fleet;
pub mod graphchi;
pub mod lucene;
pub mod registry;
pub mod runner;
pub mod workload;
pub mod ycsb;

pub use fleet::{
    merge_fleet, run_fleet, ChaosPlan, FleetConfig, FleetOutcome, QuarantineReason, TenantFault,
    TenantOutcome, TenantRetryPolicy, TenantSpec, WatchdogPolicy, WorkloadResolver,
    KILL_AFTER_COMMIT,
};
pub use registry::paper_workloads;
pub use runner::{
    profile_workload, profile_workload_journaled, resume_profile, run_workload, ProfilePhaseConfig,
    ProfilePhaseResult, ResumeMode, ResumedProfile, RunConfig, RunResult,
};
pub use workload::{CollectorSetup, Workload};
pub use ycsb::{OpMix, ZipfGenerator};
