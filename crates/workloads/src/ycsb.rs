//! YCSB-style load generation: Zipfian key popularity and read/write mixes.
//!
//! The paper drives Cassandra with the Yahoo! Cloud Serving Benchmark; this
//! module reimplements the two pieces that matter for memory behaviour: the
//! Zipfian request distribution (hot keys dominate) and the configurable
//! read/write ratio.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A read/write operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Reads per 1000 operations.
    pub read_permille: u16,
}

impl OpMix {
    /// The paper's Cassandra-WI mix: 2500 reads / 7500 writes per second.
    pub const WRITE_INTENSIVE: OpMix = OpMix { read_permille: 250 };
    /// The paper's Cassandra-WR mix: 5000 / 5000.
    pub const WRITE_READ: OpMix = OpMix { read_permille: 500 };
    /// The paper's Cassandra-RI mix: 7500 reads / 2500 writes.
    pub const READ_INTENSIVE: OpMix = OpMix { read_permille: 750 };

    /// Draws whether the next operation is a read.
    pub fn next_is_read(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0..1000) < self.read_permille as u32
    }
}

/// A Zipfian integer generator over `0..n` (YCSB's `ZipfianGenerator`,
/// Gray et al.'s algorithm): constant-time sampling after an O(n) zeta
/// precomputation.
///
/// # Examples
///
/// ```
/// use polm2_workloads::ZipfGenerator;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut zipf = ZipfGenerator::new(1000, 0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let sample = zipf.next(&mut rng);
/// assert!(sample < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfGenerator {
    /// Creates a generator over `0..n` with skew `theta` (YCSB default
    /// 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0, 1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfGenerator {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next key; key 0 is the hottest.
    pub fn next(&mut self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64) * spread) as u64 % self.n
    }

    /// The zeta constants, exposed for tests.
    pub fn constants(&self) -> (f64, f64) {
        (self.zetan, self.zeta2)
    }
}

/// A deterministic RNG for workload state, seeded per run.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn op_mix_respects_ratio() {
        let mut rng = seeded_rng(1);
        let mix = OpMix::READ_INTENSIVE;
        let reads = (0..100_000).filter(|_| mix.next_is_read(&mut rng)).count();
        let ratio = reads as f64 / 100_000.0;
        assert!(
            (ratio - 0.75).abs() < 0.01,
            "read ratio {ratio} should be ~0.75"
        );
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let mut zipf = ZipfGenerator::new(100, 0.99);
        let mut rng = seeded_rng(2);
        for _ in 0..10_000 {
            assert!(zipf.next(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_keys() {
        let mut zipf = ZipfGenerator::new(10_000, 0.99);
        let mut rng = seeded_rng(3);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(zipf.next(&mut rng)).or_insert(0) += 1;
        }
        let hot: u64 = (0..100).map(|k| counts.get(&k).copied().unwrap_or(0)).sum();
        // With theta = 0.99, the hottest 1% of keys draw well over a third
        // of the traffic.
        assert!(hot > 35_000, "hot-key mass {hot} too small for a Zipfian");
        // And the single hottest key dominates any typical cold key.
        let top = counts.get(&0).copied().unwrap_or(0);
        let cold = counts.get(&9_999).copied().unwrap_or(0);
        assert!(top > 50 * (cold + 1));
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let mut a = ZipfGenerator::new(1000, 0.99);
        let mut b = ZipfGenerator::new(1000, 0.99);
        let mut ra = seeded_rng(42);
        let mut rb = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.next(&mut ra), b.next(&mut rb));
        }
    }

    #[test]
    #[should_panic(expected = "key space")]
    fn empty_keyspace_panics() {
        ZipfGenerator::new(0, 0.99);
    }

    #[test]
    fn zeta_constants_grow_with_n() {
        let small = ZipfGenerator::new(10, 0.99).constants().0;
        let large = ZipfGenerator::new(1000, 0.99).constants().0;
        assert!(large > small);
    }
}
