//! A GraphChi-style out-of-core graph engine (paper §5.2.3).
//!
//! The paper runs PageRank (PR) and Connected Components (CC) over the 2010
//! Twitter graph (42 M vertices, 1.5 B edges), loading vertices and edges in
//! batches under a memory budget. The memory behaviour that matters:
//!
//! * **Edge blocks** — each batch loads a memory budget's worth of edge
//!   blocks; they all die together at the batch boundary after surviving the
//!   young collections the batch itself provokes (the budget exceeds the
//!   young generation). Under G1 this is a copy/promote storm every batch.
//! * **Vertex state, value blocks, degree tables** — run-lived.
//! * **Update scratch** — per-vertex message buffers, short-lived.
//!
//! `Codec.decode` serves both the load path (buffers attached to blocks,
//! batch-lived, plus degree-table decode at init, run-lived) and the update
//! path (scratch) — GraphChi's Table 1 conflict.
//!
//! One driver operation = one batch (load + update phase), so throughput is
//! batches/second — GraphChi is the paper's throughput-oriented system.

use std::any::Any;

use polm2_core::{AllocationProfile, GenCall, PretenuredSite};
use polm2_heap::{GenId, ObjectId};
use polm2_metrics::SimDuration;
use polm2_runtime::{
    ClassDef, CodeLoc, CountSpec, HookAction, HookRegistry, Instr, MethodDef, Program, SizeSpec,
};
use rand::rngs::StdRng;
use rand::Rng;

use crate::workload::Workload;
use crate::ycsb::seeded_rng;

/// Which vertex program runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// PageRank.
    PageRank,
    /// Connected Components.
    ConnectedComponents,
}

/// Tunables for the GraphChi simulation.
#[derive(Debug, Clone)]
pub struct GraphchiConfig {
    /// The vertex program.
    pub algorithm: Algorithm,
    /// Vertices in the (scaled) graph.
    pub num_vertices: u64,
    /// Edge blocks loaded per batch (the memory budget).
    pub blocks_per_batch: u32,
    /// Batches whose blocks stay resident (the sliding shard window real
    /// GraphChi keeps under its memory budget). Blocks die when their batch
    /// leaves the window.
    pub batches_in_memory: usize,
    /// Vertices updated per batch.
    pub vertices_per_batch: u32,
    /// A vertex-value block is allocated every this many new vertices.
    pub vertices_per_value_block: u64,
    /// Degree-table blocks decoded at init.
    pub degree_blocks: u32,
    /// A shard index object is allocated every this many edge blocks.
    pub blocks_per_shard_index: u32,
    /// Think time per batch (I/O + compute the simulation does not model).
    pub op_cost: SimDuration,
}

impl GraphchiConfig {
    /// The paper-scaled configuration for the given algorithm.
    pub fn paper(algorithm: Algorithm) -> Self {
        GraphchiConfig {
            algorithm,
            num_vertices: 50_000,
            blocks_per_batch: 4_000,
            batches_in_memory: 3,
            vertices_per_batch: 12_500,
            vertices_per_value_block: 256,
            degree_blocks: 2_000,
            blocks_per_shard_index: 64,
            op_cost: SimDuration::from_millis(3_000),
        }
    }

    /// A small configuration for tests.
    pub fn small(algorithm: Algorithm) -> Self {
        GraphchiConfig {
            algorithm,
            num_vertices: 400,
            blocks_per_batch: 64,
            batches_in_memory: 2,
            vertices_per_batch: 100,
            vertices_per_value_block: 64,
            degree_blocks: 16,
            blocks_per_shard_index: 16,
            op_cost: SimDuration::from_millis(10),
        }
    }
}

/// Runtime state driving the hooks.
#[derive(Debug)]
pub struct GraphchiState {
    config: GraphchiConfig,
    rng: StdRng,
    initialized: bool,
    batch_holder: Option<ObjectId>,
    resident_batches: std::collections::VecDeque<ObjectId>,
    pending_block: Option<ObjectId>,
    pending_degree_table: Option<ObjectId>,
    vertex_cursor: u64,
    vertices_created: u64,
    blocks_loaded_in_batch: u32,
    /// Batches completed (throughput unit; tests).
    pub batches: u64,
    /// Simulated PageRank mass / CC label sum (forces the update math to be
    /// real work with an observable result).
    pub aggregate: f64,
}

impl GraphchiState {
    /// Creates fresh state.
    pub fn new(config: GraphchiConfig, seed: u64) -> Self {
        GraphchiState {
            config,
            rng: seeded_rng(seed),
            initialized: false,
            batch_holder: None,
            resident_batches: std::collections::VecDeque::new(),
            pending_block: None,
            pending_degree_table: None,
            vertex_cursor: 0,
            vertices_created: 0,
            blocks_loaded_in_batch: 0,
            batches: 0,
            aggregate: 0.0,
        }
    }
}

/// The GraphChi workload (PR or CC).
#[derive(Debug, Clone)]
pub struct GraphchiWorkload {
    name: &'static str,
    config: GraphchiConfig,
}

impl GraphchiWorkload {
    /// PageRank on the scaled Twitter-like graph.
    pub fn pagerank() -> Self {
        GraphchiWorkload {
            name: "graphchi-pr",
            config: GraphchiConfig::paper(Algorithm::PageRank),
        }
    }

    /// Connected Components on the scaled Twitter-like graph.
    pub fn connected_components() -> Self {
        GraphchiWorkload {
            name: "graphchi-cc",
            config: GraphchiConfig::paper(Algorithm::ConnectedComponents),
        }
    }

    /// With a custom configuration.
    pub fn new(name: &'static str, config: GraphchiConfig) -> Self {
        GraphchiWorkload { name, config }
    }

    /// The configuration.
    pub fn config(&self) -> &GraphchiConfig {
        &self.config
    }
}

/// Builds the GraphChi IR program.
pub fn program() -> Program {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("GraphChi")
            .with_method(
                MethodDef::new("runBatch")
                    .push(Instr::Branch {
                        cond: "needs_init".into(),
                        then_block: vec![Instr::call("GraphChi", "init", 2)],
                        else_block: vec![],
                        line: 1,
                    })
                    .push(Instr::alloc("BatchHolder", SizeSpec::Fixed(128), 3))
                    .push(Instr::native("install_batch", 4))
                    .push(Instr::Repeat {
                        count: CountSpec::Hook("blocks_in_batch".into()),
                        body: vec![Instr::call("Shard", "loadBlock", 6)],
                        line: 5,
                    })
                    .push(Instr::Repeat {
                        count: CountSpec::Hook("vertices_in_batch".into()),
                        body: vec![Instr::call("Engine", "updateVertex", 8)],
                        line: 7,
                    })
                    .push(Instr::alloc("CommitBuf", SizeSpec::Fixed(8192), 9))
                    .push(Instr::native("end_batch", 10)),
            )
            .with_method(MethodDef::new("init").push(Instr::Repeat {
                count: CountSpec::Hook("degree_blocks".into()),
                body: vec![
                    Instr::alloc("DegreeTable", SizeSpec::Fixed(4096), 16),
                    Instr::native("register_degrees", 17),
                    Instr::call("Codec", "decode", 18),
                    Instr::native("attach_degree_codec", 19),
                ],
                line: 15,
            })),
    );
    p.add_class(
        ClassDef::new("Shard").with_method(
            MethodDef::new("loadBlock")
                .push(Instr::alloc(
                    "EdgeBlock",
                    SizeSpec::Hook("edge_block_size".into()),
                    20,
                ))
                .push(Instr::native("register_block", 21))
                .push(Instr::call("Codec", "decode", 22))
                .push(Instr::native("attach_block_codec", 23))
                .push(Instr::Branch {
                    cond: "shard_index_needed".into(),
                    then_block: vec![
                        Instr::alloc("ShardIndex", SizeSpec::Fixed(1024), 25),
                        Instr::native("register_shard_index", 26),
                    ],
                    else_block: vec![],
                    line: 24,
                }),
        ),
    );
    p.add_class(
        ClassDef::new("Codec").with_method(MethodDef::new("decode").push(Instr::alloc(
            "DecodeBuf",
            SizeSpec::Hook("decode_size".into()),
            30,
        ))),
    );
    p.add_class(
        ClassDef::new("Engine").with_method(
            MethodDef::new("updateVertex")
                .push(Instr::Branch {
                    cond: "vertex_is_new".into(),
                    then_block: vec![
                        Instr::alloc("VertexState", SizeSpec::Fixed(48), 41),
                        Instr::native("register_vertex", 42),
                        Instr::Branch {
                            cond: "needs_value_block".into(),
                            then_block: vec![
                                Instr::alloc("ValueBlock", SizeSpec::Fixed(4096), 44),
                                Instr::native("register_value_block", 45),
                            ],
                            else_block: vec![],
                            line: 43,
                        },
                    ],
                    else_block: vec![],
                    line: 40,
                })
                .push(Instr::call("Codec", "decode", 46))
                .push(Instr::alloc("MsgScratch", SizeSpec::Fixed(256), 47))
                .push(Instr::native("apply_update", 48)),
        ),
    );
    p
}

/// Builds the GraphChi hooks.
pub fn hooks() -> HookRegistry {
    let mut h = HookRegistry::new();

    h.register_cond("needs_init", |ctx| {
        !ctx.state::<GraphchiState>().initialized
    });
    h.register_cond("shard_index_needed", |ctx| {
        let s = ctx.state::<GraphchiState>();
        s.blocks_loaded_in_batch % s.config.blocks_per_shard_index == 0
    });
    h.register_cond("vertex_is_new", |ctx| {
        let s = ctx.state::<GraphchiState>();
        s.vertex_cursor = (s.vertex_cursor + 1) % s.config.num_vertices;
        s.vertices_created < s.config.num_vertices && s.vertex_cursor >= s.vertices_created
    });
    h.register_cond("needs_value_block", |ctx| {
        let s = ctx.state::<GraphchiState>();
        s.vertices_created % s.config.vertices_per_value_block == 1
    });

    h.register_count("blocks_in_batch", |ctx| {
        ctx.state::<GraphchiState>().config.blocks_per_batch
    });
    h.register_count("vertices_in_batch", |ctx| {
        ctx.state::<GraphchiState>().config.vertices_per_batch
    });
    h.register_count("degree_blocks", |ctx| {
        ctx.state::<GraphchiState>().config.degree_blocks
    });

    h.register_size("edge_block_size", |ctx| {
        let s = ctx.state::<GraphchiState>();
        3_072 + s.rng.gen_range(0..3_072)
    });
    h.register_size("decode_size", |ctx| {
        let s = ctx.state::<GraphchiState>();
        1_024 + s.rng.gen_range(0..1_024)
    });

    h.register_action("install_batch", |ctx| {
        let holder = ctx.acc.expect("BatchHolder allocated");
        let slot = ctx.heap.roots_mut().create_slot("graphchi.batch");
        ctx.heap.roots_mut().push(slot, holder);
        let s = ctx.state::<GraphchiState>();
        s.batch_holder = Some(holder);
        s.blocks_loaded_in_batch = 0;
        HookAction::default()
    });
    h.register_action("register_block", |ctx| {
        let block = ctx.acc.expect("EdgeBlock allocated");
        let holder = {
            let s = ctx.state::<GraphchiState>();
            s.blocks_loaded_in_batch += 1;
            s.pending_block = Some(block);
            s.batch_holder.expect("install_batch ran")
        };
        ctx.heap
            .add_ref(holder, block)
            .expect("holder and block are live");
        HookAction::default()
    });
    h.register_action("attach_block_codec", |ctx| {
        let buf = ctx.acc.expect("DecodeBuf allocated");
        let block = ctx
            .state::<GraphchiState>()
            .pending_block
            .take()
            .expect("block stashed");
        ctx.heap
            .add_ref(block, buf)
            .expect("block and buf are live");
        HookAction::default()
    });
    h.register_action("register_shard_index", |ctx| {
        let index = ctx.acc.expect("ShardIndex allocated");
        let holder = ctx
            .state::<GraphchiState>()
            .batch_holder
            .expect("install_batch ran");
        ctx.heap
            .add_ref(holder, index)
            .expect("holder and index are live");
        HookAction::default()
    });
    h.register_action("register_degrees", |ctx| {
        let table = ctx.acc.expect("DegreeTable allocated");
        let slot = ctx.heap.roots_mut().create_slot("graphchi.degrees");
        ctx.heap.roots_mut().push(slot, table);
        ctx.state::<GraphchiState>().pending_degree_table = Some(table);
        HookAction::default()
    });
    h.register_action("attach_degree_codec", |ctx| {
        let buf = ctx.acc.expect("DecodeBuf allocated");
        let table = ctx
            .state::<GraphchiState>()
            .pending_degree_table
            .take()
            .expect("table stashed");
        ctx.heap
            .add_ref(table, buf)
            .expect("table and buf are live");
        HookAction::default()
    });
    h.register_action("register_vertex", |ctx| {
        let vertex = ctx.acc.expect("VertexState allocated");
        let slot = ctx.heap.roots_mut().create_slot("graphchi.vertices");
        let key = {
            let s = ctx.state::<GraphchiState>();
            s.vertices_created += 1;
            s.vertex_cursor
        };
        ctx.heap.roots_mut().set_keyed(slot, key, vertex);
        HookAction::default()
    });
    h.register_action("register_value_block", |ctx| {
        let block = ctx.acc.expect("ValueBlock allocated");
        let slot = ctx.heap.roots_mut().create_slot("graphchi.values");
        ctx.heap.roots_mut().push(slot, block);
        HookAction::default()
    });
    h.register_action("apply_update", |ctx| {
        // The vertex program's arithmetic: PR accumulates damped rank mass,
        // CC takes label minima. Both write the vertex's state (dirtying its
        // page, which the incremental Dumper must then recapture).
        let (cursor, algorithm, draw) = {
            let s = ctx.state::<GraphchiState>();
            (s.vertex_cursor, s.config.algorithm, s.rng.gen::<f64>())
        };
        let slot = ctx.heap.roots_mut().create_slot("graphchi.vertices");
        if let Some(vertex) = ctx.heap.roots().keyed(slot, cursor) {
            let _ = ctx.heap.write_field(vertex);
        }
        let s = ctx.state::<GraphchiState>();
        match algorithm {
            Algorithm::PageRank => s.aggregate = 0.85 * s.aggregate + 0.15 * draw,
            Algorithm::ConnectedComponents => {
                s.aggregate = s.aggregate.min(draw * cursor as f64 + 1.0)
            }
        }
        HookAction::default()
    });
    h.register_action("end_batch", |ctx| {
        let commit = ctx.acc.expect("CommitBuf allocated");
        let (holder, retired) = {
            let s = ctx.state::<GraphchiState>();
            s.initialized = true;
            s.batches += 1;
            let holder = s.batch_holder.take();
            if let Some(h_obj) = holder {
                s.resident_batches.push_back(h_obj);
            }
            let retired = if s.resident_batches.len() > s.config.batches_in_memory {
                s.resident_batches.pop_front()
            } else {
                None
            };
            (holder, retired)
        };
        let slot = ctx.heap.roots_mut().create_slot("graphchi.batch");
        if let Some(h_obj) = holder {
            // The commit buffer rides along with the batch it commits.
            ctx.heap
                .add_ref(h_obj, commit)
                .expect("holder and commit are live");
        }
        // The oldest batch leaves the shard window; its blocks die together.
        if let Some(old) = retired {
            ctx.heap.roots_mut().remove(slot, old);
        }
        HookAction {
            cost: Some(SimDuration::from_millis(5)),
        }
    });

    h
}

/// Candidate allocation sites (Table 1's denominator for GraphChi: 9).
pub mod sites {
    use polm2_runtime::CodeLoc;

    /// All candidate allocation sites.
    pub fn candidates() -> Vec<CodeLoc> {
        vec![
            CodeLoc::new("GraphChi", "runBatch", 3),    // BatchHolder
            CodeLoc::new("GraphChi", "runBatch", 9),    // CommitBuf
            CodeLoc::new("GraphChi", "init", 16),       // DegreeTable
            CodeLoc::new("Shard", "loadBlock", 20),     // EdgeBlock
            CodeLoc::new("Shard", "loadBlock", 25),     // ShardIndex
            CodeLoc::new("Codec", "decode", 30),        // DecodeBuf (conflict)
            CodeLoc::new("Engine", "updateVertex", 41), // VertexState
            CodeLoc::new("Engine", "updateVertex", 44), // ValueBlock
            CodeLoc::new("Engine", "updateVertex", 47), // MsgScratch
        ]
    }
}

/// The manual NG2C annotations for GraphChi: the batch-lived load path in
/// gen 2, the run-lived state in gen 3. The expert missed the `Codec.decode`
/// conflict (Table 1: POLM2 found a conflict NG2C's annotations did not
/// handle) — the decode site is left unannotated, so block decode buffers
/// churn through the young generation.
fn manual_profile() -> AllocationProfile {
    let mut p = AllocationProfile::new();
    let g2 = GenId::new(2);
    let g3 = GenId::new(3);
    for (loc, gen) in [
        (CodeLoc::new("GraphChi", "runBatch", 3), g2),
        (CodeLoc::new("GraphChi", "runBatch", 9), g2),
        (CodeLoc::new("Shard", "loadBlock", 20), g2),
        (CodeLoc::new("Shard", "loadBlock", 25), g2),
        (CodeLoc::new("GraphChi", "init", 16), g3),
        (CodeLoc::new("Engine", "updateVertex", 41), g3),
        (CodeLoc::new("Engine", "updateVertex", 44), g3),
    ] {
        p.add_site(PretenuredSite {
            loc,
            gen,
            local: true,
        });
    }
    // One wrapper the expert did place: the whole load loop runs in gen 2.
    p.add_gen_call(GenCall {
        at: CodeLoc::new("GraphChi", "runBatch", 6),
        gen: g2,
    });
    p
}

impl Workload for GraphchiWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn program(&self) -> Program {
        program()
    }

    fn hooks(&self) -> HookRegistry {
        hooks()
    }

    fn new_state(&self, seed: u64) -> Box<dyn Any> {
        Box::new(GraphchiState::new(self.config.clone(), seed))
    }

    fn entry(&self) -> (&'static str, &'static str) {
        ("GraphChi", "runBatch")
    }

    fn op_cost(&self) -> SimDuration {
        self.config.op_cost
    }

    fn manual_profile(&self) -> AllocationProfile {
        manual_profile()
    }

    fn candidate_sites(&self) -> u32 {
        sites::candidates().len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_runtime::{Jvm, RuntimeConfig};

    fn boot(algorithm: Algorithm) -> Jvm {
        let w = GraphchiWorkload::new("graphchi-test", GraphchiConfig::small(algorithm));
        Jvm::builder(RuntimeConfig::small())
            .hooks(w.hooks())
            .state(w.new_state(5))
            .build(w.program())
            .expect("program loads")
    }

    #[test]
    fn program_has_the_documented_sites() {
        assert_eq!(program().alloc_site_count(), sites::candidates().len());
    }

    #[test]
    fn batches_load_blocks_that_die_when_leaving_the_window() {
        let mut jvm = boot(Algorithm::PageRank);
        let t = jvm.spawn_thread();
        // The small config keeps 2 batches resident; run 4 so the first two
        // leave the window.
        for _ in 0..4 {
            jvm.invoke(t, "GraphChi", "runBatch").unwrap();
        }
        assert_eq!(jvm.state_mut::<GraphchiState>().batches, 4);
        jvm.force_collect().unwrap();
        let block_class = jvm.heap().classes().lookup("EdgeBlock").unwrap();
        let live = jvm.heap_mut().mark_live(&[]);
        let live_blocks = live
            .iter()
            .filter(|&id| jvm.heap().object(id).map(|o| o.class()) == Some(block_class))
            .count() as u32;
        let per_batch = jvm.state_mut::<GraphchiState>().config.blocks_per_batch;
        assert_eq!(
            live_blocks,
            2 * per_batch,
            "exactly the resident window's blocks survive"
        );
    }

    #[test]
    fn vertex_state_survives_batches() {
        let mut jvm = boot(Algorithm::ConnectedComponents);
        let t = jvm.spawn_thread();
        for _ in 0..3 {
            jvm.invoke(t, "GraphChi", "runBatch").unwrap();
        }
        jvm.force_collect().unwrap();
        let vertex_class = jvm.heap().classes().lookup("VertexState").unwrap();
        let live = jvm.heap_mut().mark_live(&[]);
        let live_vertices = live
            .iter()
            .filter(|&id| jvm.heap().object(id).map(|o| o.class()) == Some(vertex_class))
            .count() as u64;
        let created = jvm.state_mut::<GraphchiState>().vertices_created;
        assert_eq!(live_vertices, created);
        assert!(created > 0);
    }

    #[test]
    fn init_runs_once_and_degree_tables_persist() {
        let mut jvm = boot(Algorithm::PageRank);
        let t = jvm.spawn_thread();
        jvm.invoke(t, "GraphChi", "runBatch").unwrap();
        let class = jvm.heap().classes().lookup("DegreeTable").unwrap();
        let count_tables = |jvm: &mut Jvm| {
            let live = jvm.heap_mut().mark_live(&[]);
            live.iter()
                .filter(|&id| jvm.heap().object(id).map(|o| o.class()) == Some(class))
                .count()
        };
        let first = count_tables(&mut jvm);
        jvm.invoke(t, "GraphChi", "runBatch").unwrap();
        let second = count_tables(&mut jvm);
        assert_eq!(first, second, "init must not re-run");
        assert_eq!(first, 16);
    }

    #[test]
    fn both_algorithms_make_progress() {
        for algorithm in [Algorithm::PageRank, Algorithm::ConnectedComponents] {
            let mut jvm = boot(algorithm);
            let t = jvm.spawn_thread();
            for _ in 0..2 {
                jvm.invoke(t, "GraphChi", "runBatch").unwrap();
            }
            assert!(jvm.state_mut::<GraphchiState>().aggregate.is_finite());
            jvm.heap().check_invariants();
        }
    }

    #[test]
    fn manual_profile_misses_the_decode_conflict() {
        let p = manual_profile();
        assert!(p.site_at(&CodeLoc::new("Codec", "decode", 30)).is_none());
        assert_eq!(p.sites().len(), 7);
    }
}
