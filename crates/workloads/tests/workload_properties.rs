//! Property-based and scenario tests across the workload simulations.

use proptest::prelude::*;

use polm2_metrics::SimDuration;
use polm2_runtime::{Jvm, RuntimeConfig};
use polm2_workloads::cassandra::{self, CassandraConfig, CassandraState, CassandraWorkload};
use polm2_workloads::paper_workloads;
use polm2_workloads::workload::Workload;
use polm2_workloads::OpMix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the seed and mix, a few thousand Cassandra operations leave
    /// the heap consistent and within bounds.
    #[test]
    fn cassandra_is_sound_for_any_seed(seed in 0u64..1_000, read_permille in 0u16..1000) {
        let config = CassandraConfig::small(OpMix { read_permille });
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(cassandra::hooks())
            .state(Box::new(CassandraState::new(config, seed)))
            .build(cassandra::program())
            .expect("boot");
        let t = jvm.spawn_thread();
        for _ in 0..3_000 {
            jvm.invoke(t, "Cassandra", "handleOp").expect("op");
        }
        jvm.heap().check_invariants();
        prop_assert!(jvm.heap().committed_bytes() <= jvm.heap().config().total_bytes);
        prop_assert!(jvm.heap().stats().allocated_objects > 0);
    }

    /// Identical seeds produce identical simulations, op for op.
    #[test]
    fn workload_execution_is_deterministic(seed in 0u64..1_000) {
        let run = |seed| {
            let w = CassandraWorkload::new(
                "cassandra-prop",
                CassandraConfig::small(OpMix::WRITE_READ),
            );
            let mut jvm = Jvm::builder(RuntimeConfig::small())
                .hooks(w.hooks())
                .state(w.new_state(seed))
                .build(w.program())
                .expect("boot");
            let t = jvm.spawn_thread();
            for _ in 0..2_000 {
                jvm.invoke(t, "Cassandra", "handleOp").expect("op");
            }
            (
                jvm.heap().stats().allocated_objects,
                jvm.heap().stats().allocated_bytes,
                jvm.gc_log().cycle_count(),
                jvm.now(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

#[test]
fn every_paper_workload_sustains_extended_execution() {
    // A slow-burn smoke test over all six workloads at paper scale: a
    // simulated minute each, heap invariants checked at the end.
    for workload in paper_workloads() {
        let mut jvm = Jvm::builder(RuntimeConfig::paper_scaled())
            .hooks(workload.hooks())
            .state(workload.new_state(11))
            .build(workload.program())
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
        let t = jvm.spawn_thread();
        let (class, method) = workload.entry();
        let end = polm2_metrics::SimTime::ZERO + SimDuration::from_secs(60);
        let mut ops = 0u64;
        while jvm.now() < end {
            jvm.invoke(t, class, method)
                .unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
            jvm.advance_mutator(workload.op_cost());
            ops += 1;
        }
        assert!(ops > 10, "{} made progress", workload.name());
        jvm.heap().check_invariants();
        assert!(
            jvm.heap().committed_bytes() <= jvm.heap().config().total_bytes,
            "{} stayed within the heap",
            workload.name()
        );
    }
}
