//! Garbage collectors for the simulated heap.
//!
//! The paper evaluates three collectors; this crate implements all of them
//! against the [`polm2-heap`] substrate plus the shared cost model that turns
//! collection *work* (bytes traced, copied, promoted, compacted) into
//! simulated stop-the-world pause durations:
//!
//! * [`G1Collector`] — the OpenJDK default: two generations, copying young
//!   collections with a tenuring threshold, incremental mixed collections
//!   that compact fragmented old regions. Middle-lived data is promoted and
//!   compacted en masse — the pathology the paper attacks.
//! * [`Ng2cCollector`] — NG2C (Bruno et al., ISMM '17): N dynamic
//!   generations and the pretenuring API (`new_generation`,
//!   `get_target_gen`, `set_target_gen`, and `@Gen`-style pretenured
//!   allocation). Objects with similar lifetimes co-locate, so whole regions
//!   die together and the collector reclaims them without copying.
//! * [`C4Collector`] — Azul's continuously concurrent compacting collector:
//!   sub-10 ms bounded pauses, a read/write-barrier throughput tax on every
//!   mutator operation, and full heap pre-reservation.
//!
//! [`polm2-heap`]: ../polm2_heap/index.html
//!
//! # Examples
//!
//! ```
//! use polm2_gc::{Collector, G1Collector, GcConfig, AllocRequest, SafepointRoots, ThreadId};
//! use polm2_heap::{Heap, HeapConfig, SiteId};
//!
//! let mut heap = Heap::new(HeapConfig::small());
//! let mut gc = G1Collector::new(GcConfig::default());
//! gc.attach(&mut heap);
//! let class = heap.classes_mut().intern("Row");
//! let req = AllocRequest {
//!     class,
//!     size: 256,
//!     site: SiteId::new(0),
//!     pretenure: false,
//!     thread: ThreadId::new(0),
//! };
//! let outcome = gc.alloc(&mut heap, req, &SafepointRoots::none())?;
//! assert!(heap.object(outcome.object).is_some());
//! # Ok::<(), polm2_gc::GcError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod c4;
mod collector;
mod config;
mod costs;
mod error;
mod events;
mod g1;
mod ng2c;

pub use c4::C4Collector;
pub use collector::{AllocOutcome, AllocRequest, Collector, SafepointRoots, ThreadId};
pub use config::GcConfig;
pub use costs::{CostModel, GcWork};
pub use error::GcError;
pub use events::{GcEvent, GcKind, GcLog, PauseEvent};
pub use g1::G1Collector;
pub use ng2c::Ng2cCollector;
