//! Collector tuning knobs.

use crate::CostModel;

/// Tuning parameters shared by the collectors.
///
/// Defaults mirror the paper's setup: fixed heap and young sizes (enforced by
/// [`HeapConfig`]), a G1-like tenuring threshold, and incremental mixed
/// collections.
///
/// [`HeapConfig`]: polm2_heap::HeapConfig
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Young-generation collections an object must survive before promotion.
    pub tenure_threshold: u8,
    /// Young-to-survivor size ratio (the `-XX:SurvivorRatio` analogue):
    /// survivors beyond `young_bytes / survivor_ratio` are promoted
    /// prematurely, as in G1.
    pub survivor_ratio: u64,
    /// Start mixed collections when committed bytes exceed this fraction of
    /// the total heap.
    pub mixed_trigger_fraction: f64,
    /// Compact an old region when its live fraction is below this value;
    /// denser regions are left in place (they would cost more than they
    /// free).
    pub compact_live_fraction: f64,
    /// Upper bound on regions swept+compacted per mixed pause (G1's
    /// incremental collection-set sizing).
    pub max_compact_regions_per_pause: u32,
    /// Mixed pauses served by one (conceptually concurrent) marking cycle
    /// before the next cycle runs.
    pub mark_cycle_uses: u32,
    /// Worker threads for the stop-the-world mark and evacuation phases.
    /// Results are bit-identical at any worker count (see DESIGN.md §15);
    /// workers shorten the wall-clock mark/evacuate, never the simulated
    /// trajectory. `1` keeps the serial path.
    pub gc_workers: usize,
    /// The pause-pricing coefficients.
    pub cost: CostModel,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            tenure_threshold: 6,
            survivor_ratio: 8,
            mixed_trigger_fraction: 0.60,
            compact_live_fraction: 0.75,
            max_compact_regions_per_pause: 48,
            mark_cycle_uses: 2,
            gc_workers: 1,
            cost: CostModel::default(),
        }
    }
}

impl GcConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range fractions or a zero compaction
    /// budget.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.mixed_trigger_fraction) {
            return Err("mixed_trigger_fraction must be within [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.compact_live_fraction) {
            return Err("compact_live_fraction must be within [0, 1]".into());
        }
        if self.max_compact_regions_per_pause == 0 {
            return Err("max_compact_regions_per_pause must be positive".into());
        }
        if self.survivor_ratio == 0 {
            return Err("survivor_ratio must be positive".into());
        }
        if self.mark_cycle_uses == 0 {
            return Err("mark_cycle_uses must be positive".into());
        }
        if self.gc_workers == 0 {
            return Err("gc_workers must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GcConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_fractions_rejected() {
        let c = GcConfig {
            mixed_trigger_fraction: 1.5,
            ..GcConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GcConfig {
            compact_live_fraction: -0.1,
            ..GcConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GcConfig {
            max_compact_regions_per_pause: 0,
            ..GcConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GcConfig {
            survivor_ratio: 0,
            ..GcConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GcConfig {
            mark_cycle_uses: 0,
            ..GcConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GcConfig {
            gc_workers: 0,
            ..GcConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
