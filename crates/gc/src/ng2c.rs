//! The NG2C pretenuring collector.

use std::collections::HashMap;

use polm2_heap::{GenId, Heap, HeapError, SpaceId};

use crate::collector::{
    ensure_mark, evacuate_young, oom_if_exhausted, over_mixed_trigger, pool_pressure,
    reclaim_spaces, survivor_cap, AllocOutcome, AllocRequest, Collector, MarkCycle, SafepointRoots,
    ThreadId,
};
use crate::{GcConfig, GcError, GcKind, GcWork, PauseEvent};

/// NG2C: an N-generational pretenuring collector (Bruno et al., ISMM '17).
///
/// Extends the 2-generation design with dynamically created generations and
/// the API POLM2's Instrumenter targets:
///
/// * [`new_generation`](Collector::new_generation) — create a generation at
///   runtime;
/// * [`set_target_gen`](Collector::set_target_gen) /
///   [`target_gen`](Collector::target_gen) — the thread-local *target
///   generation*;
/// * `@Gen`-annotated allocation — an [`AllocRequest`] with
///   `pretenure: true` is placed directly in the thread's target generation.
///
/// Because objects with similar lifetimes are co-located, whole regions die
/// together and are released without copying — the mechanism behind the
/// paper's pause-time reductions.
#[derive(Debug)]
pub struct Ng2cCollector {
    config: GcConfig,
    /// `gen_spaces[g]` is the space for logical generation `g`;
    /// index 0 is the young space.
    gen_spaces: Vec<SpaceId>,
    /// Thread-local target generations (NG2C keeps these in the JVM thread).
    targets: HashMap<ThreadId, GenId>,
    /// The current (conceptually concurrent) marking cycle.
    mark: Option<MarkCycle>,
    /// Last-resort full collections forced by a failed allocation.
    emergency_collections: u64,
}

impl Ng2cCollector {
    /// Creates an NG2C collector with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GcConfig::validate`].
    pub fn new(config: GcConfig) -> Self {
        config.validate().expect("invalid GC configuration");
        Ng2cCollector {
            config,
            gen_spaces: Vec::new(),
            targets: HashMap::new(),
            mark: None,
            emergency_collections: 0,
        }
    }

    /// The collector's tuning parameters.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// Number of generations currently in existence (young included).
    pub fn generation_count(&self) -> usize {
        self.gen_spaces.len()
    }

    /// The space backing logical generation `gen`.
    ///
    /// # Errors
    ///
    /// [`GcError::UnknownGeneration`] if the generation was never created.
    pub fn space_of(&self, gen: GenId) -> Result<SpaceId, GcError> {
        self.gen_spaces
            .get(gen.raw() as usize)
            .copied()
            .ok_or(GcError::UnknownGeneration { gen: gen.raw() })
    }

    fn old_space(&self) -> SpaceId {
        self.gen_spaces[1]
    }

    fn old_spaces(&self) -> Vec<SpaceId> {
        self.gen_spaces[1..].to_vec()
    }

    fn minor(
        &mut self,
        heap: &mut Heap,
        roots: &SafepointRoots<'_>,
    ) -> Result<PauseEvent, GcError> {
        // Minor collections trace only the young generation (remembered set
        // + roots); the old spaces are assumed live.
        let live = heap.mark_live_young(roots.stack_roots());
        let work = evacuate_young(
            heap,
            &live,
            self.config.tenure_threshold,
            self.old_space(),
            survivor_cap(heap, self.config.survivor_ratio),
        )?;
        heap.retire_live_set(live);
        Ok(PauseEvent {
            kind: GcKind::Minor,
            pause: self.config.cost.pause(&work),
            work,
        })
    }

    fn mixed(
        &mut self,
        heap: &mut Heap,
        roots: &SafepointRoots<'_>,
    ) -> Result<PauseEvent, GcError> {
        let young_live = heap.mark_live_young(roots.stack_roots());
        let young = evacuate_young(
            heap,
            &young_live,
            self.config.tenure_threshold,
            self.old_space(),
            survivor_cap(heap, self.config.survivor_ratio),
        )?;
        heap.retire_live_set(young_live);
        ensure_mark(&mut self.mark, heap, roots, self.config.mark_cycle_uses);
        let mark = self.mark.as_ref().expect("ensured above");
        let olds = reclaim_spaces(
            heap,
            mark,
            &self.old_spaces(),
            self.config.compact_live_fraction,
            self.config.max_compact_regions_per_pause,
        )?;
        let work = young.merged(olds);
        Ok(PauseEvent {
            kind: GcKind::Mixed,
            pause: self.config.cost.pause(&work),
            work,
        })
    }

    fn full(&mut self, heap: &mut Heap, roots: &SafepointRoots<'_>) -> Result<PauseEvent, GcError> {
        let cycle = MarkCycle::run(heap, roots);
        let young = evacuate_young(
            heap,
            &cycle.live,
            0,
            self.old_space(),
            survivor_cap(heap, self.config.survivor_ratio),
        )?;
        let olds = reclaim_spaces(heap, &cycle, &self.old_spaces(), 1.0, u32::MAX)?;
        if let Some(stale) = self.mark.take() {
            heap.retire_live_set(stale.live);
        }
        // See `G1Collector::full`: after a full cycle the mark's live set is
        // exact, so publish it for snapshot reuse (root-table-only traces).
        if roots.stack_roots().is_empty() {
            heap.publish_live(cycle.live);
        } else {
            heap.retire_live_set(cycle.live);
        }
        let work = young.merged(olds);
        // Cycle boundary: let the backend run deferred allocator
        // maintenance (tenured free-list coalescing).
        heap.note_gc_cycle_finished();
        Ok(PauseEvent {
            kind: GcKind::Full,
            pause: self.config.cost.pause(&work),
            work,
        })
    }

    fn alloc_space(&self, req: &AllocRequest) -> Result<SpaceId, GcError> {
        if req.pretenure {
            self.space_of(self.target_gen(req.thread))
        } else {
            Ok(Heap::YOUNG_SPACE)
        }
    }
}

impl Collector for Ng2cCollector {
    fn name(&self) -> &'static str {
        "NG2C"
    }

    fn attach(&mut self, heap: &mut Heap) {
        assert!(self.gen_spaces.is_empty(), "collector already attached");
        self.gen_spaces.push(Heap::YOUNG_SPACE);
        // Generation 1 is the classic old generation (age-out target).
        self.gen_spaces.push(heap.create_space(GenId::new(1), None));
        heap.set_gc_workers(self.config.gc_workers);
    }

    fn alloc(
        &mut self,
        heap: &mut Heap,
        req: AllocRequest,
        roots: &SafepointRoots<'_>,
    ) -> Result<AllocOutcome, GcError> {
        let mut pauses = Vec::new();
        // Old-space growth (promotion, pretenuring) drains the shared pool
        // without ever failing a young allocation; collect pre-emptively so
        // evacuation always has to-space available.
        if pool_pressure(heap) {
            // Under pool pressure the floating garbage of the current mark
            // cycle is what is squeezing us: refresh the mark, then reclaim
            // incrementally; a full collection is the last resort.
            if let Some(stale) = self.mark.take() {
                heap.retire_live_set(stale.live);
            }
            pauses.push(
                self.mixed(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
            if pool_pressure(heap) {
                pauses.push(
                    self.full(heap, roots)
                        .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
                );
            }
        }
        let space = self.alloc_space(&req)?;
        // A hard heap-limit miss (`OutOfMemory`) is retried the same way
        // pool exhaustion is: collection frees budget too.
        match heap.allocate(req.class, req.size, req.site, space) {
            Ok(object) => return Ok(AllocOutcome { object, pauses }),
            Err(HeapError::SpaceFull { .. })
            | Err(HeapError::OutOfRegions { .. })
            | Err(HeapError::OutOfMemory { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        if pool_pressure(heap) {
            pauses.push(
                self.full(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
        } else if over_mixed_trigger(heap, self.config.mixed_trigger_fraction) {
            pauses.push(
                self.mixed(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
        } else {
            pauses.push(
                self.minor(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
        }
        match heap.allocate(req.class, req.size, req.site, space) {
            Ok(object) => return Ok(AllocOutcome { object, pauses }),
            Err(HeapError::SpaceFull { .. })
            | Err(HeapError::OutOfRegions { .. })
            | Err(HeapError::OutOfMemory { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        // Last resort: one emergency full collection, then the verdict.
        self.emergency_collections += 1;
        pauses.push(
            self.full(heap, roots)
                .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
        );
        match heap.allocate(req.class, req.size, req.site, space) {
            Ok(object) => Ok(AllocOutcome { object, pauses }),
            Err(_) => Err(GcError::OutOfMemory {
                requested: u64::from(req.size),
            }),
        }
    }

    fn collect(&mut self, heap: &mut Heap, roots: &SafepointRoots<'_>) -> Vec<PauseEvent> {
        match self.full(heap, roots) {
            Ok(p) => vec![p],
            Err(_) => vec![PauseEvent {
                kind: GcKind::Full,
                pause: self.config.cost.pause(&GcWork::default()),
                work: GcWork::default(),
            }],
        }
    }

    fn new_generation(&mut self, heap: &mut Heap) -> GenId {
        let gen = GenId::new(self.gen_spaces.len() as u32);
        let space = heap.create_space(gen, None);
        self.gen_spaces.push(space);
        gen
    }

    fn set_target_gen(&mut self, thread: ThreadId, gen: GenId) -> Result<GenId, GcError> {
        if gen.raw() as usize >= self.gen_spaces.len() {
            return Err(GcError::UnknownGeneration { gen: gen.raw() });
        }
        Ok(self.targets.insert(thread, gen).unwrap_or(GenId::YOUNG))
    }

    fn target_gen(&self, thread: ThreadId) -> GenId {
        self.targets.get(&thread).copied().unwrap_or(GenId::YOUNG)
    }

    fn emergency_collections(&self) -> u64 {
        self.emergency_collections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{HeapConfig, SiteId};

    fn setup() -> (Heap, Ng2cCollector) {
        let mut heap = Heap::new(HeapConfig::small());
        let mut gc = Ng2cCollector::new(GcConfig::default());
        gc.attach(&mut heap);
        (heap, gc)
    }

    fn req(heap: &mut Heap, size: u32, pretenure: bool) -> AllocRequest {
        AllocRequest {
            class: heap.classes_mut().intern("T"),
            size,
            site: SiteId::new(0),
            pretenure,
            thread: ThreadId::new(0),
        }
    }

    #[test]
    fn attach_creates_young_and_old() {
        let (_, gc) = setup();
        assert_eq!(gc.generation_count(), 2);
        assert_eq!(gc.space_of(GenId::YOUNG).unwrap(), Heap::YOUNG_SPACE);
        assert!(gc.space_of(GenId::new(2)).is_err());
    }

    #[test]
    fn target_generation_api_round_trips() {
        let (mut heap, mut gc) = setup();
        let t = ThreadId::new(7);
        assert_eq!(gc.target_gen(t), GenId::YOUNG);
        let g2 = gc.new_generation(&mut heap);
        assert_eq!(g2, GenId::new(2));
        let prev = gc.set_target_gen(t, g2).unwrap();
        assert_eq!(prev, GenId::YOUNG);
        assert_eq!(gc.target_gen(t), g2);
        let prev = gc.set_target_gen(t, GenId::YOUNG).unwrap();
        assert_eq!(prev, g2);
        assert!(gc.set_target_gen(t, GenId::new(9)).is_err());
    }

    #[test]
    fn pretenured_allocation_lands_in_target_generation() {
        let (mut heap, mut gc) = setup();
        let t = ThreadId::new(0);
        let gen = gc.new_generation(&mut heap);
        gc.set_target_gen(t, gen).unwrap();
        let r = req(&mut heap, 256, true);
        let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
        assert_eq!(
            heap.object(out.object).unwrap().space(),
            gc.space_of(gen).unwrap()
        );
        assert_eq!(heap.object(out.object).unwrap().allocated_gen(), gen);
        // Non-pretenured allocation still goes young.
        let r = req(&mut heap, 256, false);
        let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
        assert_eq!(heap.object(out.object).unwrap().space(), Heap::YOUNG_SPACE);
    }

    #[test]
    fn pretenuring_reduces_copying_for_cohort_lifetimes() {
        // A memtable-style cohort: N objects live together, then die together.
        // Compare collector work with and without pretenuring.
        let run = |pretenure: bool| -> (u64, u64) {
            let (mut heap, mut gc) = setup();
            let t = ThreadId::new(0);
            if pretenure {
                let gen = gc.new_generation(&mut heap);
                gc.set_target_gen(t, gen).unwrap();
            }
            let slot = heap.roots_mut().create_slot("memtable");
            let mut moved = 0u64;
            let mut freed_whole = 0u64;
            for _batch in 0..6 {
                let mut cohort = Vec::new();
                // Allocate a cohort that outlives several young collections.
                for _ in 0..512 {
                    let r = req(&mut heap, 2048, pretenure);
                    let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
                    for p in &out.pauses {
                        moved += p.work.moved_bytes();
                        freed_whole += p.work.freed_regions;
                    }
                    heap.roots_mut().push(slot, out.object);
                    cohort.push(out.object);
                }
                // Churn young garbage so collections happen while the cohort lives.
                for _ in 0..512 {
                    let r = req(&mut heap, 2048, false);
                    let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
                    for p in &out.pauses {
                        moved += p.work.moved_bytes();
                        freed_whole += p.work.freed_regions;
                    }
                }
                // Flush: the whole cohort dies at once.
                heap.roots_mut().clear_slot(slot);
            }
            (moved, freed_whole)
        };
        let (moved_plain, _) = run(false);
        let (moved_pretenured, freed_pretenured) = run(true);
        assert!(
            moved_pretenured * 2 < moved_plain,
            "pretenuring should at least halve moved bytes: {moved_pretenured} vs {moved_plain}"
        );
        assert!(freed_pretenured > 0, "cohort regions should be freed whole");
    }

    #[test]
    fn generation_spaces_are_reclaimed_when_cohorts_die() {
        let (mut heap, mut gc) = setup();
        let t = ThreadId::new(0);
        let gen = gc.new_generation(&mut heap);
        gc.set_target_gen(t, gen).unwrap();
        let slot = heap.roots_mut().create_slot("cohort");
        for _ in 0..256 {
            let r = req(&mut heap, 4096, true);
            let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
            heap.roots_mut().push(slot, out.object);
        }
        let space = gc.space_of(gen).unwrap();
        assert!(heap.used_bytes(space).unwrap() > 0);
        heap.roots_mut().clear_slot(slot);
        gc.collect(&mut heap, &SafepointRoots::none());
        assert_eq!(
            heap.used_bytes(space).unwrap(),
            0,
            "dead cohort space must drain"
        );
        heap.check_invariants();
    }

    #[test]
    fn distinct_threads_have_distinct_targets() {
        let (mut heap, mut gc) = setup();
        let g2 = gc.new_generation(&mut heap);
        let g3 = gc.new_generation(&mut heap);
        gc.set_target_gen(ThreadId::new(1), g2).unwrap();
        gc.set_target_gen(ThreadId::new(2), g3).unwrap();
        assert_eq!(gc.target_gen(ThreadId::new(1)), g2);
        assert_eq!(gc.target_gen(ThreadId::new(2)), g3);
        assert_eq!(gc.target_gen(ThreadId::new(3)), GenId::YOUNG);
    }
}
