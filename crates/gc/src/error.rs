//! Collector error type.

use std::error::Error;
use std::fmt;

use polm2_heap::HeapError;

/// Errors produced by collectors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GcError {
    /// The heap could not satisfy an allocation even after a full collection.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: u64,
    },
    /// An underlying heap operation failed in a way the collector cannot
    /// recover from.
    Heap(HeapError),
    /// A thread referenced a generation that was never created.
    UnknownGeneration {
        /// The raw generation number.
        gen: u32,
    },
}

impl fmt::Display for GcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcError::OutOfMemory { requested } => {
                write!(
                    f,
                    "out of memory allocating {requested} bytes after full collection"
                )
            }
            GcError::Heap(e) => write!(f, "heap operation failed: {e}"),
            GcError::UnknownGeneration { gen } => write!(f, "generation {gen} was never created"),
        }
    }
}

impl Error for GcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GcError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for GcError {
    fn from(e: HeapError) -> Self {
        GcError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::SpaceId;

    #[test]
    fn display_and_source() {
        let e = GcError::OutOfMemory { requested: 64 };
        assert!(e.to_string().contains("64 bytes"));
        let e = GcError::from(HeapError::NoSuchSpace {
            space: SpaceId::new(3),
        });
        assert!(e.to_string().contains("space#3"));
        assert!(Error::source(&e).is_some());
        let e = GcError::UnknownGeneration { gen: 9 };
        assert!(e.to_string().contains('9'));
    }
}
