//! GC event log.

use polm2_metrics::{IntervalHistogram, PauseHistogram, SimDuration, SimTime};

use crate::GcWork;

/// The kind of collection a pause belonged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcKind {
    /// Young-generation (minor) collection.
    Minor,
    /// Mixed collection: young plus a slice of old regions.
    Mixed,
    /// Full collection: everything, with compaction.
    Full,
    /// A bounded safepoint of a concurrent collector (C4 phase flip).
    ConcurrentPhase,
}

impl GcKind {
    /// Short label for logs and tables.
    pub fn label(self) -> &'static str {
        match self {
            GcKind::Minor => "minor",
            GcKind::Mixed => "mixed",
            GcKind::Full => "full",
            GcKind::ConcurrentPhase => "concurrent-phase",
        }
    }
}

/// A pause produced by a collector, not yet stamped with a time.
///
/// Collectors return these from [`Collector::alloc`]; the runtime assigns the
/// timestamp (it owns the clock) and appends the stamped [`GcEvent`] to the
/// [`GcLog`].
///
/// [`Collector::alloc`]: crate::Collector::alloc
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauseEvent {
    /// What kind of collection paused the world.
    pub kind: GcKind,
    /// How long the world was stopped.
    pub pause: SimDuration,
    /// The work performed during the pause.
    pub work: GcWork,
}

/// A stamped pause event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcEvent {
    /// When the pause began.
    pub at: SimTime,
    /// What kind of collection paused the world.
    pub kind: GcKind,
    /// How long the world was stopped.
    pub pause: SimDuration,
    /// The work performed during the pause.
    pub work: GcWork,
}

/// Append-only log of stamped GC events.
///
/// # Examples
///
/// ```
/// use polm2_gc::{GcEvent, GcKind, GcLog, GcWork};
/// use polm2_metrics::{SimDuration, SimTime};
///
/// let mut log = GcLog::new();
/// log.push(GcEvent {
///     at: SimTime::from_secs(1),
///     kind: GcKind::Minor,
///     pause: SimDuration::from_millis(12),
///     work: GcWork::default(),
/// });
/// assert_eq!(log.cycle_count(), 1);
/// assert_eq!(log.total_pause(), SimDuration::from_millis(12));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GcLog {
    events: Vec<GcEvent>,
}

impl GcLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        GcLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: GcEvent) {
        self.events.push(event);
    }

    /// All events, oldest first.
    pub fn events(&self) -> &[GcEvent] {
        &self.events
    }

    /// Number of completed GC cycles (the Recorder's snapshot trigger counts
    /// these).
    pub fn cycle_count(&self) -> usize {
        self.events.len()
    }

    /// Total stop-the-world time.
    pub fn total_pause(&self) -> SimDuration {
        self.events.iter().map(|e| e.pause).sum()
    }

    /// Pause histogram over events at or after `since` (the paper ignores
    /// the first five minutes of every run).
    pub fn pause_histogram(&self, since: SimTime) -> PauseHistogram {
        self.events
            .iter()
            .filter(|e| e.at >= since)
            .map(|e| e.pause)
            .collect()
    }

    /// Duration-interval histogram over events at or after `since`
    /// (Figure 6).
    pub fn interval_histogram(&self, since: SimTime) -> IntervalHistogram {
        let mut h = IntervalHistogram::paper_default();
        h.extend(
            self.events
                .iter()
                .filter(|e| e.at >= since)
                .map(|e| e.pause),
        );
        h
    }

    /// Events of one kind.
    pub fn events_of(&self, kind: GcKind) -> impl Iterator<Item = &GcEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Aggregate work across all events.
    pub fn total_work(&self) -> GcWork {
        self.events
            .iter()
            .fold(GcWork::default(), |acc, e| acc.merged(e.work))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(at_s: u64, ms: u64, kind: GcKind) -> GcEvent {
        GcEvent {
            at: SimTime::from_secs(at_s),
            kind,
            pause: SimDuration::from_millis(ms),
            work: GcWork {
                copied_bytes: ms,
                ..GcWork::default()
            },
        }
    }

    #[test]
    fn log_accumulates() {
        let mut log = GcLog::new();
        log.push(event(1, 10, GcKind::Minor));
        log.push(event(2, 20, GcKind::Mixed));
        assert_eq!(log.cycle_count(), 2);
        assert_eq!(log.total_pause(), SimDuration::from_millis(30));
        assert_eq!(log.events_of(GcKind::Minor).count(), 1);
        assert_eq!(log.total_work().copied_bytes, 30);
    }

    #[test]
    fn histograms_respect_warmup_cutoff() {
        let mut log = GcLog::new();
        log.push(event(1, 500, GcKind::Full)); // warm-up noise
        log.push(event(400, 10, GcKind::Minor));
        let h = log.pause_histogram(SimTime::from_secs(300));
        assert_eq!(h.len(), 1);
        let ih = log.interval_histogram(SimTime::from_secs(300));
        assert_eq!(ih.total(), 1);
        let all = log.pause_histogram(SimTime::ZERO);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(GcKind::Minor.label(), "minor");
        assert_eq!(GcKind::Mixed.label(), "mixed");
        assert_eq!(GcKind::Full.label(), "full");
        assert_eq!(GcKind::ConcurrentPhase.label(), "concurrent-phase");
    }
}
