//! The [`Collector`] trait and the shared collection phases.

use std::fmt;

use polm2_heap::{EvacDecision, GenId, Heap, HeapError, LiveSet, ObjectId, SpaceId};

use crate::{GcError, GcWork, PauseEvent};

/// Identifies one mutator thread (the unit NG2C's target generation is local
/// to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Wraps a raw thread index.
    pub const fn new(raw: u32) -> Self {
        ThreadId(raw)
    }

    /// The raw thread index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread#{}", self.0)
    }
}

/// The mutator stack roots visible at a safepoint.
///
/// The runtime maintains frame roots per thread; when allocation triggers a
/// collection, it hands the flattened set here so in-flight objects survive.
#[derive(Debug, Clone, Copy)]
pub struct SafepointRoots<'a> {
    stack_roots: &'a [ObjectId],
}

impl<'a> SafepointRoots<'a> {
    /// Roots from the given slice.
    pub fn new(stack_roots: &'a [ObjectId]) -> Self {
        SafepointRoots { stack_roots }
    }

    /// No stack roots (tests, detached contexts).
    pub fn none() -> SafepointRoots<'static> {
        SafepointRoots { stack_roots: &[] }
    }

    /// The stack roots.
    pub fn stack_roots(&self) -> &[ObjectId] {
        self.stack_roots
    }
}

/// One allocation request from the runtime.
#[derive(Debug, Clone, Copy)]
pub struct AllocRequest {
    /// Class of the new object.
    pub class: polm2_heap::ClassId,
    /// Size in bytes.
    pub size: u32,
    /// Allocation site performing the request.
    pub site: polm2_heap::SiteId,
    /// True if the site is `@Gen`-annotated: allocate into the requesting
    /// thread's current target generation instead of the young generation.
    /// Collectors without pretenuring support ignore this.
    pub pretenure: bool,
    /// The requesting thread.
    pub thread: ThreadId,
}

/// The result of a successful allocation: the object plus any pauses the
/// collector had to take to satisfy it.
#[derive(Debug, Clone)]
pub struct AllocOutcome {
    /// The new object.
    pub object: ObjectId,
    /// Stop-the-world pauses incurred (usually empty). The runtime stamps
    /// and logs them, and advances the simulated clock.
    pub pauses: Vec<PauseEvent>,
}

/// A garbage collector driving the simulated heap.
///
/// Implementations: [`G1Collector`], [`Ng2cCollector`], [`C4Collector`].
///
/// [`G1Collector`]: crate::G1Collector
/// [`Ng2cCollector`]: crate::Ng2cCollector
/// [`C4Collector`]: crate::C4Collector
pub trait Collector: fmt::Debug {
    /// Short collector name ("G1", "NG2C", "C4").
    fn name(&self) -> &'static str;

    /// Creates the collector's spaces on a fresh heap.
    fn attach(&mut self, heap: &mut Heap);

    /// Allocates, collecting first if necessary.
    ///
    /// # Errors
    ///
    /// [`GcError::OutOfMemory`] if even a full collection cannot make room;
    /// [`GcError::Heap`] for programming errors surfaced by the heap.
    fn alloc(
        &mut self,
        heap: &mut Heap,
        req: AllocRequest,
        roots: &SafepointRoots<'_>,
    ) -> Result<AllocOutcome, GcError>;

    /// Forces a full collection cycle (used at workload phase boundaries and
    /// by tests).
    fn collect(&mut self, heap: &mut Heap, roots: &SafepointRoots<'_>) -> Vec<PauseEvent>;

    /// Creates a new generation (NG2C API). Collectors without dynamic
    /// generations return [`GenId::YOUNG`].
    fn new_generation(&mut self, heap: &mut Heap) -> GenId {
        let _ = heap;
        GenId::YOUNG
    }

    /// Sets `thread`'s target generation, returning the previous one
    /// (NG2C's `setGeneration`).
    ///
    /// # Errors
    ///
    /// [`GcError::UnknownGeneration`] if `gen` was never created.
    fn set_target_gen(&mut self, thread: ThreadId, gen: GenId) -> Result<GenId, GcError> {
        let _ = thread;
        if gen.is_young() {
            Ok(GenId::YOUNG)
        } else {
            Err(GcError::UnknownGeneration { gen: gen.raw() })
        }
    }

    /// `thread`'s current target generation (NG2C's `getGeneration`).
    fn target_gen(&self, thread: ThreadId) -> GenId {
        let _ = thread;
        GenId::YOUNG
    }

    /// Extra mutator cost imposed by collector barriers, in permille of each
    /// operation's base cost (C4's read/write barriers).
    fn mutator_overhead_permille(&self) -> u32 {
        0
    }

    /// Committed memory as the process would report it (C4 pre-reserves the
    /// whole heap at launch).
    fn reported_committed_bytes(&self, heap: &Heap) -> u64 {
        heap.committed_bytes()
    }

    /// Emergency full collections taken so far: last-resort cycles forced by
    /// an allocation that could not be satisfied any other way (the retry
    /// before a [`GcError::OutOfMemory`] verdict). Ledger- and CLI-visible
    /// through the metrics fault counters.
    fn emergency_collections(&self) -> u64 {
        0
    }
}

// ----------------------------------------------------------------------
// Shared collection phases
// ----------------------------------------------------------------------

/// Evacuates the young generation: drops the dead, copies survivors within
/// young (into the survivor space, bounded by `survivor_cap_bytes`), and
/// promotes into `promote_to` objects that are at or above
/// `tenure_threshold` — or that overflow the survivor space, G1's *premature
/// promotion*. Workloads whose in-flight cohorts exceed the survivor space
/// therefore promote en masse, the paper's motivating pathology.
///
/// Returns the work done. Panics only on heap-protocol bugs; allocation
/// failures during relocation surface as errors.
pub(crate) fn evacuate_young(
    heap: &mut Heap,
    live: &LiveSet,
    tenure_threshold: u8,
    promote_to: SpaceId,
    survivor_cap_bytes: u64,
) -> Result<GcWork, HeapError> {
    let mut work = GcWork::default();
    let young_objects = heap.objects_in_space(Heap::YOUNG_SPACE)?;
    let sources = heap.begin_evacuation(Heap::YOUNG_SPACE)?;
    let mut survivor_bytes: u64 = 0;
    let mut promoted: Vec<ObjectId> = Vec::new();
    // Read-only decision pass in allocation order, then one batched
    // evacuation: planning stays deterministic while the fix-up phase may
    // run on the heap's configured `gc_workers`.
    let mut ops: Vec<(ObjectId, EvacDecision)> = Vec::with_capacity(young_objects.len());
    for obj in young_objects {
        work.traced_objects += 1;
        if !live.contains(obj) {
            ops.push((obj, EvacDecision::Drop));
            work.swept_objects += 1;
            continue;
        }
        let rec = heap.object(obj).expect("live object");
        let size = u64::from(rec.size());
        work.traced_bytes += size;
        // The move bumps the age; decide on the post-bump value, matching
        // the old bump-then-test sequence.
        let age = rec.age().saturating_add(1);
        if age >= tenure_threshold || survivor_bytes + size > survivor_cap_bytes {
            ops.push((
                obj,
                EvacDecision::Move {
                    dest: promote_to,
                    bump_age: true,
                },
            ));
            work.promoted_bytes += size;
            promoted.push(obj);
        } else {
            ops.push((
                obj,
                EvacDecision::Move {
                    dest: Heap::YOUNG_SPACE,
                    bump_age: true,
                },
            ));
            work.copied_bytes += size;
            survivor_bytes += size;
        }
    }
    heap.evacuate_batch(&ops)?;
    work.freed_regions += sources.len() as u64;
    heap.finish_evacuation()?;
    // Promotion turns edges to still-young children into old->young edges
    // the write barrier never saw; remember them now (the promotion buffer
    // of a real generational collector).
    for obj in promoted {
        let children: Vec<ObjectId> = heap
            .object(obj)
            .map(|r| r.refs().to_vec())
            .unwrap_or_default();
        for child in children {
            heap.remember_if_young(child);
        }
    }
    heap.prune_remembered();
    Ok(work)
}

/// The survivor-space size implied by the heap geometry and the collector's
/// survivor ratio (the `-XX:SurvivorRatio` analogue).
pub(crate) fn survivor_cap(heap: &Heap, survivor_ratio: u64) -> u64 {
    (heap.config().young_bytes / survivor_ratio.max(1)).max(heap.config().region_bytes)
}

/// A completed (conceptually concurrent) marking cycle, reused across
/// several incremental mixed pauses — G1's concurrent-marking design. The
/// watermark records the allocation counter at mark time: younger ids are
/// conservatively live (they were born after the mark).
#[derive(Debug)]
pub(crate) struct MarkCycle {
    pub(crate) live: LiveSet,
    pub(crate) watermark: u64,
    pub(crate) uses: u32,
}

impl MarkCycle {
    pub(crate) fn run(heap: &mut Heap, roots: &SafepointRoots<'_>) -> MarkCycle {
        let watermark = heap.stats().allocated_objects;
        let live = heap.mark_live(roots.stack_roots());
        MarkCycle {
            live,
            watermark,
            uses: 0,
        }
    }

    /// Liveness answer for sweep/compact decisions: objects born after the
    /// mark are live until the next cycle (SATB floating garbage).
    pub(crate) fn is_live(&self, obj: ObjectId) -> bool {
        obj.raw() >= self.watermark || self.live.contains(obj)
    }
}

/// Ensures a usable marking cycle, refreshing it after `max_uses` mixed
/// pauses (the next concurrent cycle in real G1).
pub(crate) fn ensure_mark(
    cache: &mut Option<MarkCycle>,
    heap: &mut Heap,
    roots: &SafepointRoots<'_>,
    max_uses: u32,
) {
    let stale = match cache {
        Some(c) => c.uses >= max_uses,
        None => true,
    };
    if stale {
        if let Some(old) = cache.take() {
            heap.retire_live_set(old.live);
        }
        *cache = Some(MarkCycle::run(heap, roots));
    }
    if let Some(c) = cache.as_mut() {
        c.uses += 1;
    }
}

/// Reclaims old spaces incrementally: releases wholly-dead regions, then
/// sweeps + compacts up to `max_regions` victim regions chosen by lowest
/// live fraction (G1's collection set). Liveness comes from the marking
/// cycle; regions not selected keep their floating garbage until a later
/// pause. Pass `u32::MAX` and threshold 1.0 for a full compaction.
pub(crate) fn reclaim_spaces(
    heap: &mut Heap,
    mark: &MarkCycle,
    spaces: &[SpaceId],
    compact_live_fraction: f64,
    max_regions: u32,
) -> Result<GcWork, HeapError> {
    let mut work = GcWork::default();

    // Pass 1 — metadata only: find wholly-dead regions and compaction
    // victims across the given spaces.
    let mut dead_regions = Vec::new();
    let mut victims: Vec<(f64, SpaceId, polm2_heap::RegionId)> = Vec::new();
    for &space in spaces {
        for &region in heap.space(space)?.regions() {
            let r = heap.region(region);
            if r.live_bytes() == 0 {
                dead_regions.push(region);
            } else {
                let fraction = r.live_fraction();
                if fraction < compact_live_fraction {
                    victims.push((fraction, space, region));
                }
            }
        }
    }

    // Pass 2 — release wholly-dead regions (the cheap path pretenuring
    // produces: cohorts die with their region). Verify per object rather
    // than trusting the nomination: region live-byte accounting and the
    // collector's cached mark cycle refresh at *different* times (any
    // `Heap::mark_live` — including the profiling Dumper's snapshot marks —
    // rewrites the accounting, while the cycle here may be older and
    // conservatively considers more objects live). A region with a
    // cycle-live resident is left alone; the next cycle refresh reclaims
    // it.
    for region in dead_regions {
        let residents = heap.live_objects_in_region(region);
        if residents.iter().any(|&obj| mark.is_live(obj)) {
            continue;
        }
        work.swept_objects += residents.len() as u64;
        work.traced_objects += residents.len() as u64;
        let ops: Vec<(ObjectId, EvacDecision)> = residents
            .into_iter()
            .map(|obj| (obj, EvacDecision::Drop))
            .collect();
        heap.evacuate_batch(&ops)?;
        heap.purge_region_objects(region);
        heap.release_region(region)?;
        work.freed_regions += 1;
    }

    // Pass 3 — sweep + compact the collection set, sparsest regions first.
    victims.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fractions"));
    victims.truncate(max_regions as usize);
    // Each victim keeps its own begin/finish pair: the freed region returns
    // to the pool before the next victim is evacuated, preserving the pool's
    // LIFO region-reuse order. Parallelism lives inside the batch.
    for (_, space, victim) in victims {
        heap.begin_evacuation_of(space, &[victim])?;
        let residents = heap.live_objects_in_region(victim);
        let mut ops: Vec<(ObjectId, EvacDecision)> = Vec::with_capacity(residents.len());
        for obj in residents {
            work.traced_objects += 1;
            if !mark.is_live(obj) {
                ops.push((obj, EvacDecision::Drop));
                work.swept_objects += 1;
            } else {
                let size = u64::from(heap.object(obj).expect("resident record").size());
                ops.push((
                    obj,
                    EvacDecision::Move {
                        dest: space,
                        bump_age: false,
                    },
                ));
                work.compacted_bytes += size;
                work.traced_bytes += size;
            }
        }
        heap.evacuate_batch(&ops)?;
        heap.finish_evacuation()?;
        work.freed_regions += 1;
    }
    Ok(work)
}

/// Converts pool exhaustion *during* a collection into [`GcError::OutOfMemory`]:
/// if even the collector cannot find a region to copy survivors into, the heap
/// is truly full. Other errors pass through unchanged.
///
/// After this error the heap may be left mid-evacuation; an out-of-memory
/// collector, like an OOM JVM, is not expected to resume.
pub(crate) fn oom_if_exhausted(e: GcError, requested: u64) -> GcError {
    match e {
        GcError::Heap(HeapError::OutOfRegions { .. })
        | GcError::Heap(HeapError::SpaceFull { .. })
        | GcError::Heap(HeapError::OutOfMemory { .. }) => GcError::OutOfMemory { requested },
        other => other,
    }
}

/// True when the heap occupancy crosses the mixed-collection trigger.
pub(crate) fn over_mixed_trigger(heap: &Heap, fraction: f64) -> bool {
    heap.committed_bytes() as f64 > heap.config().total_bytes as f64 * fraction
}

/// True when the free pool is too small to absorb a young evacuation — the
/// signal to reclaim old spaces before attempting one.
pub(crate) fn pool_pressure(heap: &Heap) -> bool {
    let young_budget = heap.config().young_region_budget() as u64;
    u64::from(heap.free_region_count()) < young_budget + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{HeapConfig, SiteId};

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId::new(3).to_string(), "thread#3");
        assert_eq!(ThreadId::new(3).raw(), 3);
    }

    #[test]
    fn safepoint_roots_accessors() {
        let ids = [ObjectId::new(1)];
        let roots = SafepointRoots::new(&ids);
        assert_eq!(roots.stack_roots().len(), 1);
        assert!(SafepointRoots::none().stack_roots().is_empty());
    }

    #[test]
    fn evacuate_young_separates_live_from_dead() {
        let mut heap = Heap::new(HeapConfig::small());
        let old = heap.create_space(GenId::new(1), None);
        let class = heap.classes_mut().intern("T");
        let keep = heap
            .allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        let dead = heap
            .allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        let slot = heap.roots_mut().create_slot("r");
        heap.roots_mut().push(slot, keep);
        let live = heap.mark_live(&[]);
        let work = evacuate_young(&mut heap, &live, 15, old, u64::MAX).unwrap();
        assert_eq!(work.swept_objects, 1);
        assert_eq!(work.copied_bytes, 64);
        assert_eq!(work.promoted_bytes, 0);
        assert!(heap.object(keep).is_some());
        assert!(heap.object(dead).is_none());
        heap.check_invariants();
    }

    #[test]
    fn evacuate_young_promotes_aged_objects() {
        let mut heap = Heap::new(HeapConfig::small());
        let old = heap.create_space(GenId::new(1), None);
        let class = heap.classes_mut().intern("T");
        let obj = heap
            .allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        let slot = heap.roots_mut().create_slot("r");
        heap.roots_mut().push(slot, obj);
        // Age out over repeated young collections.
        for round in 0..3 {
            let live = heap.mark_live(&[]);
            let work = evacuate_young(&mut heap, &live, 3, old, u64::MAX).unwrap();
            if round < 2 {
                assert_eq!(work.copied_bytes, 64, "round {round}");
            } else {
                assert_eq!(work.promoted_bytes, 64, "round {round}");
            }
        }
        assert_eq!(heap.object(obj).unwrap().space(), old);
    }

    #[test]
    fn reclaim_releases_dead_regions_whole() {
        let mut heap = Heap::new(HeapConfig::small());
        let old = heap.create_space(GenId::new(1), None);
        let class = heap.classes_mut().intern("T");
        // Fill an old region with objects that all die together.
        for _ in 0..32 {
            heap.allocate(class, 4096, SiteId::new(0), old).unwrap();
        }
        let cycle = MarkCycle::run(&mut heap, &SafepointRoots::none()); // nothing rooted -> all dead
        let work = reclaim_spaces(&mut heap, &cycle, &[old], 0.75, u32::MAX).unwrap();
        assert_eq!(work.swept_objects, 32);
        assert!(work.freed_regions >= 1);
        assert_eq!(
            work.compacted_bytes, 0,
            "whole-region death needs no copying"
        );
        heap.check_invariants();
    }

    #[test]
    fn reclaim_compacts_sparse_regions() {
        let mut heap = Heap::new(HeapConfig::small());
        let old = heap.create_space(GenId::new(1), None);
        let class = heap.classes_mut().intern("T");
        let slot = heap.roots_mut().create_slot("r");
        // Interleave survivors and garbage so regions end up sparse.
        for i in 0..64 {
            let obj = heap.allocate(class, 4096, SiteId::new(0), old).unwrap();
            if i % 4 == 0 {
                heap.roots_mut().push(slot, obj);
            }
        }
        let cycle = MarkCycle::run(&mut heap, &SafepointRoots::none());
        let work = reclaim_spaces(&mut heap, &cycle, &[old], 0.75, u32::MAX).unwrap();
        assert!(work.compacted_bytes > 0, "sparse survivors must be moved");
        assert!(work.freed_regions > 0);
        heap.check_invariants();
    }

    #[test]
    fn reclaim_respects_region_budget() {
        let mut heap = Heap::new(HeapConfig::small());
        let old = heap.create_space(GenId::new(1), None);
        let class = heap.classes_mut().intern("T");
        let slot = heap.roots_mut().create_slot("r");
        for i in 0..128 {
            let obj = heap.allocate(class, 4096, SiteId::new(0), old).unwrap();
            if i % 8 == 0 {
                heap.roots_mut().push(slot, obj);
            }
        }
        let cycle = MarkCycle::run(&mut heap, &SafepointRoots::none());
        let limited = reclaim_spaces(&mut heap, &cycle, &[old], 0.75, 1).unwrap();
        // One region compacted at most.
        assert!(limited.compacted_bytes <= heap.config().region_bytes);
    }

    #[test]
    fn promotion_remembers_young_children() {
        // The promotion-buffer scenario: a parent is promoted while its
        // child survives in young; the next young-only collection must not
        // reclaim the child.
        let mut heap = Heap::new(HeapConfig::small());
        let old = heap.create_space(GenId::new(1), None);
        let class = heap.classes_mut().intern("T");
        let parent = heap
            .allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        let child = heap
            .allocate(class, 64, SiteId::new(0), Heap::YOUNG_SPACE)
            .unwrap();
        heap.add_ref(parent, child).unwrap();
        let slot = heap.roots_mut().create_slot("r");
        heap.roots_mut().push(slot, parent);
        // Tenure threshold 1 with a tight survivor cap: parent promotes,
        // child squeaks into the survivor space.
        for _ in 0..2 {
            let live = heap.mark_live_young(&[]);
            evacuate_young(&mut heap, &live, 3, old, 64).unwrap();
        }
        // One of them is old by now; run another young-only cycle and the
        // young one must survive via the promotion-buffer entries.
        let live = heap.mark_live_young(&[]);
        evacuate_young(&mut heap, &live, 3, old, 64).unwrap();
        assert!(heap.object(parent).is_some());
        assert!(
            heap.object(child).is_some(),
            "child lost: promotion buffer broken"
        );
        heap.check_invariants();
    }

    #[test]
    fn survivor_overflow_promotes_prematurely() {
        let mut heap = Heap::new(HeapConfig::small()); // young budget: 1 MiB
        let old = heap.create_space(GenId::new(1), None);
        let class = heap.classes_mut().intern("Block");
        let slot = heap.roots_mut().create_slot("batch");
        // Root 512 KiB of young objects; with a 128 KiB survivor cap, most
        // of the cohort must be promoted even though it is far below the
        // tenuring threshold.
        for _ in 0..128 {
            let obj = heap
                .allocate(class, 4096, SiteId::new(0), Heap::YOUNG_SPACE)
                .unwrap();
            heap.roots_mut().push(slot, obj);
        }
        let live = heap.mark_live(&[]);
        let cap: u64 = 128 << 10;
        let work = evacuate_young(&mut heap, &live, 15, old, cap).unwrap();
        assert!(work.copied_bytes <= cap, "survivor space respected");
        assert_eq!(work.copied_bytes + work.promoted_bytes, 512 << 10);
        assert!(
            work.promoted_bytes >= (384 << 10),
            "overflow promoted en masse"
        );
        heap.check_invariants();
    }

    #[test]
    fn collection_phases_are_backend_invariant() {
        // Young evacuation then an old-space reclaim, on both memory
        // backends: identical GcWork and identical surviving placement —
        // the collector-phase slice of the sim/real equality invariant.
        use polm2_heap::BackendKind;
        type Placement = (u64, u32, u32, SpaceId);
        fn drive(backend: BackendKind) -> (Vec<GcWork>, Vec<Placement>) {
            let mut heap = Heap::new(HeapConfig::small().with_backend(backend));
            let old = heap.create_space(GenId::new(1), None);
            let class = heap.classes_mut().intern("T");
            let slot = heap.roots_mut().create_slot("r");
            let mut ids = Vec::new();
            for i in 0..96 {
                let obj = heap
                    .allocate(
                        class,
                        2048 + (i % 5) * 1024,
                        SiteId::new(0),
                        Heap::YOUNG_SPACE,
                    )
                    .unwrap();
                if i % 3 == 0 {
                    heap.roots_mut().push(slot, obj);
                    ids.push(obj);
                }
            }
            let mut works = Vec::new();
            let live = heap.mark_live(&[]);
            works.push(evacuate_young(&mut heap, &live, 1, old, u64::MAX).unwrap());
            let cycle = MarkCycle::run(&mut heap, &SafepointRoots::none());
            works.push(reclaim_spaces(&mut heap, &cycle, &[old], 1.0, u32::MAX).unwrap());
            heap.check_invariants();
            let placement = ids
                .iter()
                .map(|&id| {
                    let rec = heap.object(id).expect("rooted object survives");
                    (
                        id.raw(),
                        rec.addr().region.raw(),
                        rec.addr().offset,
                        rec.space(),
                    )
                })
                .collect();
            (works, placement)
        }
        assert_eq!(drive(BackendKind::Sim), drive(BackendKind::Real));
    }

    #[test]
    fn survivor_cap_floor_is_one_region() {
        let heap = Heap::new(HeapConfig::small());
        // young/8 = 128 KiB is below one region, so the floor applies.
        assert_eq!(survivor_cap(&heap, 8), heap.config().region_bytes);
        assert_eq!(survivor_cap(&heap, 2), 512 << 10);
        // A huge ratio still leaves one region of survivor space.
        assert_eq!(survivor_cap(&heap, 1_000_000), heap.config().region_bytes);
    }

    #[test]
    fn trigger_predicates() {
        let mut heap = Heap::new(HeapConfig::small());
        assert!(!over_mixed_trigger(&heap, 0.5));
        assert!(!pool_pressure(&heap));
        let class = heap.classes_mut().intern("T");
        let old = heap.create_space(GenId::new(1), None);
        // Commit most of the heap.
        for _ in 0..12 * 64 {
            heap.allocate(class, 4096, SiteId::new(0), old).unwrap();
        }
        assert!(over_mixed_trigger(&heap, 0.5));
        assert!(pool_pressure(&heap));
    }
}
