//! The G1-like baseline collector.

use polm2_heap::{GenId, Heap, HeapError, SpaceId};

use crate::collector::{
    ensure_mark, evacuate_young, oom_if_exhausted, over_mixed_trigger, pool_pressure,
    reclaim_spaces, survivor_cap, AllocOutcome, AllocRequest, Collector, MarkCycle, SafepointRoots,
};
use crate::{GcConfig, GcError, GcKind, GcWork, PauseEvent};

/// The OpenJDK-default collector the paper compares against.
///
/// Two generations. Every object is born young; survivors are copied within
/// the young generation until they reach the tenuring threshold and are then
/// promoted. Old regions are reclaimed by incremental *mixed* collections
/// that compact the sparsest regions first, and by *full* collections under
/// pressure. Middle-lived Big-Data objects are therefore copied repeatedly,
/// promoted en masse, and compacted after they die — the paper's motivating
/// pathology.
///
/// See the [crate documentation](crate) for a usage example.
#[derive(Debug)]
pub struct G1Collector {
    config: GcConfig,
    old: Option<SpaceId>,
    /// The current (conceptually concurrent) marking cycle.
    mark: Option<MarkCycle>,
    /// Last-resort full collections forced by a failed allocation.
    emergency_collections: u64,
}

impl G1Collector {
    /// Creates a G1 collector with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GcConfig::validate`].
    pub fn new(config: GcConfig) -> Self {
        config.validate().expect("invalid GC configuration");
        G1Collector {
            config,
            old: None,
            mark: None,
            emergency_collections: 0,
        }
    }

    /// The collector's tuning parameters.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    fn old_space(&self) -> SpaceId {
        self.old.expect("collector not attached")
    }

    fn minor(
        &mut self,
        heap: &mut Heap,
        roots: &SafepointRoots<'_>,
    ) -> Result<PauseEvent, GcError> {
        // Minor collections trace only the young generation (remembered set
        // + roots); the old spaces are assumed live.
        let live = heap.mark_live_young(roots.stack_roots());
        let work = evacuate_young(
            heap,
            &live,
            self.config.tenure_threshold,
            self.old_space(),
            survivor_cap(heap, self.config.survivor_ratio),
        )?;
        heap.retire_live_set(live);
        Ok(PauseEvent {
            kind: GcKind::Minor,
            pause: self.config.cost.pause(&work),
            work,
        })
    }

    fn mixed(
        &mut self,
        heap: &mut Heap,
        roots: &SafepointRoots<'_>,
    ) -> Result<PauseEvent, GcError> {
        let young_live = heap.mark_live_young(roots.stack_roots());
        let young = evacuate_young(
            heap,
            &young_live,
            self.config.tenure_threshold,
            self.old_space(),
            survivor_cap(heap, self.config.survivor_ratio),
        )?;
        heap.retire_live_set(young_live);
        ensure_mark(&mut self.mark, heap, roots, self.config.mark_cycle_uses);
        let mark = self.mark.as_ref().expect("ensured above");
        let old = reclaim_spaces(
            heap,
            mark,
            &[self.old_space()],
            self.config.compact_live_fraction,
            self.config.max_compact_regions_per_pause,
        )?;
        let work = young.merged(old);
        Ok(PauseEvent {
            kind: GcKind::Mixed,
            pause: self.config.cost.pause(&work),
            work,
        })
    }

    fn full(&mut self, heap: &mut Heap, roots: &SafepointRoots<'_>) -> Result<PauseEvent, GcError> {
        // Full collections mark afresh, promote every survivor (threshold
        // 0), and compact every old region that is not completely full.
        let cycle = MarkCycle::run(heap, roots);
        let young = evacuate_young(
            heap,
            &cycle.live,
            0,
            self.old_space(),
            survivor_cap(heap, self.config.survivor_ratio),
        )?;
        let old = reclaim_spaces(heap, &cycle, &[self.old_space()], 1.0, u32::MAX)?;
        // The heap changed wholesale; the next mixed pause re-marks.
        if let Some(stale) = self.mark.take() {
            heap.retire_live_set(stale.live);
        }
        // A full cycle leaves the heap's live set exactly the mark's live
        // set (only unreachable objects were dropped, survivors merely
        // moved), so hand it to the heap for the profiling Dumper to reuse —
        // unless stack roots widened the trace beyond the root table.
        if roots.stack_roots().is_empty() {
            heap.publish_live(cycle.live);
        } else {
            heap.retire_live_set(cycle.live);
        }
        let work = young.merged(old);
        // Cycle boundary: let the backend run deferred allocator
        // maintenance (tenured free-list coalescing).
        heap.note_gc_cycle_finished();
        Ok(PauseEvent {
            kind: GcKind::Full,
            pause: self.config.cost.pause(&work),
            work,
        })
    }
}

impl Collector for G1Collector {
    fn name(&self) -> &'static str {
        "G1"
    }

    fn attach(&mut self, heap: &mut Heap) {
        assert!(self.old.is_none(), "collector already attached");
        self.old = Some(heap.create_space(GenId::new(1), None));
        heap.set_gc_workers(self.config.gc_workers);
    }

    fn alloc(
        &mut self,
        heap: &mut Heap,
        req: AllocRequest,
        roots: &SafepointRoots<'_>,
    ) -> Result<AllocOutcome, GcError> {
        let mut pauses = Vec::new();
        // Old-space growth (promotion, pretenuring) drains the shared pool
        // without ever failing a young allocation; collect pre-emptively so
        // evacuation always has to-space available.
        if pool_pressure(heap) {
            // Under pool pressure the floating garbage of the current mark
            // cycle is what is squeezing us: refresh the mark, then reclaim
            // incrementally; a full collection is the last resort.
            if let Some(stale) = self.mark.take() {
                heap.retire_live_set(stale.live);
            }
            pauses.push(
                self.mixed(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
            if pool_pressure(heap) {
                pauses.push(
                    self.full(heap, roots)
                        .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
                );
            }
        }
        // Fast path. A hard heap-limit miss (`OutOfMemory`) is retried the
        // same way pool exhaustion is: collection frees budget too.
        match heap.allocate(req.class, req.size, req.site, Heap::YOUNG_SPACE) {
            Ok(object) => return Ok(AllocOutcome { object, pauses }),
            Err(HeapError::SpaceFull { .. })
            | Err(HeapError::OutOfRegions { .. })
            | Err(HeapError::OutOfMemory { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        // Young full: make sure old space pressure will not sink the
        // evacuation, then run the young collection.
        if pool_pressure(heap) {
            pauses.push(
                self.full(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
        } else if over_mixed_trigger(heap, self.config.mixed_trigger_fraction) {
            pauses.push(
                self.mixed(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
        } else {
            pauses.push(
                self.minor(heap, roots)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
        }
        match heap.allocate(req.class, req.size, req.site, Heap::YOUNG_SPACE) {
            Ok(object) => return Ok(AllocOutcome { object, pauses }),
            Err(HeapError::SpaceFull { .. })
            | Err(HeapError::OutOfRegions { .. })
            | Err(HeapError::OutOfMemory { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        // Last resort: one emergency full collection, then the verdict.
        self.emergency_collections += 1;
        pauses.push(
            self.full(heap, roots)
                .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
        );
        match heap.allocate(req.class, req.size, req.site, Heap::YOUNG_SPACE) {
            Ok(object) => Ok(AllocOutcome { object, pauses }),
            Err(_) => Err(GcError::OutOfMemory {
                requested: u64::from(req.size),
            }),
        }
    }

    fn collect(&mut self, heap: &mut Heap, roots: &SafepointRoots<'_>) -> Vec<PauseEvent> {
        match self.full(heap, roots) {
            Ok(p) => vec![p],
            Err(_) => vec![PauseEvent {
                kind: GcKind::Full,
                pause: self.config.cost.pause(&GcWork::default()),
                work: GcWork::default(),
            }],
        }
    }

    fn emergency_collections(&self) -> u64 {
        self.emergency_collections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{HeapConfig, ObjectId, SiteId};

    use crate::ThreadId;

    fn setup() -> (Heap, G1Collector) {
        let mut heap = Heap::new(HeapConfig::small());
        let mut gc = G1Collector::new(GcConfig::default());
        gc.attach(&mut heap);
        (heap, gc)
    }

    fn req(heap: &mut Heap, size: u32) -> AllocRequest {
        AllocRequest {
            class: heap.classes_mut().intern("T"),
            size,
            site: SiteId::new(0),
            pretenure: false,
            thread: ThreadId::new(0),
        }
    }

    #[test]
    fn fast_path_allocates_without_pauses() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 128);
        let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
        assert!(out.pauses.is_empty());
        assert!(heap.object(out.object).is_some());
    }

    #[test]
    fn young_exhaustion_triggers_minor_collection() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 4096);
        let mut total_pauses = 0;
        for _ in 0..1000 {
            // No roots: everything dies young, so minor GCs keep the heap flat.
            let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
            total_pauses += out.pauses.len();
        }
        assert!(total_pauses >= 3, "expected several minor collections");
        heap.check_invariants();
        // Everything was garbage, nothing should have been promoted.
        assert_eq!(heap.used_bytes(gc.old_space()).unwrap(), 0);
    }

    #[test]
    fn surviving_objects_get_promoted_eventually() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 4096);
        let slot = heap.roots_mut().create_slot("keep");
        // Root a handful of objects, then churn garbage through young.
        let mut kept = Vec::new();
        for i in 0..2000 {
            let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
            if i < 8 {
                heap.roots_mut().push(slot, out.object);
                kept.push(out.object);
            }
        }
        for obj in kept {
            assert_eq!(
                heap.object(obj).map(|o| o.space()),
                Some(gc.old_space()),
                "rooted object should be tenured after enough collections"
            );
        }
    }

    #[test]
    fn full_collection_reclaims_dead_old_objects() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 4096);
        let slot = heap.roots_mut().create_slot("keep");
        let mut kept: Vec<ObjectId> = Vec::new();
        for _ in 0..600 {
            let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
            heap.roots_mut().push(slot, out.object);
            kept.push(out.object);
        }
        // Everything is rooted and much of it promoted; now drop all roots.
        heap.roots_mut().clear_slot(slot);
        let pauses = gc.collect(&mut heap, &SafepointRoots::none());
        assert_eq!(pauses.len(), 1);
        assert_eq!(pauses[0].kind, GcKind::Full);
        assert_eq!(heap.object_count(), 0);
        heap.check_invariants();
    }

    #[test]
    fn out_of_memory_when_everything_is_live() {
        let mut heap = Heap::new(HeapConfig::small());
        let mut gc = G1Collector::new(GcConfig::default());
        gc.attach(&mut heap);
        let r = req(&mut heap, 4096);
        let slot = heap.roots_mut().create_slot("keep");
        let mut last_err = None;
        for _ in 0..2000 {
            match gc.alloc(&mut heap, r, &SafepointRoots::none()) {
                Ok(out) => heap.roots_mut().push(slot, out.object),
                Err(e) => {
                    last_err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(last_err, Some(GcError::OutOfMemory { .. })),
            "rooting everything must eventually exhaust the heap: {last_err:?}"
        );
    }

    #[test]
    fn stack_roots_survive_collections() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 4096);
        let pinned = gc
            .alloc(&mut heap, r, &SafepointRoots::none())
            .unwrap()
            .object;
        let stack = [pinned];
        let roots = SafepointRoots::new(&stack);
        for _ in 0..500 {
            gc.alloc(&mut heap, r, &roots).unwrap();
        }
        assert!(
            heap.object(pinned).is_some(),
            "stack-rooted object must survive"
        );
    }

    #[test]
    fn pretenure_flag_is_ignored_by_g1() {
        let (mut heap, mut gc) = setup();
        let mut r = req(&mut heap, 128);
        r.pretenure = true;
        let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
        assert_eq!(heap.object(out.object).unwrap().space(), Heap::YOUNG_SPACE);
    }
}
