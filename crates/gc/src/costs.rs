//! The pause-time cost model.
//!
//! The paper measures wall-clock stop-the-world pauses on a Xeon E5505. The
//! simulation replaces the machine with a deterministic linear model: a pause
//! is a fixed safepoint cost plus per-byte charges for the work the collector
//! actually performed. The paper's claims are relative (percent reductions,
//! normalized ratios), and a linear model preserves exactly the relative
//! structure — who copies less, pauses less.

use polm2_metrics::SimDuration;

/// The work performed during one stop-the-world pause.
///
/// Collectors fill this in as they operate on the heap; the cost model prices
/// it. Note that *tracing* here covers only the collected spaces — G1 and
/// NG2C both mark concurrently, so full-heap marking is not charged to the
/// pause (matching G1's concurrent-marking design).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcWork {
    /// Live bytes scanned in the collected spaces (evacuation scan).
    pub traced_bytes: u64,
    /// Objects visited while scanning.
    pub traced_objects: u64,
    /// Bytes copied within a generation (young survivor copying).
    pub copied_bytes: u64,
    /// Bytes promoted into an older space.
    pub promoted_bytes: u64,
    /// Bytes moved by old-space compaction.
    pub compacted_bytes: u64,
    /// Objects reclaimed without moving anything (swept).
    pub swept_objects: u64,
    /// Regions released whole (the cheap path pretenuring enables).
    pub freed_regions: u64,
}

impl GcWork {
    /// Sums two work records (e.g. the phases of a full collection).
    pub fn merged(self, other: GcWork) -> GcWork {
        GcWork {
            traced_bytes: self.traced_bytes + other.traced_bytes,
            traced_objects: self.traced_objects + other.traced_objects,
            copied_bytes: self.copied_bytes + other.copied_bytes,
            promoted_bytes: self.promoted_bytes + other.promoted_bytes,
            compacted_bytes: self.compacted_bytes + other.compacted_bytes,
            swept_objects: self.swept_objects + other.swept_objects,
            freed_regions: self.freed_regions + other.freed_regions,
        }
    }

    /// Total bytes physically moved (copy + promote + compact).
    pub fn moved_bytes(&self) -> u64 {
        self.copied_bytes + self.promoted_bytes + self.compacted_bytes
    }
}

/// Linear pause-time coefficients.
///
/// The default calibration targets the paper's scale: with the 256 MiB
/// scaled heap, a young collection with a few MiB of survivors prices at tens
/// of milliseconds, and a full compaction of ~150 MiB of live data prices at
/// over a second — the band Figure 5 reports for G1's worst pauses.
///
/// # Examples
///
/// ```
/// use polm2_gc::{CostModel, GcWork};
///
/// let model = CostModel::default();
/// let cheap = model.pause(&GcWork { freed_regions: 10, ..GcWork::default() });
/// let pricey = model.pause(&GcWork { compacted_bytes: 64 << 20, ..GcWork::default() });
/// assert!(cheap < pricey);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost of stopping and restarting the world, in microseconds.
    pub safepoint_us: u64,
    /// Scanning live data in collected spaces, µs per MiB.
    pub trace_us_per_mib: u64,
    /// Copying an object within its generation, µs per MiB.
    pub copy_us_per_mib: u64,
    /// Promoting into an older space (copy + remembered-set update), µs/MiB.
    pub promote_us_per_mib: u64,
    /// Old-space compaction (copy + reference fix-up), µs per MiB.
    pub compact_us_per_mib: u64,
    /// Per-object visit overhead, in nanoseconds.
    pub visit_ns_per_object: u64,
    /// Releasing a whole dead region, in microseconds (the cheap path).
    pub free_region_us: u64,
}

impl CostModel {
    /// The calibration used for all recorded experiments (see DESIGN.md §7).
    pub fn paper_scaled() -> Self {
        CostModel {
            safepoint_us: 800,
            trace_us_per_mib: 1_200,
            copy_us_per_mib: 9_000,
            promote_us_per_mib: 12_000,
            compact_us_per_mib: 11_000,
            visit_ns_per_object: 150,
            free_region_us: 30,
        }
    }

    /// Prices one pause performed by a single GC worker.
    pub fn pause(&self, work: &GcWork) -> SimDuration {
        self.pause_with_workers(work, 1)
    }

    /// Prices one pause as performed by `workers` GC worker threads.
    ///
    /// The sharded mark and batched evacuation divide the per-byte and
    /// per-object work evenly (claims make every accounting effect
    /// exactly-once, so there is no duplicated work to price), while the
    /// safepoint rendezvous and region-free bookkeeping stay serial — an
    /// Amdahl split. `workers == 1` is exactly [`CostModel::pause`].
    ///
    /// Collectors report their pauses at serial pricing regardless of
    /// `gc_workers`: a worker-dependent simulated pause would change how
    /// many mutator operations fit a time-budgeted run, breaking the
    /// bit-identical-at-any-worker-count contract (DESIGN.md §15). This
    /// method is the modeled parallel pricing the perf gate reports over
    /// measured work.
    pub fn pause_with_workers(&self, work: &GcWork, workers: usize) -> SimDuration {
        const MIB: u64 = 1 << 20;
        let workers = workers.max(1) as u64;
        let parallel_us = work.traced_bytes * self.trace_us_per_mib / MIB
            + work.copied_bytes * self.copy_us_per_mib / MIB
            + work.promoted_bytes * self.promote_us_per_mib / MIB
            + work.compacted_bytes * self.compact_us_per_mib / MIB
            + work.traced_objects * self.visit_ns_per_object / 1_000;
        let serial_us = self.safepoint_us + work.freed_regions * self.free_region_us;
        SimDuration::from_micros(serial_us + parallel_us / workers)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_work_costs_the_safepoint() {
        let model = CostModel::default();
        assert_eq!(
            model.pause(&GcWork::default()),
            SimDuration::from_micros(model.safepoint_us)
        );
    }

    #[test]
    fn costs_scale_linearly_with_bytes() {
        let model = CostModel::default();
        let one = model.pause(&GcWork {
            copied_bytes: 1 << 20,
            ..GcWork::default()
        });
        let two = model.pause(&GcWork {
            copied_bytes: 2 << 20,
            ..GcWork::default()
        });
        let base = SimDuration::from_micros(model.safepoint_us);
        assert_eq!((two - base).as_micros(), 2 * (one - base).as_micros());
    }

    #[test]
    fn promotion_costs_more_than_copy() {
        let model = CostModel::default();
        let copy = model.pause(&GcWork {
            copied_bytes: 8 << 20,
            ..GcWork::default()
        });
        let promote = model.pause(&GcWork {
            promoted_bytes: 8 << 20,
            ..GcWork::default()
        });
        assert!(promote > copy);
    }

    #[test]
    fn region_free_path_is_cheap() {
        let model = CostModel::default();
        // Releasing 100 dead regions must be far cheaper than compacting
        // the same 100 MiB.
        let free = model.pause(&GcWork {
            freed_regions: 100,
            ..GcWork::default()
        });
        let compact = model.pause(&GcWork {
            compacted_bytes: 100 << 20,
            ..GcWork::default()
        });
        assert!(free.as_micros() * 50 < compact.as_micros());
    }

    #[test]
    fn merged_accumulates_all_fields() {
        let a = GcWork {
            traced_bytes: 1,
            traced_objects: 2,
            copied_bytes: 3,
            promoted_bytes: 4,
            compacted_bytes: 5,
            swept_objects: 6,
            freed_regions: 7,
        };
        let m = a.merged(a);
        assert_eq!(m.traced_bytes, 2);
        assert_eq!(m.swept_objects, 12);
        assert_eq!(m.freed_regions, 14);
        assert_eq!(m.moved_bytes(), 2 * (3 + 4 + 5));
    }

    #[test]
    fn workers_divide_only_the_parallel_charges() {
        let model = CostModel::default();
        let work = GcWork {
            traced_bytes: 64 << 20,
            traced_objects: 100_000,
            copied_bytes: 16 << 20,
            promoted_bytes: 8 << 20,
            compacted_bytes: 32 << 20,
            freed_regions: 40,
            ..GcWork::default()
        };
        let serial = model.pause(&work);
        assert_eq!(model.pause_with_workers(&work, 1), serial);
        let fixed = model.safepoint_us + 40 * model.free_region_us;
        let quad = model.pause_with_workers(&work, 4);
        assert_eq!(quad.as_micros(), fixed + (serial.as_micros() - fixed) / 4);
        // More workers never lengthen a pause, and the serial floor holds.
        assert!(model.pause_with_workers(&work, 8) <= quad);
        assert!(model.pause_with_workers(&work, 1_000).as_micros() >= fixed);
    }

    #[test]
    fn work_dominated_pause_speeds_up_at_least_twofold_with_four_workers() {
        // The BENCH_gc gate relies on this: a pause dominated by per-byte
        // work (the large-workload shape) must model >= 2x at 4 workers.
        let model = CostModel::default();
        let work = GcWork {
            traced_bytes: 150 << 20,
            traced_objects: 500_000,
            compacted_bytes: 120 << 20,
            ..GcWork::default()
        };
        let one = model.pause_with_workers(&work, 1).as_micros();
        let four = model.pause_with_workers(&work, 4).as_micros();
        assert!(one >= 2 * four, "modeled speedup below 2x: {one} vs {four}");
    }

    #[test]
    fn young_collection_magnitude_is_tens_of_ms() {
        // 4 MiB of survivors copied + traced: should land in the
        // 10–100 ms band the paper reports for G1 young pauses.
        let model = CostModel::default();
        let pause = model.pause(&GcWork {
            traced_bytes: 4 << 20,
            traced_objects: 20_000,
            copied_bytes: 4 << 20,
            ..GcWork::default()
        });
        let ms = pause.as_millis();
        assert!((10..100).contains(&ms), "young pause {ms}ms out of band");
    }

    #[test]
    fn full_compaction_magnitude_is_about_a_second() {
        let model = CostModel::default();
        let pause = model.pause(&GcWork {
            traced_bytes: 150 << 20,
            traced_objects: 500_000,
            compacted_bytes: 120 << 20,
            ..GcWork::default()
        });
        let ms = pause.as_millis();
        assert!((500..3_000).contains(&ms), "full pause {ms}ms out of band");
    }
}
