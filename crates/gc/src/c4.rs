//! The C4-like concurrent collector model.

use polm2_heap::{GenId, Heap, HeapError, SpaceId};

use crate::collector::{
    evacuate_young, oom_if_exhausted, over_mixed_trigger, pool_pressure, reclaim_spaces,
    survivor_cap, AllocOutcome, AllocRequest, Collector, MarkCycle, SafepointRoots,
};
use crate::{GcConfig, GcError, GcKind, GcWork, PauseEvent};

/// Azul's Continuously Concurrent Compacting Collector, as the paper models
/// it.
///
/// The paper reports three observables for C4 and this model reproduces all
/// three:
///
/// 1. **Pauses** — "the duration of all pauses fall below 10 ms" (§5): the
///    heavy lifting happens concurrently; only short phase-flip safepoints
///    stop the world. Reclamation work is still *performed* (the heap must
///    stay healthy) but is not charged to pauses.
/// 2. **Throughput** — worst of all collectors (Figures 7–8), because every
///    mutator operation pays a read/write-barrier tax
///    ([`mutator_overhead_permille`](Collector::mutator_overhead_permille)).
/// 3. **Memory** — the process pre-reserves the entire heap at launch
///    (Figure 9 text: "results for C4 would be close to 2" for Cassandra), so
///    [`reported_committed_bytes`](Collector::reported_committed_bytes)
///    returns the full heap size.
#[derive(Debug)]
pub struct C4Collector {
    config: GcConfig,
    old: Option<SpaceId>,
    /// Barrier tax in permille of each mutator operation's base cost.
    barrier_permille: u32,
    /// Upper bound on any single safepoint.
    max_phase_pause_us: u64,
    /// Last-resort full cycles forced by a failed allocation.
    emergency_collections: u64,
}

impl C4Collector {
    /// Creates a C4 collector with the given tuning and the default barrier
    /// tax (28%) and 8 ms phase-pause bound.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GcConfig::validate`].
    pub fn new(config: GcConfig) -> Self {
        config.validate().expect("invalid GC configuration");
        C4Collector {
            config,
            old: None,
            barrier_permille: 280,
            max_phase_pause_us: 8_000,
            emergency_collections: 0,
        }
    }

    /// Overrides the barrier tax (for ablation benches).
    pub fn with_barrier_permille(mut self, permille: u32) -> Self {
        self.barrier_permille = permille;
        self
    }

    fn old_space(&self) -> SpaceId {
        self.old.expect("collector not attached")
    }

    /// Prices a concurrent cycle: four phase-flip safepoints, each bounded.
    /// Phase pauses grow with the number of threadsworth of roots, not with
    /// heap size — modeled as a slice of the safepoint cost plus a small
    /// work-dependent term, clamped to the bound.
    fn phase_pauses(&self, work: &GcWork) -> Vec<PauseEvent> {
        let base = self.config.cost.safepoint_us / 2;
        let phases = [
            base + (work.traced_objects / 2_000),
            base + (work.traced_objects / 4_000),
            base + (work.swept_objects / 4_000),
            base,
        ];
        phases
            .into_iter()
            .map(|us| PauseEvent {
                kind: GcKind::ConcurrentPhase,
                pause: polm2_metrics::SimDuration::from_micros(us.min(self.max_phase_pause_us)),
                work: GcWork::default(),
            })
            .collect()
    }

    fn cycle(
        &mut self,
        heap: &mut Heap,
        roots: &SafepointRoots<'_>,
        full: bool,
    ) -> Result<Vec<PauseEvent>, GcError> {
        let reclaim = full || over_mixed_trigger(heap, self.config.mixed_trigger_fraction);
        let threshold = if full {
            0
        } else {
            self.config.tenure_threshold
        };
        let (young, olds) = if reclaim {
            let cycle = MarkCycle::run(heap, roots);
            let young = evacuate_young(
                heap,
                &cycle.live,
                threshold,
                self.old_space(),
                survivor_cap(heap, self.config.survivor_ratio),
            )?;
            let olds = reclaim_spaces(heap, &cycle, &[self.old_space()], 1.0, u32::MAX)?;
            // See `G1Collector::full`: after a reclaiming cycle the mark's
            // live set is exact, so publish it for snapshot reuse.
            if roots.stack_roots().is_empty() {
                heap.publish_live(cycle.live);
            } else {
                heap.retire_live_set(cycle.live);
            }
            (young, olds)
        } else {
            let live = heap.mark_live_young(roots.stack_roots());
            let young = evacuate_young(
                heap,
                &live,
                threshold,
                self.old_space(),
                survivor_cap(heap, self.config.survivor_ratio),
            )?;
            heap.retire_live_set(live);
            (young, GcWork::default())
        };
        // Cycle boundary: let the backend run deferred allocator
        // maintenance (tenured free-list coalescing).
        heap.note_gc_cycle_finished();
        Ok(self.phase_pauses(&young.merged(olds)))
    }
}

impl Collector for C4Collector {
    fn name(&self) -> &'static str {
        "C4"
    }

    fn attach(&mut self, heap: &mut Heap) {
        assert!(self.old.is_none(), "collector already attached");
        self.old = Some(heap.create_space(GenId::new(1), None));
        heap.set_gc_workers(self.config.gc_workers);
    }

    fn alloc(
        &mut self,
        heap: &mut Heap,
        req: AllocRequest,
        roots: &SafepointRoots<'_>,
    ) -> Result<AllocOutcome, GcError> {
        let mut pauses = Vec::new();
        // Collect pre-emptively under pool pressure (see G1Collector::alloc).
        if pool_pressure(heap) {
            pauses.extend(
                self.cycle(heap, roots, true)
                    .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
            );
        }
        // A hard heap-limit miss (`OutOfMemory`) is retried the same way
        // pool exhaustion is: collection frees budget too.
        match heap.allocate(req.class, req.size, req.site, Heap::YOUNG_SPACE) {
            Ok(object) => return Ok(AllocOutcome { object, pauses }),
            Err(HeapError::SpaceFull { .. })
            | Err(HeapError::OutOfRegions { .. })
            | Err(HeapError::OutOfMemory { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        let full = pool_pressure(heap);
        pauses.extend(
            self.cycle(heap, roots, full)
                .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
        );
        match heap.allocate(req.class, req.size, req.site, Heap::YOUNG_SPACE) {
            Ok(object) => return Ok(AllocOutcome { object, pauses }),
            Err(HeapError::SpaceFull { .. })
            | Err(HeapError::OutOfRegions { .. })
            | Err(HeapError::OutOfMemory { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        // Last resort: one emergency full cycle, then the verdict.
        self.emergency_collections += 1;
        pauses.extend(
            self.cycle(heap, roots, true)
                .map_err(|e| oom_if_exhausted(e, u64::from(req.size)))?,
        );
        match heap.allocate(req.class, req.size, req.site, Heap::YOUNG_SPACE) {
            Ok(object) => Ok(AllocOutcome { object, pauses }),
            Err(_) => Err(GcError::OutOfMemory {
                requested: u64::from(req.size),
            }),
        }
    }

    fn collect(&mut self, heap: &mut Heap, roots: &SafepointRoots<'_>) -> Vec<PauseEvent> {
        self.cycle(heap, roots, true).unwrap_or_default()
    }

    fn mutator_overhead_permille(&self) -> u32 {
        self.barrier_permille
    }

    fn reported_committed_bytes(&self, heap: &Heap) -> u64 {
        heap.config().total_bytes
    }

    fn emergency_collections(&self) -> u64 {
        self.emergency_collections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{HeapConfig, SiteId};
    use polm2_metrics::SimDuration;

    use crate::ThreadId;

    fn setup() -> (Heap, C4Collector) {
        let mut heap = Heap::new(HeapConfig::small());
        let mut gc = C4Collector::new(GcConfig::default());
        gc.attach(&mut heap);
        (heap, gc)
    }

    fn req(heap: &mut Heap, size: u32) -> AllocRequest {
        AllocRequest {
            class: heap.classes_mut().intern("T"),
            size,
            site: SiteId::new(0),
            pretenure: false,
            thread: ThreadId::new(0),
        }
    }

    #[test]
    fn all_pauses_stay_below_ten_ms() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 4096);
        let slot = heap.roots_mut().create_slot("keep");
        for i in 0..3000 {
            let out = gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
            if i % 3 == 0 {
                heap.roots_mut().push(slot, out.object);
            }
            if i % 500 == 0 {
                heap.roots_mut().clear_slot(slot);
            }
            for p in &out.pauses {
                assert!(
                    p.pause < SimDuration::from_millis(10),
                    "C4 pause {} exceeds the paper's 10 ms bound",
                    p.pause
                );
                assert_eq!(p.kind, GcKind::ConcurrentPhase);
            }
        }
        heap.check_invariants();
    }

    #[test]
    fn barrier_tax_and_memory_reservation() {
        let (heap, gc) = setup();
        assert_eq!(gc.mutator_overhead_permille(), 280);
        assert_eq!(
            gc.reported_committed_bytes(&heap),
            heap.config().total_bytes
        );
        let tuned = C4Collector::new(GcConfig::default()).with_barrier_permille(100);
        assert_eq!(tuned.mutator_overhead_permille(), 100);
    }

    #[test]
    fn heap_stays_healthy_under_churn() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 2048);
        for _ in 0..5000 {
            gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
        }
        // All garbage: the concurrent cycles must have kept occupancy bounded.
        assert!(heap.object_count() < 3000, "dead objects must be reclaimed");
        heap.check_invariants();
    }

    #[test]
    fn forced_collect_emits_phase_pauses() {
        let (mut heap, mut gc) = setup();
        let r = req(&mut heap, 1024);
        gc.alloc(&mut heap, r, &SafepointRoots::none()).unwrap();
        let pauses = gc.collect(&mut heap, &SafepointRoots::none());
        assert_eq!(pauses.len(), 4);
    }
}
