//! Scenario tests for the collectors' G1-style machinery: concurrent-style
//! mark cycles (floating garbage), bounded collection sets, and the
//! interplay of young/mixed/full collections over longer operation
//! sequences.

use polm2_gc::{
    AllocRequest, C4Collector, Collector, G1Collector, GcConfig, GcKind, Ng2cCollector,
    SafepointRoots, ThreadId,
};
use polm2_heap::{Heap, HeapConfig, ObjectId, SiteId};

fn req(heap: &mut Heap, size: u32, pretenure: bool) -> AllocRequest {
    AllocRequest {
        class: heap.classes_mut().intern("T"),
        size,
        site: SiteId::new(0),
        pretenure,
        thread: ThreadId::new(0),
    }
}

/// Churn `n` objects, rooting every `keep_every`-th in `slot`.
fn churn(
    heap: &mut Heap,
    gc: &mut dyn Collector,
    n: usize,
    keep_every: usize,
    slot: &str,
) -> Vec<ObjectId> {
    let slot = heap.roots_mut().create_slot(slot);
    let mut kept = Vec::new();
    for i in 0..n {
        let r = req(heap, 2048, false);
        let out = gc.alloc(heap, r, &SafepointRoots::none()).expect("alloc");
        if keep_every > 0 && i % keep_every == 0 {
            heap.roots_mut().push(slot, out.object);
            kept.push(out.object);
        }
    }
    kept
}

#[test]
fn floating_garbage_is_reclaimed_within_a_mark_cycle_refresh() {
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    // A lower mixed trigger keeps reclamation active at this test's modest
    // occupancy.
    let mut gc = G1Collector::new(GcConfig {
        mixed_trigger_fraction: 0.25,
        ..GcConfig::default()
    });
    gc.attach(&mut heap);
    // Promote a large rooted cohort into old space.
    // Enough rooted mass (~120 MiB promoted) that old-space occupancy keeps
    // the mixed trigger armed after the cohort dies.
    let kept = churn(&mut heap, &mut gc, 120_000, 2, "cohort");
    let missing = kept.iter().filter(|&&o| heap.object(o).is_none()).count();
    assert_eq!(
        missing,
        0,
        "rooted objects vanished during churn: {missing} of {}",
        kept.len()
    );
    let live_before = heap.object_count();
    // Kill the cohort: it is now floating garbage w.r.t. any cached mark.
    let slot = heap.roots_mut().find_slot("cohort").unwrap();
    heap.roots_mut().clear_slot(slot);
    drop(kept);
    // Keep allocating: mixed pauses must eventually refresh the mark cycle
    // and drain the dead cohort.
    churn(&mut heap, &mut gc, 120_000, 0, "none");
    assert!(
        heap.object_count() < live_before / 4,
        "dead cohort must drain: {} live of {live_before} before",
        heap.object_count()
    );
    heap.check_invariants();
}

#[test]
fn mixed_pauses_respect_the_collection_set_bound() {
    let config = GcConfig {
        max_compact_regions_per_pause: 8,
        mixed_trigger_fraction: 0.25,
        ..GcConfig::default()
    };
    let region_bytes = HeapConfig::paper_scaled().region_bytes;
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    let mut gc = G1Collector::new(config);
    gc.attach(&mut heap);
    let slot = heap.roots_mut().create_slot("keep");
    let mut events = Vec::new();
    for i in 0..200_000 {
        let r = req(&mut heap, 2048, false);
        let out = gc
            .alloc(&mut heap, r, &SafepointRoots::none())
            .expect("alloc");
        if i % 3 == 0 {
            heap.roots_mut().push(slot, out.object);
        }
        if i % 9 == 0 {
            heap.roots_mut().remove(slot, out.object);
        }
        events.extend(out.pauses);
    }
    let mixed: Vec<_> = events.iter().filter(|p| p.kind == GcKind::Mixed).collect();
    assert!(!mixed.is_empty(), "the churn must trigger mixed pauses");
    for p in &mixed {
        assert!(
            p.work.compacted_bytes <= 8 * region_bytes,
            "collection set exceeded: {} bytes compacted",
            p.work.compacted_bytes
        );
    }
}

#[test]
fn ng2c_cohort_death_is_mostly_region_frees_not_compaction() {
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    let mut gc = Ng2cCollector::new(GcConfig::default());
    gc.attach(&mut heap);
    let gen = gc.new_generation(&mut heap);
    gc.set_target_gen(ThreadId::new(0), gen).unwrap();
    let slot = heap.roots_mut().create_slot("cohort");
    let mut freed_whole = 0u64;
    let mut compacted = 0u64;
    for round in 0..6 {
        // A pretenured cohort lives while young garbage churns, then dies.
        for _ in 0..8_192 {
            let r = req(&mut heap, 2048, true);
            let out = gc
                .alloc(&mut heap, r, &SafepointRoots::none())
                .expect("alloc");
            heap.roots_mut().push(slot, out.object);
        }
        for _ in 0..16_384 {
            let r = req(&mut heap, 2048, false);
            let out = gc
                .alloc(&mut heap, r, &SafepointRoots::none())
                .expect("alloc");
            for p in out.pauses {
                freed_whole += p.work.freed_regions;
                compacted += p.work.compacted_bytes;
            }
        }
        let _ = round;
        heap.roots_mut().clear_slot(slot);
    }
    assert!(
        freed_whole > 50,
        "cohort regions must be freed whole: {freed_whole}"
    );
    assert!(
        compacted < freed_whole * HeapConfig::paper_scaled().region_bytes / 4,
        "segregated cohorts should rarely need compaction: {compacted} bytes vs {freed_whole} regions"
    );
    heap.check_invariants();
}

#[test]
fn collectors_agree_on_what_is_garbage() {
    // Whatever the collector, after the workload ends and a full collection
    // runs, exactly the rooted objects survive.
    for collector in ["g1", "ng2c", "c4"] {
        let mut heap = Heap::new(HeapConfig::paper_scaled());
        let mut gc: Box<dyn Collector> = match collector {
            "g1" => Box::new(G1Collector::new(GcConfig::default())),
            "ng2c" => Box::new(Ng2cCollector::new(GcConfig::default())),
            _ => Box::new(C4Collector::new(GcConfig::default())),
        };
        gc.attach(&mut heap);
        let kept = churn(&mut heap, gc.as_mut(), 30_000, 10, "keep");
        gc.collect(&mut heap, &SafepointRoots::none());
        gc.collect(&mut heap, &SafepointRoots::none());
        assert_eq!(
            heap.object_count(),
            kept.len(),
            "{collector}: survivors must equal the rooted set"
        );
        for obj in kept {
            assert!(
                heap.object(obj).is_some(),
                "{collector}: rooted object lost"
            );
        }
        heap.check_invariants();
    }
}

#[test]
fn target_generation_survives_across_collections() {
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    let mut gc = Ng2cCollector::new(GcConfig::default());
    gc.attach(&mut heap);
    let gen = gc.new_generation(&mut heap);
    gc.set_target_gen(ThreadId::new(0), gen).unwrap();
    // Enough churn to force collections between pretenured allocations.
    for i in 0..60_000 {
        let pretenure = i % 7 == 0;
        let r = req(&mut heap, 2048, pretenure);
        let out = gc
            .alloc(&mut heap, r, &SafepointRoots::none())
            .expect("alloc");
        if pretenure {
            let rec = heap.object(out.object).unwrap();
            assert_eq!(
                rec.allocated_gen(),
                gen,
                "target generation drifted at op {i}"
            );
        }
    }
    assert_eq!(gc.target_gen(ThreadId::new(0)), gen);
}
