//! Property suite for the parallel-GC determinism contract: `gc_workers` is
//! a pure performance knob — for any allocation/root schedule, every worker
//! count must drive a heap trajectory bit-identical to the single-worker
//! baseline, for all three collectors. The comparison covers everything
//! observable: object placement (id, region, offset, size, age), page
//! dirty/no-need flags, the free pool, and the per-collection `GcWork`
//! accounting the cost model prices pauses from.
//!
//! `proptest` shrinking is not useful here (the schedule must replay
//! bit-for-bit), so the generator is a hand-rolled deterministic xorshift:
//! each seed yields one reproducible workload, checked across a spread of
//! seeds. Mirrors `crates/core/tests/parallel_determinism.rs`.

use polm2_gc::{
    AllocRequest, C4Collector, Collector, G1Collector, GcConfig, GcWork, Ng2cCollector,
    SafepointRoots, ThreadId,
};
use polm2_heap::{BackendKind, Heap, HeapConfig, ParallelTuning, SiteId, VerifyMode};

/// Heap-verification mode for every drive in this suite, from the
/// `POLM2_VERIFY_HEAP` environment variable (`scripts/check.sh` re-runs the
/// suite with `gc` set): at `gc` or `full` every collection is followed by a
/// full integrity pass. Verification is read-only, so the fingerprints and
/// `GcWork` accounting must stay bit-identical to an unverified drive.
fn env_verify_mode() -> VerifyMode {
    match std::env::var("POLM2_VERIFY_HEAP").as_deref() {
        Ok("gc") => VerifyMode::Gc,
        Ok("full") => VerifyMode::Full,
        _ => VerifyMode::Off,
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Everything observable about the heap, folded to one hash.
fn heap_fingerprint(heap: &Heap) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for space in heap.spaces() {
        for id in heap.objects_in_space(space.id()).expect("space exists") {
            let rec = heap.object(id).expect("listed object exists");
            h = fnv_mix(h, id.raw());
            h = fnv_mix(h, u64::from(rec.addr().region.raw()));
            h = fnv_mix(h, u64::from(rec.addr().offset));
            h = fnv_mix(h, u64::from(rec.size()));
            h = fnv_mix(h, u64::from(rec.age()));
        }
    }
    for flags in heap.page_table().iter() {
        h = fnv_mix(h, u64::from(flags.dirty) | u64::from(flags.no_need) << 1);
    }
    fnv_mix(h, u64::from(heap.free_region_count()))
}

/// Drives one seeded allocation/root/collection schedule through a fresh
/// heap and collector. Returns the final fingerprint plus every collection's
/// merged work — both must be invariant across worker counts.
fn drive<C: Collector>(
    make: impl Fn(GcConfig) -> C,
    seed: u64,
    workers: usize,
    backend: BackendKind,
) -> (u64, Vec<GcWork>) {
    let verify = env_verify_mode();
    let mut heap = Heap::new(HeapConfig::small().with_backend(backend));
    // The small test heap never crosses the production break-even
    // thresholds; force them to zero so multi-worker runs actually take the
    // parallel paths this suite exists to check.
    heap.set_parallel_tuning(ParallelTuning::force());
    let mut gc = make(GcConfig {
        gc_workers: workers,
        ..GcConfig::default()
    });
    gc.attach(&mut heap);
    let class = heap.classes_mut().intern("T");
    let keep = heap.roots_mut().create_slot("keep");
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut works = Vec::new();
    let mut last = None;
    for step in 0..2_500u64 {
        let size = 256 + (xorshift(&mut rng) % 3_840) as u32;
        let out = gc
            .alloc(
                &mut heap,
                AllocRequest {
                    class,
                    size,
                    site: SiteId::new((xorshift(&mut rng) % 6) as u32),
                    pretenure: false,
                    thread: ThreadId::new(0),
                },
                &SafepointRoots::none(),
            )
            .expect("allocation");
        for p in out.pauses {
            works.push(p.work);
        }
        // Root churn: keep a sliding window live, link a chain so the mark
        // chases pointers, drop everything now and then.
        match xorshift(&mut rng) % 10 {
            0..=3 => {
                heap.roots_mut().push(keep, out.object);
                if let Some(prev) = last {
                    let _ = heap.add_ref(out.object, prev);
                }
                last = Some(out.object);
            }
            4 if step % 400 == 399 => {
                heap.roots_mut().clear_slot(keep);
                last = None;
            }
            _ => {}
        }
        if step % 500 == 499 {
            for p in gc.collect(&mut heap, &SafepointRoots::none()) {
                works.push(p.work);
            }
            if verify != VerifyMode::Off {
                heap.verify_integrity().expect("post-collection verify");
            }
        }
    }
    heap.check_invariants();
    if verify != VerifyMode::Off {
        heap.verify_integrity().expect("final verify");
    }
    (heap_fingerprint(&heap), works)
}

fn assert_worker_invariant<C: Collector>(make: impl Fn(GcConfig) -> C + Copy, name: &str) {
    for seed in [1u64, 7, 42, 0xdead_beef] {
        let baseline = drive(make, seed, 1, BackendKind::Sim);
        for workers in [2usize, 4, 8] {
            let got = drive(make, seed, workers, BackendKind::Sim);
            assert_eq!(
                got.0, baseline.0,
                "{name} seed {seed}: heap diverged at gc_workers={workers}"
            );
            assert_eq!(
                got.1, baseline.1,
                "{name} seed {seed}: GcWork accounting diverged at gc_workers={workers}"
            );
        }
        // The real-memory backend must drive the same trajectory too, at
        // any worker count: backing regions with actual pages and memcpying
        // payloads is invisible to everything this fingerprint folds in.
        for workers in [1usize, 2, 4] {
            let got = drive(make, seed, workers, BackendKind::Real);
            assert_eq!(
                got.0, baseline.0,
                "{name} seed {seed}: real backend diverged at gc_workers={workers}"
            );
            assert_eq!(
                got.1, baseline.1,
                "{name} seed {seed}: real backend GcWork diverged at gc_workers={workers}"
            );
        }
    }
}

#[test]
fn g1_trajectories_are_worker_count_invariant() {
    assert_worker_invariant(G1Collector::new, "G1");
}

#[test]
fn ng2c_trajectories_are_worker_count_invariant() {
    assert_worker_invariant(Ng2cCollector::new, "NG2C");
}

#[test]
fn c4_trajectories_are_worker_count_invariant() {
    assert_worker_invariant(C4Collector::new, "C4");
}
