//! End-to-end determinism contract for parallel GC: `gc_workers` is a pure
//! performance knob, so a full profiling session — interpreter, collector,
//! recorder, snapshots, analysis — must produce a bit-identical
//! [`AnalysisOutcome`] at any worker count, including under seeded fault
//! injection (the chaos faults are deterministic per seed, so divergence can
//! only come from the collector reordering or re-weighing its work).
//!
//! Companion to `parallel_determinism.rs`, which pins the same contract for
//! the Analyzer's parallelism knob; the collector-level trajectory check
//! lives in `crates/gc/tests/worker_determinism.rs`.

use polm2_core::{AnalysisOutcome, AnalyzerConfig, FaultConfig, ProfilingSession, SnapshotPolicy};
use polm2_heap::{BackendKind, ParallelTuning, VerifyMode};
use polm2_runtime::{
    ClassDef, HookAction, HookRegistry, Instr, Jvm, MethodDef, Program, RuntimeConfig, SizeSpec,
};

fn workload_program() -> Program {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("Store")
            .with_method(
                MethodDef::new("put")
                    .push(Instr::call("Cell", "create", 10))
                    .push(Instr::native("insert", 11)),
            )
            .with_method(MethodDef::new("scratch").push(Instr::alloc(
                "Tmp",
                SizeSpec::Fixed(512),
                20,
            )))
            .with_method(MethodDef::new("flush").push(Instr::native("flush", 30))),
    );
    p.add_class(
        ClassDef::new("Cell").with_method(MethodDef::new("create").push(Instr::alloc(
            "Cell",
            SizeSpec::Fixed(1024),
            5,
        ))),
    );
    p
}

fn workload_hooks() -> HookRegistry {
    let mut h = HookRegistry::new();
    h.register_action("insert", |ctx| {
        let obj = ctx.acc.expect("cell before insert");
        let slot = ctx.heap.roots_mut().create_slot("memtable");
        ctx.heap.roots_mut().push(slot, obj);
        HookAction::default()
    });
    h.register_action("flush", |ctx| {
        if let Some(slot) = ctx.heap.roots().find_slot("memtable") {
            ctx.heap.roots_mut().clear_slot(slot);
        }
        HookAction::default()
    });
    h
}

/// Heap-verification mode for every session in this suite, from the
/// `POLM2_VERIFY_HEAP` environment variable (`scripts/check.sh` re-runs the
/// whole suite with `gc` set). Verification is read-only, so every
/// bit-identity assertion below must hold unchanged at any mode.
fn env_verify_mode() -> VerifyMode {
    match std::env::var("POLM2_VERIFY_HEAP").as_deref() {
        Ok("gc") => VerifyMode::Gc,
        Ok("full") => VerifyMode::Full,
        _ => VerifyMode::Off,
    }
}

/// One full profiling session at the given GC worker count; `fault_seed`
/// `Some(s)` runs it as a chaos session with every fault class enabled.
fn run_profiling(gc_workers: usize, fault_seed: Option<u64>) -> AnalysisOutcome {
    run_profiling_on(gc_workers, fault_seed, BackendKind::Sim, env_verify_mode())
}

fn run_profiling_on(
    gc_workers: usize,
    fault_seed: Option<u64>,
    backend: BackendKind,
    verify: VerifyMode,
) -> AnalysisOutcome {
    let mut session = match fault_seed {
        Some(seed) => ProfilingSession::with_faults(
            SnapshotPolicy::default(),
            FaultConfig {
                record_duplicate_rate: 0.0,
                ..FaultConfig::all_at(0.10, seed)
            },
        ),
        None => ProfilingSession::new(SnapshotPolicy::default()),
    };
    let mut jvm = Jvm::builder(
        RuntimeConfig::small()
            .with_gc_workers(gc_workers)
            .with_heap_backend(backend)
            .with_verify_heap(verify),
    )
    .hooks(workload_hooks())
    .transformer(session.recorder_agent())
    .build(workload_program())
    .expect("boot");
    // The small-heap session stays under the production break-even
    // thresholds; force them to zero so multi-worker runs genuinely take
    // the parallel mark/evacuate paths this contract is about.
    jvm.heap_mut().set_parallel_tuning(ParallelTuning::force());
    let t = jvm.spawn_thread();
    for batch in 0..6 {
        for _ in 0..200 {
            jvm.invoke(t, "Store", "put").expect("put");
            for _ in 0..4 {
                jvm.invoke(t, "Store", "scratch").expect("scratch");
            }
            session.after_op(&mut jvm).expect("after_op absorbs faults");
        }
        if batch % 3 == 2 {
            jvm.invoke(t, "Store", "flush").expect("flush");
        }
    }
    session
        .finish(&mut jvm, &AnalyzerConfig::default())
        .expect("finish")
        .outcome
}

#[test]
fn profiles_are_bit_identical_across_gc_worker_counts() {
    let baseline = run_profiling(1, None);
    assert!(
        !baseline.lifetimes.traces().is_empty(),
        "workload produced a trivial profile"
    );
    for workers in [2usize, 4, 8] {
        assert_eq!(
            run_profiling(workers, None),
            baseline,
            "profile diverged at gc_workers={workers}"
        );
    }
}

#[test]
fn profiles_are_bit_identical_on_the_real_memory_backend() {
    let baseline = run_profiling(1, None);
    for workers in [1usize, 2, 4] {
        assert_eq!(
            run_profiling_on(workers, None, BackendKind::Real, env_verify_mode()),
            baseline,
            "real-backend profile diverged at gc_workers={workers}"
        );
    }
}

/// Safepoint verification is observation, not participation: enabling it at
/// any mode, on either backend, at any worker count, must leave the profile
/// bit-identical to a run with it off.
#[test]
fn profiles_are_bit_identical_with_verification_enabled() {
    let baseline = run_profiling_on(1, None, BackendKind::Sim, VerifyMode::Off);
    for backend in [BackendKind::Sim, BackendKind::Real] {
        for verify in [VerifyMode::Gc, VerifyMode::Full] {
            for workers in [1usize, 4] {
                assert_eq!(
                    run_profiling_on(workers, None, backend, verify),
                    baseline,
                    "profile diverged with verify={verify:?} backend={backend:?} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn chaos_profiles_are_bit_identical_across_gc_worker_counts() {
    for fault_seed in [11u64, 23] {
        let baseline = run_profiling(1, Some(fault_seed));
        for workers in [2usize, 4, 8] {
            assert_eq!(
                run_profiling(workers, Some(fault_seed)),
                baseline,
                "fault seed {fault_seed}: chaos profile diverged at gc_workers={workers}"
            );
        }
    }
}
