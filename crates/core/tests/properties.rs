//! Property-based tests for POLM2's data structures: the profile format and
//! the STTree conflict machinery.

use proptest::prelude::*;

use polm2_core::{AllocationProfile, GenCall, PretenuredSite, SttTree};
use polm2_heap::GenId;
use polm2_runtime::CodeLoc;

fn arb_loc() -> impl Strategy<Value = CodeLoc> {
    ("[A-Z][a-z]{1,8}", "[a-z]{1,8}", 1u32..200)
        .prop_map(|(class, method, line)| CodeLoc::new(class, method, line))
}

fn arb_site() -> impl Strategy<Value = PretenuredSite> {
    (arb_loc(), 1u32..6, any::<bool>()).prop_map(|(loc, gen, local)| PretenuredSite {
        loc,
        gen: GenId::new(gen),
        local,
    })
}

fn arb_call() -> impl Strategy<Value = GenCall> {
    (arb_loc(), 1u32..6).prop_map(|(at, gen)| GenCall {
        at,
        gen: GenId::new(gen),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any profile survives serialization to text and back.
    #[test]
    fn profile_text_round_trip(
        sites in proptest::collection::vec(arb_site(), 0..20),
        calls in proptest::collection::vec(arb_call(), 0..20),
    ) {
        let mut profile = AllocationProfile::new();
        for s in sites {
            profile.add_site(s);
        }
        for c in calls {
            profile.add_gen_call(c);
        }
        let text = profile.to_string();
        let parsed: AllocationProfile = text.parse().expect("well-formed output");
        // Entries survive as sets (serialization orders them; duplicates at
        // the same location collapse deterministically to the rendered one).
        for site in parsed.sites() {
            prop_assert!(profile.sites().contains(site), "{site:?} not in source");
        }
        for call in parsed.gen_calls() {
            prop_assert!(profile.gen_calls().contains(call), "{call:?} not in source");
        }
        // Re-serializing the parse is a fixpoint.
        prop_assert_eq!(parsed.to_string(), text);
    }

    /// STTree conflict resolution always terminates and yields, per
    /// conflict, one resolution per path, anchored at a node on that path.
    #[test]
    fn sttree_resolutions_are_per_path(
        paths in proptest::collection::vec(
            (proptest::collection::vec(arb_loc(), 1..5), 0u32..4),
            1..30,
        ),
    ) {
        let mut tree = SttTree::new();
        for (path, gen) in &paths {
            tree.insert_path(path, GenId::new(*gen));
        }
        let conflicts = tree.detect_conflicts();
        let resolutions = tree.solve_conflicts(&conflicts);
        let members: usize = conflicts.iter().map(|c| c.path_count()).sum();
        prop_assert_eq!(resolutions.len(), members);
        for conflict in &conflicts {
            // Every conflict involves at least two distinct generations.
            let gens: std::collections::HashSet<u32> = resolutions
                .iter()
                .filter(|r| r.leaf == conflict.loc)
                .map(|r| r.gen.raw())
                .collect();
            prop_assert!(gens.len() >= 2, "conflict without generation diversity");
        }
    }

    /// Leaves reachable through a single path never conflict.
    #[test]
    fn unique_paths_do_not_conflict(
        stems in proptest::collection::vec(arb_loc(), 2..12),
        gens in proptest::collection::vec(0u32..4, 2..12),
    ) {
        let mut tree = SttTree::new();
        for (i, stem) in stems.iter().enumerate() {
            // Each path ends in a site unique to it.
            let site = CodeLoc::new("Site", "alloc", 1_000 + i as u32);
            tree.insert_path(&[stem.clone(), site], GenId::new(gens[i % gens.len()]));
        }
        prop_assert!(tree.detect_conflicts().is_empty());
    }

    /// Hoisting never picks a location deeper than the leaf and always
    /// returns the leaf itself when siblings disagree.
    #[test]
    fn hoist_points_are_sound(gen_a in 1u32..4, gen_b in 1u32..4) {
        let mut tree = SttTree::new();
        let caller = CodeLoc::new("App", "run", 1);
        tree.insert_path(&[caller.clone(), CodeLoc::new("A", "make", 2)], GenId::new(gen_a));
        tree.insert_path(&[caller.clone(), CodeLoc::new("B", "make", 3)], GenId::new(gen_b));
        let none = std::collections::HashSet::new();
        for leaf in tree.leaves() {
            let (at, is_leaf) = tree.hoist_point(leaf.idx, &none);
            if gen_a == gen_b {
                prop_assert_eq!(&at, &caller, "same gens hoist to the shared caller");
                prop_assert!(!is_leaf);
            } else {
                prop_assert_eq!(at, leaf.loc.clone(), "mixed gens stay site-local");
                prop_assert!(is_leaf);
            }
        }
    }
}
