//! Determinism suite for the two recorder paths: `RecorderPath::StackWalk`
//! (the seed behavior — walk the stack, materialize a `Vec<TraceFrame>` per
//! allocation) and `RecorderPath::TraceTrie` (the O(1) incremental path)
//! must produce **identical** `AllocationRecords` — same trace ids, same
//! frames, same identity-hash streams in the same order — and identical
//! final profiles, for any workload, drain schedule, and fault seed.
//!
//! The contract holds because both paths buffer events per thread and drain
//! them in thread order, and trace/symbol interning depends only on
//! first-seen event order.

use polm2_core::{
    AllocationRecords, AnalysisOutcome, AnalyzerConfig, FaultConfig, ProfilingSession, Recorder,
    SnapshotPolicy,
};
use polm2_heap::IdentityHash;
use polm2_runtime::{
    ClassDef, HookAction, HookRegistry, Instr, Jvm, MethodDef, Program, RecorderPath,
    RuntimeConfig, SizeSpec, TraceFrame,
};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Everything observable about an `AllocationRecords`: per trace id, the
/// materialized frames and the identity-hash stream, in id order.
type Fingerprint = (u64, Vec<(Vec<TraceFrame>, Vec<IdentityHash>)>);

fn fingerprint(records: &AllocationRecords) -> Fingerprint {
    let per_trace = records
        .trace_ids()
        .map(|id| (records.trace(id), records.stream(id).to_vec()))
        .collect();
    (records.total_records(), per_trace)
}

/// Drains the runtime into the recorder the way the pipeline does: columnar
/// fast path for trie-form buffers, materialized path for stack-walk events.
fn drain(recorder: &mut Recorder, jvm: &mut Jvm) -> u64 {
    let mut dropped = 0;
    jvm.drain_alloc_batches(|trie, program, batch| {
        dropped += recorder.ingest_nodes_checked(trie, program, batch);
    });
    if jvm.has_pending_alloc_events() {
        let events = jvm.drain_alloc_events();
        dropped += recorder.ingest_checked(events, jvm.program());
    }
    dropped
}

/// A seeded random call graph: methods allocate and call strictly-later
/// methods (a DAG, so depth is bounded), with lines drawn from the rng.
fn random_program(seed: u64) -> Program {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let classes = 2 + (xorshift(&mut rng) % 3) as usize;
    let methods = 3 + (xorshift(&mut rng) % 3) as usize;
    let total = classes * methods;
    let mut program = Program::new();
    for c in 0..classes {
        let mut class = ClassDef::new(format!("Class{c}"));
        for m in 0..methods {
            let idx = c * methods + m;
            let mut method = MethodDef::new(format!("method{m}"));
            let allocs = 1 + (xorshift(&mut rng) % 2);
            for _ in 0..allocs {
                method = method.push(Instr::alloc(
                    "Obj",
                    SizeSpec::Fixed(16 + (xorshift(&mut rng) % 48) as u32),
                    1 + (xorshift(&mut rng) % 30) as u32,
                ));
            }
            // Up to two calls, each to a method strictly later in the
            // flattened order — no recursion, bounded depth.
            for _ in 0..(xorshift(&mut rng) % 3) {
                if idx + 1 >= total {
                    break;
                }
                let target = idx + 1 + (xorshift(&mut rng) as usize % (total - idx - 1));
                method = method.push(Instr::call(
                    format!("Class{}", target / methods),
                    format!("method{}", target % methods),
                    1 + (xorshift(&mut rng) % 30) as u32,
                ));
            }
            class = class.with_method(method);
        }
        program.add_class(class);
    }
    program
}

/// A chain of `depth` methods, each calling the next; the innermost
/// allocates. Exercises deep stacks near `max_stack_depth`.
fn deep_program(depth: usize) -> Program {
    let mut class = ClassDef::new("Deep");
    for i in 0..depth {
        let mut method = MethodDef::new(format!("m{i}"));
        if i + 1 < depth {
            method = method.push(Instr::call("Deep", format!("m{}", i + 1), i as u32 + 1));
        } else {
            method = method.push(Instr::alloc("Leaf", SizeSpec::Fixed(32), 999));
        }
        class = class.with_method(method);
    }
    let mut program = Program::new();
    program.add_class(class);
    program
}

/// Runs `program` on two threads under the given recorder path, draining
/// every `stride` operations (and once at the end), and returns the
/// resulting records. The op sequence is a pure function of `seed`.
fn run_records(
    path: RecorderPath,
    program: Program,
    entries: &[(String, String)],
    seed: u64,
    ops: usize,
    stride: usize,
) -> AllocationRecords {
    let mut recorder = Recorder::new();
    let mut jvm = Jvm::builder(RuntimeConfig::small().with_recorder(path))
        .transformer(recorder.agent())
        .build(program)
        .expect("boot");
    let threads = [jvm.spawn_thread(), jvm.spawn_thread()];
    let mut rng = seed | 1;
    for op in 0..ops {
        let t = threads[(xorshift(&mut rng) % 2) as usize];
        let (class, method) = &entries[xorshift(&mut rng) as usize % entries.len()];
        jvm.invoke(t, class, method).expect("invoke");
        if (op + 1) % stride == 0 {
            assert_eq!(drain(&mut recorder, &mut jvm), 0, "no corrupt events");
        }
    }
    assert_eq!(drain(&mut recorder, &mut jvm), 0);
    assert!(!jvm.has_pending_alloc_events());
    recorder.into_records().expect("sole owner")
}

#[test]
fn seeded_random_sessions_agree_across_paths_and_drain_schedules() {
    for seed in [1u64, 42, 0xdead_beef] {
        let program = random_program(seed);
        let entries: Vec<(String, String)> = program
            .classes()
            .iter()
            .map(|c| (c.name.clone(), c.methods[0].name.clone()))
            .collect();
        // Finish-only (stride > ops), frequent, and ragged drains: each
        // schedule must agree across paths (drains happen at the same
        // points in both runs).
        for stride in [1usize, 7, usize::MAX] {
            let walk = run_records(
                RecorderPath::StackWalk,
                program.clone(),
                &entries,
                seed,
                120,
                stride,
            );
            let trie = run_records(
                RecorderPath::TraceTrie,
                program.clone(),
                &entries,
                seed,
                120,
                stride,
            );
            assert!(walk.total_records() > 0, "seed {seed}: trivial workload");
            assert_eq!(
                fingerprint(&walk),
                fingerprint(&trie),
                "seed {seed} stride {stride}: paths diverged"
            );
        }
    }
}

#[test]
fn deep_recursion_agrees_across_paths() {
    // A 200-deep chain under the default max_stack_depth of 256.
    let program = deep_program(200);
    let entries = vec![("Deep".to_string(), "m0".to_string())];
    let walk = run_records(RecorderPath::StackWalk, program.clone(), &entries, 9, 40, 3);
    let trie = run_records(RecorderPath::TraceTrie, program, &entries, 9, 40, 3);
    assert_eq!(walk.total_records(), 40);
    assert_eq!(walk.trace_count(), 1, "one unique 200-frame trace");
    assert_eq!(walk.trace(walk.trace_ids().next().unwrap()).len(), 200);
    assert_eq!(fingerprint(&walk), fingerprint(&trie));
}

// ---------------------------------------------------------------------------
// End-to-end: full profiling sessions (drains inside `after_op`, snapshots,
// analysis) must yield identical outcomes across recorder paths — including
// chaos sessions, where the injector forces the materialized drain route.
// ---------------------------------------------------------------------------

fn workload_program() -> Program {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("Store")
            .with_method(
                MethodDef::new("put")
                    .push(Instr::call("Cell", "create", 10))
                    .push(Instr::native("insert", 11)),
            )
            .with_method(MethodDef::new("scratch").push(Instr::alloc(
                "Tmp",
                SizeSpec::Fixed(512),
                20,
            )))
            .with_method(MethodDef::new("flush").push(Instr::native("flush", 30))),
    );
    p.add_class(
        ClassDef::new("Cell").with_method(MethodDef::new("create").push(Instr::alloc(
            "Cell",
            SizeSpec::Fixed(1024),
            5,
        ))),
    );
    p
}

fn workload_hooks() -> HookRegistry {
    let mut h = HookRegistry::new();
    h.register_action("insert", |ctx| {
        let obj = ctx.acc.expect("cell before insert");
        let slot = ctx.heap.roots_mut().create_slot("memtable");
        ctx.heap.roots_mut().push(slot, obj);
        HookAction::default()
    });
    h.register_action("flush", |ctx| {
        if let Some(slot) = ctx.heap.roots().find_slot("memtable") {
            ctx.heap.roots_mut().clear_slot(slot);
        }
        HookAction::default()
    });
    h
}

fn run_session(path: RecorderPath, faults: Option<FaultConfig>) -> AnalysisOutcome {
    let mut session = match faults {
        Some(f) => ProfilingSession::with_faults(SnapshotPolicy::default(), f),
        None => ProfilingSession::new(SnapshotPolicy::default()),
    };
    let mut jvm = Jvm::builder(RuntimeConfig::small().with_recorder(path))
        .hooks(workload_hooks())
        .transformer(session.recorder_agent())
        .build(workload_program())
        .expect("boot");
    let t = jvm.spawn_thread();
    for batch in 0..9 {
        for _ in 0..300 {
            jvm.invoke(t, "Store", "put").expect("put");
            for _ in 0..8 {
                jvm.invoke(t, "Store", "scratch").expect("scratch");
            }
            session.after_op(&mut jvm).expect("after_op");
        }
        if batch % 3 == 2 {
            jvm.invoke(t, "Store", "flush").expect("flush");
        }
    }
    session
        .finish(&mut jvm, &AnalyzerConfig::default())
        .expect("finish")
        .outcome
}

#[test]
fn end_to_end_profiles_agree_across_paths() {
    let walk = run_session(RecorderPath::StackWalk, None);
    let trie = run_session(RecorderPath::TraceTrie, None);
    assert!(!walk.profile.is_empty(), "workload produces a real profile");
    assert_eq!(walk, trie);
}

#[test]
fn chaos_sessions_agree_across_paths() {
    for fault_seed in [11u64, 23] {
        let faults = FaultConfig::all_at(0.10, fault_seed);
        let walk = run_session(RecorderPath::StackWalk, Some(faults));
        let trie = run_session(RecorderPath::TraceTrie, Some(faults));
        assert_eq!(walk, trie, "fault seed {fault_seed}: chaos runs diverged");
    }
}
