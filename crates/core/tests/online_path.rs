//! The zero-retrace snapshot path, end to end: collectors publish their
//! just-computed live set, the CRIU Dumper reuses it when still current, and
//! any heap mutation in between forces the fallback fresh trace — with
//! bit-identical snapshots either way.

use polm2_gc::{
    AllocRequest, C4Collector, Collector, G1Collector, GcConfig, Ng2cCollector, SafepointRoots,
    ThreadId,
};
use polm2_heap::{Heap, HeapConfig, ObjectId, SiteId};
use polm2_metrics::SimTime;
use polm2_snapshot::{CriuDumper, DumperOptions, HeapDumper, Snapshot};

fn request(heap: &mut Heap, size: u32, site: u32) -> AllocRequest {
    AllocRequest {
        class: heap.classes_mut().intern("T"),
        size,
        site: SiteId::new(site),
        pretenure: false,
        thread: ThreadId::new(0),
    }
}

/// Churns allocations through the collector: every fourth object is rooted
/// (survivors that tenure), the rest die young.
fn churn(heap: &mut Heap, gc: &mut dyn Collector, objects: u32) -> Vec<ObjectId> {
    let slot = heap.roots_mut().create_slot("survivors");
    let mut kept = Vec::new();
    for i in 0..objects {
        let req = request(heap, 2_048 + (i % 7) * 512, i % 4);
        let out = gc
            .alloc(heap, req, &SafepointRoots::none())
            .expect("allocation");
        if i % 4 == 0 {
            heap.roots_mut().push(slot, out.object);
            kept.push(out.object);
        }
    }
    kept
}

fn assert_snapshots_equal(a: &Snapshot, b: &Snapshot, context: &str) {
    assert_eq!(a.sorted_hashes(), b.sorted_hashes(), "{context}: contents");
    assert_eq!(a.live_objects, b.live_objects, "{context}: live counts");
    assert_eq!(a.size_bytes, b.size_bytes, "{context}: captured bytes");
    assert_eq!(a.capture_time, b.capture_time, "{context}: capture cost");
}

/// Runs GC→snapshot cycles twice — zero-retrace dumper vs forced-fresh-trace
/// dumper — over identically driven heaps, and demands identical snapshot
/// sequences.
fn reuse_matches_fresh_for(make: &dyn Fn() -> Box<dyn Collector>) {
    let run = |reuse: bool| -> Vec<Snapshot> {
        let mut heap = Heap::new(HeapConfig::small());
        let mut gc = make();
        gc.attach(&mut heap);
        let mut dumper = CriuDumper::with_options(DumperOptions {
            reuse_live_set: reuse,
            ..DumperOptions::default()
        });
        let mut snaps = Vec::new();
        churn(&mut heap, gc.as_mut(), 400);
        for cycle in 0..6u64 {
            gc.collect(&mut heap, &SafepointRoots::none());
            let snap = dumper
                .snapshot(&mut heap, SimTime::from_secs(cycle))
                .expect("snapshot");
            snaps.push(snap);
            // Mutate between cycles so later snapshots have fresh content.
            for i in 0..40 {
                let req = request(&mut heap, 1_024, i % 3);
                gc.alloc(&mut heap, req, &SafepointRoots::none())
                    .expect("allocation");
            }
        }
        snaps
    };

    let reused = run(true);
    let fresh = run(false);
    assert_eq!(reused.len(), fresh.len());
    for (i, (a, b)) in reused.iter().zip(&fresh).enumerate() {
        assert_snapshots_equal(a, b, &format!("cycle {i}"));
    }
}

#[test]
fn reused_live_set_matches_fresh_trace_g1() {
    reuse_matches_fresh_for(&|| Box::new(G1Collector::new(GcConfig::default())));
}

#[test]
fn reused_live_set_matches_fresh_trace_ng2c() {
    reuse_matches_fresh_for(&|| Box::new(Ng2cCollector::new(GcConfig::default())));
}

#[test]
fn reused_live_set_matches_fresh_trace_c4() {
    reuse_matches_fresh_for(&|| Box::new(C4Collector::new(GcConfig::default())));
}

#[test]
fn full_collection_publishes_a_current_live_set() {
    let mut heap = Heap::new(HeapConfig::small());
    let mut gc = G1Collector::new(GcConfig::default());
    gc.attach(&mut heap);
    churn(&mut heap, &mut gc, 200);

    assert!(!heap.has_current_published_live(), "nothing published yet");
    gc.collect(&mut heap, &SafepointRoots::none());
    assert!(
        heap.has_current_published_live(),
        "a root-table-only full GC must publish its live set"
    );
}

#[test]
fn stack_roots_suppress_publication() {
    let mut heap = Heap::new(HeapConfig::small());
    let mut gc = G1Collector::new(GcConfig::default());
    gc.attach(&mut heap);
    let kept = churn(&mut heap, &mut gc, 200);

    let stack = [kept[0]];
    gc.collect(&mut heap, &SafepointRoots::new(&stack));
    assert!(
        !heap.has_current_published_live(),
        "stack-rooted traces see more than the Dumper would; never reused"
    );
}

/// Every kind of mutation between GC and snapshot invalidates the published
/// set, and the Dumper's fallback trace still produces the right snapshot.
#[test]
fn any_mutation_between_gc_and_snapshot_invalidates_reuse() {
    type Mutation = fn(&mut Heap, &[ObjectId]);
    let mutations: &[(&str, Mutation)] = &[
        ("allocate", |heap, _kept| {
            let class = heap.classes_mut().intern("T");
            heap.allocate(class, 256, SiteId::new(9), Heap::YOUNG_SPACE)
                .expect("allocation");
        }),
        ("add_ref", |heap, kept| {
            heap.add_ref(kept[0], kept[1]).expect("edge");
        }),
        ("remove_ref", |heap, kept| {
            heap.add_ref(kept[0], kept[1]).expect("edge");
            // Re-marking after the add: only the remove below must invalidate.
            let live = heap.mark_live(&[]);
            heap.publish_live(live);
            assert!(heap.has_current_published_live());
            heap.remove_ref(kept[0], kept[1]).expect("edge removed");
        }),
        ("root push", |heap, kept| {
            let slot = heap.roots_mut().create_slot("extra");
            heap.roots_mut().push(slot, kept[0]);
        }),
        ("root remove", |heap, kept| {
            let slot = heap.roots_mut().find_slot("survivors").expect("slot");
            heap.roots_mut().remove(slot, kept[0]);
        }),
        ("drop_object", |heap, kept| {
            let slot = heap.roots_mut().find_slot("survivors").expect("slot");
            heap.roots_mut().remove(slot, kept[0]);
            let live = heap.mark_live(&[]);
            heap.publish_live(live);
            assert!(heap.has_current_published_live());
            heap.drop_object(kept[0]).expect("dropped");
        }),
    ];

    for (name, mutate) in mutations {
        let mut heap = Heap::new(HeapConfig::small());
        let mut gc = G1Collector::new(GcConfig::default());
        gc.attach(&mut heap);
        let kept = churn(&mut heap, &mut gc, 200);

        gc.collect(&mut heap, &SafepointRoots::none());
        assert!(heap.has_current_published_live(), "{name}: published");
        mutate(&mut heap, &kept);
        assert!(
            !heap.has_current_published_live(),
            "{name}: mutation must invalidate the published live set"
        );

        // The fallback path re-traces and must agree with a straight mark.
        let mut dumper = CriuDumper::new();
        let snap = dumper.snapshot(&mut heap, SimTime::ZERO).expect("snapshot");
        let live = heap.mark_live(&[]);
        assert_eq!(
            snap.live_objects,
            live.len() as u64,
            "{name}: fallback trace content"
        );
    }
}

/// Field writes dirty pages but do not change reachability: the published
/// set stays reusable and incremental snapshots still capture the writes.
#[test]
fn field_writes_keep_reuse_valid_but_dirty_pages() {
    let mut heap = Heap::new(HeapConfig::small());
    let mut gc = G1Collector::new(GcConfig::default());
    gc.attach(&mut heap);
    let kept = churn(&mut heap, &mut gc, 200);

    let mut dumper = CriuDumper::new();
    gc.collect(&mut heap, &SafepointRoots::none());
    dumper.snapshot(&mut heap, SimTime::ZERO).expect("snapshot");

    // Snapshot re-published the set; a pure field write must not unpublish.
    let survivor = kept.iter().find(|&&o| heap.object(o).is_some()).copied();
    heap.write_field(survivor.expect("a survivor"))
        .expect("write");
    assert!(
        heap.has_current_published_live(),
        "field writes do not change reachability"
    );
    let snap = dumper
        .snapshot(&mut heap, SimTime::from_secs(1))
        .expect("snapshot");
    assert!(
        snap.size_bytes >= u64::from(heap.page_table().page_bytes()),
        "the dirtied page must be captured"
    );
}

/// Back-to-back snapshots with no mutation in between: the second reuses the
/// set the first re-published.
#[test]
fn snapshot_republishes_for_back_to_back_captures() {
    let mut heap = Heap::new(HeapConfig::small());
    let mut gc = G1Collector::new(GcConfig::default());
    gc.attach(&mut heap);
    churn(&mut heap, &mut gc, 200);
    gc.collect(&mut heap, &SafepointRoots::none());

    let mut dumper = CriuDumper::new();
    let epoch_before = heap.mark_epoch();
    let first = dumper.snapshot(&mut heap, SimTime::ZERO).expect("snapshot");
    let second = dumper
        .snapshot(&mut heap, SimTime::from_secs(1))
        .expect("snapshot");
    assert_eq!(
        heap.mark_epoch(),
        epoch_before,
        "neither snapshot should have re-traced the collector-marked heap"
    );
    assert_eq!(first.sorted_hashes(), second.sorted_hashes());
}
