//! Chaos integration suite: the full profiling pipeline under seeded fault
//! injection.
//!
//! The contract under test is *graceful monotone degradation*: every injected
//! fault only removes or garbles evidence, so a faulty profiling run may
//! pretenure fewer sites than a fault-free one — never different or wrong
//! ones — and the pipeline itself never panics; faults surface as typed
//! errors or counted skips.

use polm2_core::{
    AllocationProfile, AnalyzerConfig, FaultConfig, ProfileParseError, ProfilingSession,
    SnapshotPolicy,
};
use polm2_metrics::FaultCounters;
use polm2_runtime::{
    ClassDef, CodeLoc, HookAction, HookRegistry, Instr, Jvm, MethodDef, Program, RuntimeConfig,
    SizeSpec,
};

/// A memtable-style toy workload: `put` cells that live until `flush`, plus
/// `scratch` garbage — enough lifetime contrast for the Analyzer to pretenure
/// the cell site and leave the scratch site young.
fn workload_program() -> Program {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("Store")
            .with_method(
                MethodDef::new("put")
                    .push(Instr::call("Cell", "create", 10))
                    .push(Instr::native("insert", 11)),
            )
            .with_method(MethodDef::new("scratch").push(Instr::alloc(
                "Tmp",
                SizeSpec::Fixed(512),
                20,
            )))
            .with_method(MethodDef::new("flush").push(Instr::native("flush", 30))),
    );
    p.add_class(
        ClassDef::new("Cell").with_method(MethodDef::new("create").push(Instr::alloc(
            "Cell",
            SizeSpec::Fixed(1024),
            5,
        ))),
    );
    p
}

fn workload_hooks() -> HookRegistry {
    let mut h = HookRegistry::new();
    h.register_action("insert", |ctx| {
        let obj = ctx.acc.expect("cell before insert");
        let slot = ctx.heap.roots_mut().create_slot("memtable");
        ctx.heap.roots_mut().push(slot, obj);
        HookAction::default()
    });
    h.register_action("flush", |ctx| {
        if let Some(slot) = ctx.heap.roots().find_slot("memtable") {
            ctx.heap.roots_mut().clear_slot(slot);
        }
        HookAction::default()
    });
    h
}

/// Runs the profiling phase to completion and returns what it produced.
fn run_profiling(session: ProfilingSession) -> (AllocationProfile, FaultCounters) {
    let mut session = session;
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .hooks(workload_hooks())
        .transformer(session.recorder_agent())
        .build(workload_program())
        .expect("boot");
    let t = jvm.spawn_thread();
    for batch in 0..9 {
        for _ in 0..300 {
            jvm.invoke(t, "Store", "put").expect("put");
            for _ in 0..8 {
                jvm.invoke(t, "Store", "scratch").expect("scratch");
            }
            session.after_op(&mut jvm).expect("after_op absorbs faults");
        }
        if batch % 3 == 2 {
            jvm.invoke(t, "Store", "flush").expect("flush");
        }
    }
    let report = session
        .finish(&mut jvm, &AnalyzerConfig::default())
        .expect("finish");
    (report.outcome.profile, report.counters)
}

/// The chaos configuration for the degradation tests: every fault kind at
/// `rate` except duplication, which is excluded from the subset property
/// (a duplicated record adds evidence instead of removing it, so it can
/// legitimately push a borderline site over the Analyzer's thresholds).
fn chaos_without_duplication(rate: f64, seed: u64) -> FaultConfig {
    FaultConfig {
        record_duplicate_rate: 0.0,
        ..FaultConfig::all_at(rate, seed)
    }
}

fn site_locs(profile: &AllocationProfile) -> Vec<CodeLoc> {
    profile.sites().iter().map(|s| s.loc.clone()).collect()
}

#[test]
fn inert_chaos_session_is_byte_identical_to_a_plain_one() {
    let (plain, plain_counters) = run_profiling(ProfilingSession::new(SnapshotPolicy::default()));
    let (chaos, chaos_counters) = run_profiling(ProfilingSession::with_faults(
        SnapshotPolicy::default(),
        FaultConfig::default(),
    ));
    assert_eq!(
        chaos.to_string(),
        plain.to_string(),
        "0% fault rate must change nothing"
    );
    assert!(plain_counters.is_clean());
    assert!(chaos_counters.is_clean());
    assert!(
        !plain.is_empty(),
        "the workload must yield a non-trivial profile"
    );
}

#[test]
fn ten_percent_chaos_completes_and_degrades_monotonically() {
    let (clean_profile, _) = run_profiling(ProfilingSession::new(SnapshotPolicy::default()));
    let clean_sites = site_locs(&clean_profile);
    assert!(!clean_sites.is_empty());

    for seed in [3u64, 17, 99] {
        let session = ProfilingSession::with_faults(
            SnapshotPolicy::default(),
            chaos_without_duplication(0.10, seed),
        );
        let mut session = session;
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(session.recorder_agent())
            .build(workload_program())
            .expect("boot");
        let t = jvm.spawn_thread();
        for batch in 0..9 {
            for _ in 0..300 {
                jvm.invoke(t, "Store", "put").expect("put");
                for _ in 0..8 {
                    jvm.invoke(t, "Store", "scratch").expect("scratch");
                }
                session
                    .after_op(&mut jvm)
                    .expect("default recovery absorbs faults");
            }
            if batch % 3 == 2 {
                jvm.invoke(t, "Store", "flush").expect("flush");
            }
        }
        let injected = session.injected_faults().expect("chaos session");
        let report = session
            .finish(&mut jvm, &AnalyzerConfig::default())
            .expect("finish");

        // Faults actually fired, and the detected ledger is consistent with
        // the injected ground truth: every structurally corrupt record was
        // caught at ingest, every injected capture failure was observed.
        assert_ne!(injected, Default::default(), "seed {seed}: no faults fired");
        assert_eq!(
            report.counters.records_dropped_corrupt, injected.records_corrupted,
            "seed {seed}: every corrupt record is dropped at ingest"
        );
        assert_eq!(
            report.counters.snapshots_failed, injected.snapshot_failures,
            "seed {seed}: every injected capture failure is counted"
        );
        assert!(
            !report.counters.is_clean(),
            "seed {seed}: degradation must be visible"
        );

        // Monotone degradation: chaos may lose pretenured sites, never
        // invent them.
        for loc in site_locs(&report.outcome.profile) {
            assert!(
                clean_sites.contains(&loc),
                "seed {seed}: chaos invented a pretenured site {loc} not in the fault-free set"
            );
        }
    }
}

#[test]
fn same_chaos_seed_reproduces_the_same_degraded_profile() {
    let config = chaos_without_duplication(0.10, 11);
    let (a, ca) = run_profiling(ProfilingSession::with_faults(
        SnapshotPolicy::default(),
        config,
    ));
    let (b, cb) = run_profiling(ProfilingSession::with_faults(
        SnapshotPolicy::default(),
        config,
    ));
    assert_eq!(a.to_string(), b.to_string());
    assert_eq!(ca, cb);
}

#[test]
fn corrupted_profile_text_yields_typed_errors_never_panics() {
    let (profile, _) = run_profiling(ProfilingSession::new(SnapshotPolicy::default()));
    let original = profile.to_string();

    let mut parse_failures = 0u32;
    for seed in 0..32u64 {
        let mut injector = polm2_core::FaultInjector::new(FaultConfig {
            profile_corrupt_rate: 0.05,
            seed,
            ..FaultConfig::default()
        });
        let mut text = original.clone();
        injector.corrupt_profile_text(&mut text);
        // Parsing corrupted text must return a typed error or a (possibly
        // smaller) profile — never panic.
        match text.parse::<AllocationProfile>() {
            Ok(parsed) => {
                // Anything that still parses is either an original entry or
                // visibly clobbered (the replacement character never maps
                // back to a clean location).
                for site in parsed.sites() {
                    assert!(
                        profile.sites().contains(site) || site.loc.to_string().contains('\u{FFFD}'),
                        "seed {seed}: corruption fabricated a clean-looking entry {:?}",
                        site.loc
                    );
                }
            }
            Err(err) => {
                parse_failures += 1;
                let _: &ProfileParseError = &err;
                assert!(!err.to_string().is_empty());
            }
        }
    }
    assert!(
        parse_failures > 0,
        "5% per-char corruption must break some parse"
    );
}
