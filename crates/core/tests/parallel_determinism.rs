//! Property suite for the Analyzer's determinism contract: replay strategy
//! and parallelism level are pure performance knobs — for any input, every
//! (strategy × parallelism) combination must produce an
//! [`AnalysisOutcome`] identical to the sequential hash-probe baseline,
//! including under seeded fault injection.
//!
//! `proptest` is not available offline, so the generator is a hand-rolled
//! deterministic xorshift: each seed yields one reproducible random workload
//! (program shape, trace depths, object counts, lifespans), and the property
//! is checked across a spread of seeds.

use polm2_core::{
    AllocationRecords, AnalysisOutcome, Analyzer, AnalyzerConfig, FaultConfig, ProfilingSession,
    ReplayStrategy, SnapshotPolicy,
};
use polm2_heap::{Heap, HeapConfig, IdentityHash, ObjectId};
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::{
    ClassDef, HookAction, HookRegistry, Instr, Jvm, LoadedProgram, Loader, MethodDef, Program,
    RuntimeConfig, SizeSpec, TraceFrame,
};
use polm2_snapshot::{Snapshot, SnapshotSeries};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One seeded random workload: a loaded program plus records and snapshots
/// generated directly (no JVM run needed — the Analyzer only sees these).
fn random_workload(seed: u64) -> (AllocationRecords, SnapshotSeries, LoadedProgram) {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let classes = 3 + (xorshift(&mut rng) % 4) as usize;
    let methods = 2 + (xorshift(&mut rng) % 4) as usize;
    let mut program = Program::new();
    for c in 0..classes {
        let mut class = ClassDef::new(format!("Class{c}"));
        for m in 0..methods {
            class = class.with_method(MethodDef::new(format!("method{m}")).push(Instr::alloc(
                "Obj",
                SizeSpec::Fixed(32),
                1,
            )));
        }
        program.add_class(class);
    }
    let mut heap = Heap::new(HeapConfig::small());
    let loaded = Loader::load(program, &mut [], &mut heap).expect("load");

    let snapshot_count = 2 + (xorshift(&mut rng) % 15) as u32;
    let traces = 8 + (xorshift(&mut rng) % 40) as usize;
    let mut records = AllocationRecords::default();
    let mut live: Vec<Vec<IdentityHash>> = vec![Vec::new(); snapshot_count as usize];
    let mut next_object = 0u64;
    for _ in 0..traces {
        let depth = 1 + (xorshift(&mut rng) % 4) as usize;
        let trace: Vec<TraceFrame> = (0..depth)
            .map(|_| TraceFrame {
                class_idx: (xorshift(&mut rng) % classes as u64) as u16,
                method_idx: (xorshift(&mut rng) % methods as u64) as u16,
                line: 1 + (xorshift(&mut rng) % 50) as u32,
            })
            .collect();
        let objects = 1 + (xorshift(&mut rng) % 48);
        // A per-trace lifespan bias so traces differ in typical survivals;
        // per-object jitter keeps histograms multi-bucket.
        let bias = xorshift(&mut rng) % (u64::from(snapshot_count) + 1);
        for _ in 0..objects {
            next_object += 1;
            let hash = IdentityHash::of(ObjectId::new(next_object));
            records.record(&trace, hash);
            let jitter = xorshift(&mut rng) % 3;
            let lifespan = (bias + jitter).min(u64::from(snapshot_count));
            for snap in live.iter_mut().take(lifespan as usize) {
                snap.push(hash);
            }
        }
    }
    let series: SnapshotSeries = live
        .into_iter()
        .enumerate()
        .map(|(seq, hashes)| {
            Snapshot::new(
                seq as u32,
                SimTime::from_secs(seq as u64),
                hashes.iter().copied().collect(),
                4096,
                SimDuration::from_millis(1),
            )
        })
        .collect();
    (records, series, loaded)
}

fn analyze_with(
    records: &AllocationRecords,
    series: &SnapshotSeries,
    program: &LoadedProgram,
    replay: ReplayStrategy,
    parallelism: usize,
) -> AnalysisOutcome {
    Analyzer::new(AnalyzerConfig {
        replay,
        parallelism,
        min_survivals: 1,
        ..AnalyzerConfig::default()
    })
    .analyze(records, series, program)
}

#[test]
fn every_strategy_and_parallelism_matches_the_sequential_baseline() {
    for seed in [1u64, 7, 42, 1234, 0xdead_beef] {
        let (records, series, program) = random_workload(seed);
        let baseline = analyze_with(&records, &series, &program, ReplayStrategy::HashProbe, 1);
        assert!(
            !baseline.lifetimes.traces().is_empty(),
            "seed {seed}: generator produced a trivial workload"
        );
        for replay in [ReplayStrategy::HashProbe, ReplayStrategy::SortedMerge] {
            for parallelism in [1usize, 2, 4, 8] {
                let outcome = analyze_with(&records, &series, &program, replay, parallelism);
                assert_eq!(
                    outcome, baseline,
                    "seed {seed}: {replay:?} x parallelism={parallelism} diverged"
                );
            }
        }
    }
}

#[test]
fn degenerate_inputs_are_handled_identically() {
    let (records, _, program) = random_workload(3);
    // Empty snapshot series.
    let empty = SnapshotSeries::new();
    let base = analyze_with(&records, &empty, &program, ReplayStrategy::HashProbe, 1);
    for parallelism in [2, 8] {
        assert_eq!(
            analyze_with(
                &records,
                &empty,
                &program,
                ReplayStrategy::SortedMerge,
                parallelism
            ),
            base
        );
    }
    // Empty records.
    let (_, series, program) = random_workload(4);
    let none = AllocationRecords::default();
    let base = analyze_with(&none, &series, &program, ReplayStrategy::HashProbe, 1);
    assert_eq!(
        analyze_with(&none, &series, &program, ReplayStrategy::SortedMerge, 8),
        base
    );
    assert!(base.profile.is_empty());
}

// ---------------------------------------------------------------------------
// The same contract end-to-end: a full profiling session under seeded fault
// injection, analyzed with different knobs, must produce identical outcomes
// (the faults are deterministic per seed, so the Analyzer sees identical
// evidence — the knobs must not re-order or re-weigh it).
// ---------------------------------------------------------------------------

fn workload_program() -> Program {
    let mut p = Program::new();
    p.add_class(
        ClassDef::new("Store")
            .with_method(
                MethodDef::new("put")
                    .push(Instr::call("Cell", "create", 10))
                    .push(Instr::native("insert", 11)),
            )
            .with_method(MethodDef::new("scratch").push(Instr::alloc(
                "Tmp",
                SizeSpec::Fixed(512),
                20,
            )))
            .with_method(MethodDef::new("flush").push(Instr::native("flush", 30))),
    );
    p.add_class(
        ClassDef::new("Cell").with_method(MethodDef::new("create").push(Instr::alloc(
            "Cell",
            SizeSpec::Fixed(1024),
            5,
        ))),
    );
    p
}

fn workload_hooks() -> HookRegistry {
    let mut h = HookRegistry::new();
    h.register_action("insert", |ctx| {
        let obj = ctx.acc.expect("cell before insert");
        let slot = ctx.heap.roots_mut().create_slot("memtable");
        ctx.heap.roots_mut().push(slot, obj);
        HookAction::default()
    });
    h.register_action("flush", |ctx| {
        if let Some(slot) = ctx.heap.roots().find_slot("memtable") {
            ctx.heap.roots_mut().clear_slot(slot);
        }
        HookAction::default()
    });
    h
}

fn run_chaos_profiling(fault_seed: u64, config: &AnalyzerConfig) -> AnalysisOutcome {
    let mut session = ProfilingSession::with_faults(
        SnapshotPolicy::default(),
        FaultConfig {
            record_duplicate_rate: 0.0,
            ..FaultConfig::all_at(0.10, fault_seed)
        },
    );
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .hooks(workload_hooks())
        .transformer(session.recorder_agent())
        .build(workload_program())
        .expect("boot");
    let t = jvm.spawn_thread();
    for batch in 0..6 {
        for _ in 0..200 {
            jvm.invoke(t, "Store", "put").expect("put");
            for _ in 0..4 {
                jvm.invoke(t, "Store", "scratch").expect("scratch");
            }
            session.after_op(&mut jvm).expect("after_op absorbs faults");
        }
        if batch % 3 == 2 {
            jvm.invoke(t, "Store", "flush").expect("flush");
        }
    }
    session.finish(&mut jvm, config).expect("finish").outcome
}

#[test]
fn chaos_sessions_agree_across_strategies_and_parallelism() {
    for fault_seed in [11u64, 23] {
        let baseline = run_chaos_profiling(
            fault_seed,
            &AnalyzerConfig {
                replay: ReplayStrategy::HashProbe,
                parallelism: 1,
                ..AnalyzerConfig::default()
            },
        );
        for (replay, parallelism) in [
            (ReplayStrategy::SortedMerge, 1),
            (ReplayStrategy::SortedMerge, 4),
            (ReplayStrategy::HashProbe, 8),
        ] {
            let outcome = run_chaos_profiling(
                fault_seed,
                &AnalyzerConfig {
                    replay,
                    parallelism,
                    ..AnalyzerConfig::default()
                },
            );
            assert_eq!(
                outcome, baseline,
                "fault seed {fault_seed}: {replay:?} x parallelism={parallelism} diverged under chaos"
            );
        }
    }
}
