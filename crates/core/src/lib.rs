//! POLM2: automatic profiling for object lifetime-aware memory management.
//!
//! This crate is the paper's primary contribution, built on the simulated
//! substrates in the sibling crates. The four components of Figure 1:
//!
//! * [`Recorder`] — a load-time agent ([`Recorder::agent`]) that instruments
//!   every allocation site to log (stack trace, object identity hash) pairs,
//!   plus the snapshot scheduling policy (one heap snapshot per GC cycle by
//!   default, §3.2).
//! * **Dumper** — lives in [`polm2-snapshot`]: CRIU-style incremental,
//!   no-need-filtered heap snapshots.
//! * [`Analyzer`] — offline: replays allocation records against the snapshot
//!   series, estimates per-allocation-site lifetime distributions
//!   ([`SiteLifetimes`]), derives target generations, and builds the
//!   stack-trace tree ([`SttTree`]) to detect and resolve conflicts —
//!   allocation sites reached through call paths with different lifetimes
//!   (§3.3, Algorithm 1).
//! * [`Instrumenter`] — a load-time agent that applies an
//!   [`AllocationProfile`]: `@Gen`-annotates allocation sites and inserts
//!   `setGeneration`/restore pairs at the call sites the STTree chose
//!   (§3.4), with the subtree-hoisting optimization of §4.4.
//!
//! The two phases (§3.5) are driven by [`ProfilingSession`] (profiling) and
//! [`ProductionSetup`] (production).
//!
//! Every step of the pipeline is fallible and typed ([`PipelineError`]):
//! snapshots can fail and are retried on the simulated clock per a
//! [`RecoveryPolicy`], corrupt allocation records are dropped and counted,
//! stale profile entries are skipped and reported. Chaos testing is built in:
//! [`ProfilingSession::with_faults`] injects seeded, deterministic faults
//! ([`FaultConfig`]) to exercise exactly those paths.
//!
//! [`polm2-snapshot`]: ../polm2_snapshot/index.html
//!
//! # Examples
//!
//! The profiling→production round trip on a toy program lives in the crate's
//! integration tests and the repository's `examples/quickstart.rs`; the
//! pieces compose like this:
//!
//! ```no_run
//! use polm2_core::{AnalyzerConfig, ProfilingSession, SnapshotPolicy};
//! use polm2_runtime::{Jvm, Program, RuntimeConfig};
//! # fn workload_program() -> Program { Program::new() }
//!
//! // Profiling phase: run the workload under the Recorder.
//! let mut session = ProfilingSession::new(SnapshotPolicy::default());
//! let mut jvm = Jvm::builder(RuntimeConfig::paper_scaled())
//!     .transformer(session.recorder_agent())
//!     .build(workload_program())?;
//! let thread = jvm.spawn_thread();
//! // ... invoke workload operations, calling session.after_op(&mut jvm)? ...
//! let report = session.finish(&mut jvm, &AnalyzerConfig::default())?;
//! let profile = report.outcome.profile;
//!
//! // Production phase: run again with the Instrumenter applying the profile.
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod analyzer;
mod error;
mod faults;
mod instrumenter;
pub mod journal;
pub mod merge;
mod pipeline;
mod profile;
mod recorder;
mod sttree;
mod symbols;

pub use analyzer::{
    AnalysisOutcome, Analyzer, AnalyzerConfig, ReplayStrategy, SiteLifetimes, TraceLifetime,
};
pub use error::PipelineError;
pub use faults::{FaultConfig, FaultInjector, FaultyDumper, FaultyMedia, InjectedFaults};
pub use instrumenter::{InstrumentationStats, Instrumenter};
pub use journal::{
    CommitSummary, JournalRetryPolicy, ReplayedSession, SessionJournal, SessionMeta,
};
pub use merge::{
    merge_tenants, recover_tenants, MergedProfile, RecoveredTenant, TenantInput, TenantProfile,
    TenantStatus,
};
pub use pipeline::{
    ProductionSetup, ProfilingReport, ProfilingSession, RecoveryPolicy, SnapshotPolicy,
};
pub use profile::{
    seal_profile_text, AllocationProfile, GenCall, PretenuredSite, ProfileError, ProfileParseError,
    ProfileValidation, CRC_FOOTER_PREFIX, MAX_PROFILE_GEN,
};
pub use recorder::{AllocationRecords, Recorder, TraceId};
pub use sttree::{Conflict, LeafView, Resolution, SttTree};
pub use symbols::{FrameInterner, SymbolId};
